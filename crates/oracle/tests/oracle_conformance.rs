//! Differential conformance: seeded sweep + shrinker behavior.
//!
//! The CI gate runs the full 256-case sweep via `run_oracle` (see
//! `scripts/check.sh`); this suite keeps a smaller always-on sweep inside
//! `cargo test` and pins the shrinker's contract — that it reduces an
//! interesting scenario to a ≤ 2-component / ≤ 2-variant repro.

use nod_oracle::diff::run_differential;
use nod_oracle::reference::{reference_negotiate, RefContext, RefRefusal};
use nod_oracle::scenario::Scenario;
use nod_oracle::shrink::{shrink, size};

/// The same seed schedule as `run_oracle --seed 7`.
fn nth_scenario(seed: u64, i: u64) -> Scenario {
    Scenario::from_seed(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

#[test]
fn seeded_sweep_agrees_on_every_path() {
    // 64 scenarios is the in-test slice of the 256-case CI gate: every
    // execution path (reference / streaming / eager / session / manager /
    // broker) must agree bit-exactly, and every world must return to its
    // baseline ledger after release.
    for i in 0..64 {
        let scenario = nth_scenario(7, i);
        if let Err(d) = run_differential(&scenario) {
            panic!("scenario {i} diverged: {d}");
        }
    }
}

#[test]
fn sweep_exercises_every_negotiation_status() {
    // Vacuity guard: the generator's envelope must reach all five paper
    // statuses, otherwise the sweep silently stops testing classification
    // and commitment.
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..512 {
        let scenario = nth_scenario(7, i);
        let built = scenario.build();
        let (farm, network) = built.make_world();
        let ctx = RefContext {
            catalog: &built.catalog,
            farm: &farm,
            network: &network,
            cost_model: &built.cost_model,
            strategy: scenario.strategy,
            guarantee: scenario.guarantee,
            enumeration_cap: 250_000,
            jitter_buffer_ms: scenario.jitter_buffer_ms,
        };
        if let Ok(out) = reference_negotiate(&ctx, &built.client, built.document, &built.profile) {
            seen.insert(format!("{:?}", out.status));
        }
    }
    for status in [
        "Succeeded",
        "FailedWithOffer",
        "FailedTryLater",
        "FailedWithoutOffer",
        "FailedWithLocalOffer",
    ] {
        assert!(seen.contains(status), "sweep never produced {status}");
    }
}

#[test]
fn shrinker_reduces_a_seeded_scenario_to_two_by_two() {
    // Find a seeded scenario that is structurally large and exhibits a
    // server/network refusal (the stand-in for a divergence — HEAD has
    // none), then shrink it under "still refuses". The greedy passes must
    // land on a repro with at most 2 components and at most 2 variants per
    // component — small enough to read as a test case.
    let interesting = |s: &Scenario| {
        let built = s.build();
        let (farm, network) = built.make_world();
        let ctx = RefContext {
            catalog: &built.catalog,
            farm: &farm,
            network: &network,
            cost_model: &built.cost_model,
            strategy: s.strategy,
            guarantee: s.guarantee,
            enumeration_cap: 250_000,
            jitter_buffer_ms: s.jitter_buffer_ms,
        };
        match reference_negotiate(&ctx, &built.client, built.document, &built.profile) {
            Ok(out) => out
                .refusals
                .iter()
                .any(|(_, r)| matches!(r, RefRefusal::Server | RefRefusal::Network)),
            Err(_) => false,
        }
    };

    let seed_input = (0..4096)
        .map(|i| nth_scenario(7, i))
        .find(|s| {
            s.components.len() >= 3
                && s.components.iter().map(|c| c.variants.len()).sum::<usize>() >= 6
                && interesting(s)
        })
        .expect("the seeded envelope contains a large refusing scenario");
    let before = size(&seed_input);

    let minimal = shrink(&seed_input, interesting);

    assert!(
        interesting(&minimal),
        "shrinking must preserve the predicate"
    );
    assert!(
        minimal.components.len() <= 2,
        "shrunk to {} components (size {} -> {}):\n{}",
        minimal.components.len(),
        before,
        size(&minimal),
        minimal.to_rust_literal()
    );
    assert!(
        minimal.components.iter().all(|c| c.variants.len() <= 2),
        "a component kept >2 variants (size {} -> {}):\n{}",
        before,
        size(&minimal),
        minimal.to_rust_literal()
    );
    assert!(size(&minimal) < before, "shrinking must make progress");
    // The minimal repro still conforms — refusals are agreed on by every
    // path, they are not divergences.
    run_differential(&minimal).expect("shrunk scenario still conforms at HEAD");
}

#[test]
fn shrinker_is_deterministic() {
    let scenario = nth_scenario(7, 3);
    // A predicate that always holds isolates the pass order: both runs
    // must walk to the identical fixpoint.
    let a = shrink(&scenario, |_| true);
    let b = shrink(&scenario, |_| true);
    assert_eq!(a, b);
    assert_eq!(a.components.len(), 1);
}
