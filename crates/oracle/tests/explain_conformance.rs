//! Explanation conformance: a seeded sweep asserting that for every
//! divergence-free scenario, the decision log names the same refusal
//! kinds, the same pruned-variant set, and the same winning-offer rank as
//! the paper-literal reference (ISSUE 9, satellite 3).

use nod_oracle::diff::run_differential;
use nod_oracle::explain_check::run_explain_crosscheck;
use nod_oracle::scenario::Scenario;

/// The same seed schedule as `run_oracle --seed 7`.
fn nth_scenario(seed: u64, i: u64) -> Scenario {
    Scenario::from_seed(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

#[test]
fn explanations_cite_what_the_reference_observes_across_256_scenarios() {
    let mut checked = 0u32;
    for i in 0..256 {
        let scenario = nth_scenario(7, i);
        // The differential sweep gates decisions; only divergence-free
        // scenarios have an agreed ground truth to cite.
        if run_differential(&scenario).is_err() {
            continue;
        }
        if let Err(d) = run_explain_crosscheck(&scenario) {
            panic!("scenario {i}: explanation diverged from the reference: {d}");
        }
        checked += 1;
    }
    // Vacuity guard: the sweep must actually exercise the cross-check.
    assert!(
        checked >= 200,
        "only {checked}/256 scenarios were divergence-free"
    );
}
