//! Shrunk minimal repros — the committed regression suite.
//!
//! Each scenario below is in the shape the oracle's shrinker emits
//! (≤ 2 components, ≤ 2 variants, one knob doing the work) and pins an
//! edge the bug bash walked: boundary cost ceilings, empty variant sets,
//! NaN importances, infeasible clients, and the adaptation procedure's
//! make-before-break ordering under exactly-full capacity.

use nod_mmdoc::MediaKind;
use nod_oracle::diff::run_differential;
use nod_oracle::scenario::{
    ClientKind, ComponentSpec, CostCeiling, ImportanceAnomaly, Scenario, VariantSpec,
};
use nod_qosneg::adapt::{adapt, AdaptationReason};
use nod_qosneg::negotiate::{try_commit, NegotiationContext, StreamingMode};
use nod_qosneg::{ClassificationStrategy, NegotiationRequest, NegotiationStatus, Session};

fn video_variant(server: u8) -> VariantSpec {
    VariantSpec {
        color: 1,
        res: 320,
        fps: 25,
        lang: 0,
        max_block: 5_000,
        avg_block: 2_500,
        file_kb: 400,
        server,
    }
}

/// One video component, two exact-duplicate 1 Mb/s variants, one server,
/// a 1.5 Mb/s access link: capacity for exactly one stream.
fn exactly_full_scenario() -> Scenario {
    Scenario {
        seed: 424_242,
        servers: 1,
        access_bps: 1_500_000,
        backbone_bps: 155_000_000,
        components: vec![ComponentSpec {
            kind: MediaKind::Video,
            duration_ms: 60_000,
            variants: vec![video_variant(0), video_variant(0)],
        }],
        client: ClientKind::Workstation,
        strategy: ClassificationStrategy::SnsThenOif,
        guarantee: nod_cmfs::Guarantee::Guaranteed,
        video_req: None,
        audio_req: None,
        image_req: None,
        max_cost: CostCeiling::Millis(50_000),
        cost_per_dollar_idx: 1,
        anomaly: ImportanceAnomaly::None,
        max_startup_ms: 10_000,
        jitter_buffer_ms: 2_000,
        choice_period_ms: 30_000,
        hog_access_pct: 0,
        server0_admission_pct: 100,
    }
}

#[test]
fn adapt_is_make_before_break_under_exactly_full_capacity() {
    // The ordering discriminator. With Guaranteed service each variant
    // charges max_block·8·fps = 1 Mb/s on a 1.5 Mb/s access link, so the
    // alternate offer can never fit *alongside* the current one — but fits
    // fine *instead of* it. Make-before-break must therefore refuse the
    // switch and keep the session's reservation; a break-before-make
    // implementation would release first, commit the alternate, and
    // "succeed" — stranding the session if the commit ever failed.
    let scenario = exactly_full_scenario();
    run_differential(&scenario).expect("scenario conforms at HEAD");

    let built = scenario.build();
    let (farm, network) = built.make_world();
    let ctx = NegotiationContext {
        catalog: &built.catalog,
        farm: &farm,
        network: &network,
        cost_model: &built.cost_model,
        strategy: scenario.strategy,
        guarantee: scenario.guarantee,
        enumeration_cap: 250_000,
        jitter_buffer_ms: scenario.jitter_buffer_ms,
        prune_dominated: false,
        streaming: StreamingMode::Auto,
        recorder: None,
        explain: false,
    };
    let session = Session::new(ctx);
    let out = session
        .submit(&NegotiationRequest::new(
            &built.client,
            built.document,
            &built.profile,
        ))
        .expect("valid request");
    assert_eq!(out.status, NegotiationStatus::Succeeded);
    let idx = out.reserved_index.expect("an offer was reserved");
    let reservation = out.reservation.as_ref().expect("reservation held");
    let ordered = out.ordered_offers.as_slice();
    assert_eq!(ordered.len(), 2, "duplicate variants give two offers");
    let held_net = network.active_reservations();
    let held_bps = network.total_reserved_bps();

    let adapted = adapt(
        &ctx,
        &built.client,
        ordered,
        idx,
        reservation,
        AdaptationReason::ServerCongestion,
    );
    assert!(
        !adapted.switched(),
        "the alternate cannot fit alongside the current offer"
    );
    assert_eq!(adapted.attempts, 1);
    // The failed adaptation left the session's resources untouched.
    assert_eq!(network.active_reservations(), held_net);
    assert_eq!(network.total_reserved_bps(), held_bps);

    // Proof the held reservation was the only blocker: once the current
    // offer is gone, the very same alternate commits. A break-before-make
    // adapt would have taken this path implicitly — and reported a switch.
    reservation.release(&farm, &network);
    let alternate = (1 - idx).min(ordered.len() - 1);
    let re = try_commit(&ctx, &built.client, &ordered[alternate].offer, u64::MAX)
        .expect("alternate fits once the current reservation is released");
    re.release(&farm, &network);
    assert_eq!(network.active_reservations(), 0);
    assert_eq!(farm.usage().streams, 0);
}

#[test]
fn repro_cost_ceiling_exactly_at_an_offer() {
    // Boundary: the ceiling sits exactly on the cheapest enumerated
    // offer's CostDoc. "Within cost" is `<=`, so every path must agree the
    // offer satisfies the request at delta 0 — and stops at delta -1.
    for delta in [-1i64, 0, 1] {
        let mut scenario = exactly_full_scenario();
        scenario.max_cost = CostCeiling::AtEnumeratedOffer(0, delta);
        run_differential(&scenario)
            .unwrap_or_else(|d| panic!("ceiling delta {delta} diverged: {d}"));
    }
}

#[test]
fn repro_zero_variant_component_fails_without_offer() {
    // A monomedia with no variants at all: step 2 finds nothing, every
    // path must report FailedWithoutOffer and touch no resources.
    let mut scenario = exactly_full_scenario();
    scenario.components.push(ComponentSpec {
        kind: MediaKind::Audio,
        duration_ms: 60_000,
        variants: vec![],
    });
    run_differential(&scenario).expect("zero-variant component conforms");
}

#[test]
fn repro_nan_importance_orders_deterministically() {
    // A NaN importance weight poisons every OIF. `total_cmp` still gives
    // one deterministic order, and streaming must reproduce the eager sort
    // bit-for-bit.
    let mut scenario = exactly_full_scenario();
    scenario.anomaly = ImportanceAnomaly::NanColor;
    run_differential(&scenario).expect("NaN importance conforms");
    let mut inf = exactly_full_scenario();
    inf.anomaly = ImportanceAnomaly::InfiniteColor;
    run_differential(&inf).expect("infinite importance conforms");
}

#[test]
fn repro_budget_pc_cannot_decode_mpeg1() {
    // A budget PC has no MPEG-1 decoder: the local check clamps and fails
    // with a local offer before any enumeration.
    let mut scenario = exactly_full_scenario();
    scenario.client = ClientKind::BudgetPc;
    run_differential(&scenario).expect("infeasible client conforms");
}
