//! Randomized property tests for the simulation kernel's public API.
//!
//! These were originally `proptest` properties; they are now driven by the
//! kernel's own seeded [`StreamRng`] so the test suite stays dependency-free
//! and bit-for-bit reproducible. Each property runs `CASES` independently
//! seeded trials; a failure message carries the case seed for replay.

use nod_simcore::{EventQueue, IntervalLedger, OnlineStats, SimTime, SplitMix64, StreamRng};

const CASES: u64 = 128;

fn case_rngs(test_seed: u64) -> impl Iterator<Item = (u64, StreamRng)> {
    (0..CASES).map(move |case| {
        let seed = test_seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (seed, StreamRng::new(seed))
    })
}

/// The event queue is a stable priority queue: pops are sorted by time, and
/// equal times preserve insertion order.
#[test]
fn event_queue_is_stable_and_sorted() {
    for (seed, mut rng) in case_rngs(0xE7E7) {
        let n = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        assert_eq!(popped.len(), times.len(), "seed {seed}");
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated (seed {seed})");
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 < w[1].1,
                    "FIFO among simultaneous events violated (seed {seed})"
                );
            }
        }
    }
}

/// Ledger safety: for any booking sequence, peak usage never exceeds
/// capacity, and cancelling everything restores an empty ledger.
#[test]
fn ledger_never_oversubscribes() {
    for (seed, mut rng) in case_rngs(0x1ED6) {
        let capacity = rng.range_u64(50, 200);
        let mut ledger = IntervalLedger::new(capacity);
        let mut held = Vec::new();
        for _ in 0..rng.range_u64(1, 100) {
            let start = rng.below(100);
            let len = rng.range_u64(1, 50);
            let amount = rng.range_u64(1, 80);
            let s = SimTime::from_secs(start);
            let e = SimTime::from_secs(start + len);
            if let Ok(id) = ledger.try_book(s, e, amount) {
                held.push(id);
            }
            assert!(
                ledger.peak_usage(SimTime::ZERO, SimTime::from_secs(200)) <= capacity,
                "capacity exceeded (seed {seed})"
            );
        }
        for id in held {
            ledger.cancel(id);
        }
        assert_eq!(
            ledger.peak_usage(SimTime::ZERO, SimTime::from_secs(200)),
            0,
            "seed {seed}"
        );
        assert_eq!(ledger.bookings(), 0, "seed {seed}");
    }
}

/// A booking that fits reported headroom always succeeds; one that exceeds
/// it always fails.
#[test]
fn ledger_headroom_is_truthful() {
    for (seed, mut rng) in case_rngs(0x4EAD) {
        let mut ledger = IntervalLedger::new(100);
        for _ in 0..rng.below(30) {
            let s = rng.below(50);
            let l = rng.range_u64(1, 30);
            let a = rng.range_u64(1, 40);
            let _ = ledger.try_book(SimTime::from_secs(s), SimTime::from_secs(s + l), a);
        }
        let start = rng.below(50);
        let len = rng.range_u64(1, 30);
        let s = SimTime::from_secs(start);
        let e = SimTime::from_secs(start + len);
        let headroom = ledger.available(s, e);
        if headroom > 0 {
            assert!(ledger.try_book(s, e, headroom).is_ok(), "seed {seed}");
        } else {
            assert!(ledger.try_book(s, e, 1).is_err(), "seed {seed}");
        }
    }
}

/// OnlineStats::merge is associative-equivalent to streaming pushes,
/// regardless of the split point.
#[test]
fn stats_merge_split_invariance() {
    for (seed, mut rng) in case_rngs(0x57A7) {
        let n = rng.range_u64(2, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1_000.0, 1_000.0)).collect();
        let cut = rng.range_u64(1, n as u64 - 1) as usize;
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count(), "seed {seed}");
        assert!((a.mean() - whole.mean()).abs() < 1e-6, "seed {seed}");
        assert!(
            (a.variance() - whole.variance()).abs() < 1e-4,
            "seed {seed}"
        );
    }
}

/// SplitMix64 streams are reproducible and splitting is deterministic.
#[test]
fn rng_reproducibility() {
    for (seed, mut rng) in case_rngs(0x5EED) {
        let stream_seed = rng.below(u64::MAX);
        let n = rng.range_u64(1, 100);
        let mut a = SplitMix64::new(stream_seed);
        let mut b = SplitMix64::new(stream_seed);
        let ca = a.split();
        let cb = b.split();
        assert_eq!(ca, cb, "seed {seed}");
        for _ in 0..n {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
    }
}

/// Uniform helpers respect their bounds.
#[test]
fn rng_bounds() {
    for (seed, mut rng) in case_rngs(0xB0B0) {
        let stream_seed = rng.below(u64::MAX);
        let lo = rng.below(100);
        let span = rng.range_u64(1, 100);
        let mut r = StreamRng::new(stream_seed);
        for _ in 0..50 {
            let x = r.range_u64(lo, lo + span);
            assert!((lo..=lo + span).contains(&x), "seed {seed}");
            let z = r.zipf(span as usize, 1.2);
            assert!(z < span as usize, "seed {seed}");
        }
    }
}
