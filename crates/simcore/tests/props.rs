//! Property tests for the simulation kernel's public API.

use proptest::prelude::*;

use nod_simcore::{EventQueue, IntervalLedger, OnlineStats, SimTime, SplitMix64, StreamRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue is a stable priority queue: pops are sorted by time,
    /// and equal times preserve insertion order.
    #[test]
    fn event_queue_is_stable_and_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among simultaneous events violated");
            }
        }
    }

    /// Ledger safety: for any booking sequence, peak usage never exceeds
    /// capacity, and cancelling everything restores an empty ledger.
    #[test]
    fn ledger_never_oversubscribes(
        ops in prop::collection::vec((0u64..100, 1u64..50, 1u64..80), 1..100),
        capacity in 50u64..200
    ) {
        let mut ledger = IntervalLedger::new(capacity);
        let mut held = Vec::new();
        for (start, len, amount) in ops {
            let s = SimTime::from_secs(start);
            let e = SimTime::from_secs(start + len);
            if let Ok(id) = ledger.try_book(s, e, amount) {
                held.push(id);
            }
            prop_assert!(
                ledger.peak_usage(SimTime::ZERO, SimTime::from_secs(200)) <= capacity,
                "capacity exceeded"
            );
        }
        for id in held {
            ledger.cancel(id);
        }
        prop_assert_eq!(ledger.peak_usage(SimTime::ZERO, SimTime::from_secs(200)), 0);
        prop_assert_eq!(ledger.bookings(), 0);
    }

    /// A booking that fits reported headroom always succeeds; one that
    /// exceeds it always fails.
    #[test]
    fn ledger_headroom_is_truthful(
        prefill in prop::collection::vec((0u64..50, 1u64..30, 1u64..40), 0..30),
        start in 0u64..50, len in 1u64..30
    ) {
        let mut ledger = IntervalLedger::new(100);
        for (s, l, a) in prefill {
            let _ = ledger.try_book(SimTime::from_secs(s), SimTime::from_secs(s + l), a);
        }
        let s = SimTime::from_secs(start);
        let e = SimTime::from_secs(start + len);
        let headroom = ledger.available(s, e);
        if headroom > 0 {
            prop_assert!(ledger.try_book(s, e, headroom).is_ok());
        }
        prop_assert!(ledger.try_book(s, e, 1).is_err() || headroom > 0);
    }

    /// OnlineStats::merge is associative-equivalent to streaming pushes,
    /// regardless of the split point.
    #[test]
    fn stats_merge_split_invariance(
        xs in prop::collection::vec(-1_000.0f64..1_000.0, 2..100),
        cut in 1usize..99
    ) {
        let cut = cut.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }

    /// SplitMix64 streams are reproducible and splitting is deterministic.
    #[test]
    fn rng_reproducibility(seed in any::<u64>(), n in 1usize..100) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let ca = a.split();
        let cb = b.split();
        prop_assert_eq!(ca, cb);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Uniform helpers respect their bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in 0u64..100, span in 1u64..100) {
        let mut r = StreamRng::new(seed);
        for _ in 0..50 {
            let x = r.range_u64(lo, lo + span);
            prop_assert!((lo..=lo + span).contains(&x));
            let z = r.zipf(span as usize, 1.2);
            prop_assert!(z < span as usize);
        }
    }
}
