//! Deterministic random number generation.
//!
//! The kernel ships its own small generators instead of pulling `rand` into
//! every substrate: experiments need *stream splitting* (one independent
//! stream per session / per server) so that adding a source of randomness
//! does not perturb every other stream — the classic variance-reduction
//! discipline for discrete-event simulation.
//!
//! [`SplitMix64`] is the 64-bit finalizer-based generator from Steele,
//! Lea & Flood (OOPSLA'14); it is tiny, passes BigCrush when used as a
//! stream cipher of its counter, and supports cheap jump-free splitting.

/// SplitMix64: a 64-bit generator with splittable streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
    gamma: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix_gamma(z: u64) -> u64 {
    // Gamma values must be odd; additionally require a reasonable bit mix.
    let z = mix64(z) | 1;
    let n = (z ^ (z >> 1)).count_ones();
    if n < 24 {
        z ^ 0xAAAA_AAAA_AAAA_AAAA
    } else {
        z
    }
}

impl SplitMix64 {
    /// A generator seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed,
            gamma: GOLDEN_GAMMA,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix64(self.state)
    }

    /// The raw `(state, gamma)` pair — everything the generator is.
    /// Pairs with [`SplitMix64::from_state_parts`] so checkpoint/restore
    /// (e.g. a broker journal snapshot) resumes the stream mid-flight
    /// without replaying the draws that produced it.
    pub fn state_parts(&self) -> (u64, u64) {
        (self.state, self.gamma)
    }

    /// Rebuild a generator from a saved [`SplitMix64::state_parts`] pair.
    /// The restored stream continues exactly where the saved one stopped.
    pub fn from_state_parts(state: u64, gamma: u64) -> Self {
        SplitMix64 { state, gamma }
    }

    /// Split off a statistically independent child generator.
    ///
    /// The parent advances; the child's `(state, gamma)` pair is derived so
    /// its stream does not overlap the parent's in practice.
    pub fn split(&mut self) -> SplitMix64 {
        let state = self.next_u64();
        self.state = self.state.wrapping_add(self.gamma);
        let gamma = mix_gamma(self.state);
        SplitMix64 { state, gamma }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire's multiply-shift rejection method (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: low < bound. Accept unless in biased region.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A simulation-facing RNG with the distributions the experiments need.
///
/// Wraps [`SplitMix64`] and adds exponential, Poisson, normal-ish, Zipf and
/// choice helpers. All methods are deterministic functions of the stream.
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: SplitMix64,
}

impl StreamRng {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        StreamRng {
            inner: SplitMix64::new(seed),
        }
    }

    /// Split an independent child stream (e.g. one per simulated session).
    pub fn split(&mut self) -> StreamRng {
        StreamRng {
            inner: self.inner.split(),
        }
    }

    /// The raw `(state, gamma)` pair of the underlying [`SplitMix64`] —
    /// see [`SplitMix64::state_parts`].
    pub fn state_parts(&self) -> (u64, u64) {
        self.inner.state_parts()
    }

    /// Rebuild a stream from a saved [`StreamRng::state_parts`] pair; the
    /// restored stream continues exactly where the saved one stopped.
    pub fn from_state_parts(state: u64, gamma: u64) -> Self {
        StreamRng {
            inner: SplitMix64::from_state_parts(state, gamma),
        }
    }

    /// Uniform in `[0,1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or bounds are non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "exp: mean must be > 0");
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Poisson-distributed count with the given rate `lambda`.
    ///
    /// Uses Knuth's product method for small lambda and a normal
    /// approximation (rounded, clamped at 0) above 30 — adequate for
    /// workload generation.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda.is_finite() && lambda >= 0.0, "poisson: bad lambda");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let g = self.gaussian(lambda, lambda.sqrt());
            g.round().max(0.0) as u64
        }
    }

    /// Normally distributed value (Box–Muller, one draw discarded for
    /// statelessness).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "gaussian: negative std_dev");
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` (popularity skew
    /// for document selection). Uses inverse-CDF over precomputable weights;
    /// for the corpus sizes here (≤ tens of thousands) a linear scan is fine.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf: empty support");
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.f64() * h;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(s);
            if u <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Uniformly choose an element of a slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Choose an index according to non-negative weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "choose_weighted: weights sum to zero");
        let mut u = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A zipf sampler with the cumulative weights precomputed once.
///
/// [`StreamRng::zipf`] re-sums the harmonic series and linear-scans on
/// every draw — O(n) per call, fine for a handful of draws over a small
/// support, quadratic poison for a city-scale arrival schedule (10⁶ draws
/// over a 10⁴-document catalog). This sampler pays O(n) once and O(log n)
/// per draw, and consumes exactly one uniform per draw just like
/// `StreamRng::zipf`, so swapping it in does not shift any later draws in
/// the stream.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precompute cumulative weights for ranks `[0, n)` with exponent `s`.
    ///
    /// # Panics
    /// Panics on an empty support.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf: empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Draw a rank in `[0, n)`, consuming one uniform from `rng`.
    pub fn sample(&self, rng: &mut StreamRng) -> usize {
        let total = *self.cdf.last().expect("non-empty support");
        let u = rng.f64() * total;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_advancement() {
        let mut parent1 = SplitMix64::new(7);
        let child1 = parent1.split();
        let mut parent2 = SplitMix64::new(7);
        let child2 = parent2.split();
        assert_eq!(child1, child2);
        // Child output differs from parent output.
        let mut c = child1;
        let mut p = parent1;
        let overlap = (0..64).filter(|_| c.next_u64() == p.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn state_round_trip_resumes_the_stream_mid_flight() {
        let mut r = StreamRng::new(77);
        for _ in 0..100 {
            r.f64();
        }
        let (state, gamma) = r.state_parts();
        let mut restored = StreamRng::from_state_parts(state, gamma);
        for _ in 0..1000 {
            assert_eq!(r.below(1 << 40), restored.below(1 << 40));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow ±6%.
            assert!((9_400..10_600).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = StreamRng::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut r = StreamRng::new(6);
        for &lambda in &[0.5, 4.0, 50.0] {
            let n = 50_000;
            let sum: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = StreamRng::new(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 9.0).abs() < 0.3);
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut r = StreamRng::new(9);
        let mut counts = [0u32; 20];
        for _ in 0..50_000 {
            counts[r.zipf(20, 1.0)] += 1;
        }
        assert!(counts[0] > counts[10] * 3);
        assert!(counts.iter().sum::<u32>() == 50_000);
    }

    #[test]
    fn zipf_sampler_matches_the_scan_draw_for_draw() {
        // Same seed, same support: the precomputed sampler must walk the
        // identical inverse-CDF (both accumulate the weights in rank
        // order, so the partial sums round identically).
        let mut scan = StreamRng::new(9);
        let mut fast = StreamRng::new(9);
        let sampler = ZipfSampler::new(20, 1.0);
        for _ in 0..50_000 {
            assert_eq!(sampler.sample(&mut fast), scan.zipf(20, 1.0));
        }
    }

    #[test]
    fn choose_weighted_matches_weights() {
        let mut r = StreamRng::new(10);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.choose_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio={ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StreamRng::new(12);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn range_helpers() {
        let mut r = StreamRng::new(13);
        for _ in 0..1000 {
            let x = r.range_u64(5, 9);
            assert!((5..=9).contains(&x));
            let y = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }
}
