//! Online statistics for experiment harnesses.
//!
//! [`OnlineStats`] keeps Welford running moments (numerically stable mean /
//! variance) plus min/max. [`Percentiles`] stores samples for exact order
//! statistics — experiments here collect at most a few hundred thousand
//! samples, so exact quantiles are affordable and avoid the bias of
//! streaming sketches. [`Histogram`] buckets values for shape reporting.

/// Welford online mean / variance with min and max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    ///
    /// # Panics
    /// Panics on non-finite input — NaNs silently poison every downstream
    /// summary, so they are rejected at the door.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "OnlineStats::push: non-finite sample {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (normal approximation; 0 with fewer than two observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile estimation over retained samples.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty sample set.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "Percentiles::push: non-finite sample {x}");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`q` in `[0,1]`) by linear interpolation between
    /// order statistics. Returns `None` if empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile: q={q} out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaNs stored"));
            self.sorted = true;
        }
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median shortcut.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins > 0, "Histogram::new: bad parameters");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// `(low_edge, high_edge)` of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// Ratio helper: fraction `num / den`, 0 when the denominator is 0.
pub fn safe_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.37 % 13.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn percentiles_exact() {
        let mut p = Percentiles::new();
        for x in (1..=100).rev() {
            p.push(x as f64);
        }
        assert_eq!(p.count(), 100);
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert!((p.median().unwrap() - 50.5).abs() < 1e-12);
        // 99th percentile of 1..=100 interpolates between 99.01 and 100.
        assert!((p.quantile(0.99).unwrap() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentiles_single_and_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        p.push(7.0);
        assert_eq!(p.quantile(0.3), Some(7.0));
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn ratio_helper() {
        assert_eq!(safe_ratio(1, 4), 0.25);
        assert_eq!(safe_ratio(3, 0), 0.0);
    }
}
