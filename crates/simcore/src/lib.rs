//! Discrete-event simulation kernel for the news-on-demand reproduction.
//!
//! Every stochastic experiment in the repository (blocking probability,
//! adaptation under congestion, capacity planning) runs on this kernel. The
//! design goals, in order:
//!
//! 1. **Determinism** — given a seed, a simulation is bit-for-bit
//!    reproducible. The event queue breaks ties on a monotone sequence
//!    number and all randomness flows from [`rng::SplitMix64`] /
//!    [`rng::StreamRng`].
//! 2. **Zero dependencies** — the kernel is `std`-only so the substrates
//!    built on it stay cheap to compile and easy to audit.
//! 3. **Observable** — [`stats`] provides online moments, percentile
//!    estimation and confidence intervals used by the experiment harnesses.
//!
//! # Quick example
//!
//! ```
//! use nod_simcore::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_millis(20), "second");
//! q.schedule(SimTime::from_millis(10), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(10), "first"));
//! ```

pub mod event;
pub mod json;
pub mod ledger;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;

pub use event::{EventQueue, Scheduled};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use ledger::{BookingId, IntervalLedger};
pub use rng::{SplitMix64, StreamRng, ZipfSampler};
pub use stats::{Histogram, OnlineStats, Percentiles};
pub use time::{SimDuration, SimTime};
