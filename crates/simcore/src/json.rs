//! A small, dependency-free JSON layer.
//!
//! The repository originally leaned on `serde`/`serde_json` for catalog and
//! scenario persistence. Those crates are external dependencies, and the
//! build environments this repo targets cannot assume a reachable registry,
//! so the workspace carries its own JSON value type, parser, writers, and a
//! pair of conversion traits ([`ToJson`] / [`FromJson`]) plus `macro_rules!`
//! helpers that mirror the encodings `serde` derives produced:
//!
//! * named-field structs → objects keyed by field name ([`json_struct!`]),
//! * newtype structs → the bare inner value ([`json_newtype!`]),
//! * unit-variant enums → the variant name as a string ([`json_unit_enum!`]),
//! * payload-carrying enum variants → externally tagged
//!   (`{"Variant": payload}`), hand-written at the defining type.
//!
//! Keeping the encodings identical means every pre-existing round-trip test
//! and every `.json` artifact produced by earlier runs stays valid.
//!
//! Numbers preserve their integer/float lexical class through a round trip
//! ([`Num`]); object key order is preserved as written.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number, kept in its lexical class so `42` never becomes `42.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// A non-negative integer literal.
    U(u64),
    /// A negative integer literal.
    I(i64),
    /// A float literal (has a `.`, exponent, or does not fit an integer).
    F(f64),
}

impl Num {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::U(u) => u as f64,
            Num::I(i) => i as f64,
            Num::F(f) => f,
        }
    }

    /// The value as `u64` when it is a non-negative integer literal.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::U(u) => Some(u),
            Num::I(i) => u64::try_from(i).ok(),
            Num::F(_) => None,
        }
    }

    /// The value as `i64` when it is an integer literal in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::U(u) => i64::try_from(u).ok(),
            Num::I(i) => Some(i),
            Num::F(_) => None,
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A conversion or parse failure, with a human-readable path/context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

static NULL: Json = Json::Null;

impl Json {
    /// A one-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Look up a key in an object; `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a key in an object, treating a missing key as `null`.
    ///
    /// Errors when `self` is not an object. Missing-as-null lets
    /// `Option<T>` fields tolerate omitted keys while still failing
    /// loudly (with the key name) for required fields.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(_) => Ok(self.get(key).unwrap_or(&NULL)),
            other => err(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            )),
        }
    }

    /// An externally-tagged enum value: `{"Variant": payload}`.
    pub fn tagged(tag: &str, inner: Json) -> Json {
        Json::Obj(vec![(tag.to_string(), inner)])
    }

    /// Decompose an externally-tagged enum value into `(tag, payload)`.
    ///
    /// Accepts both the payload form `{"Variant": payload}` and the unit
    /// form `"Variant"` (payload is `null`), which is how mixed enums
    /// (some variants with data, some without) encode.
    pub fn as_tagged(&self) -> Result<(&str, &Json), JsonError> {
        match self {
            Json::Obj(fields) if fields.len() == 1 => Ok((&fields[0].0, &fields[0].1)),
            Json::Str(tag) => Ok((tag, &NULL)),
            other => err(format!(
                "expected enum (string or single-key object), found {}",
                other.kind()
            )),
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, found {}", other.kind())),
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind())),
        }
    }

    /// Serialize without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: Num, out: &mut String) {
    match n {
        Num::U(u) => out.push_str(&u.to_string()),
        Num::I(i) => out.push_str(&i.to_string()),
        // Non-finite floats have no JSON representation; `null` matches what
        // JavaScript's own serializer does and keeps the output parseable.
        Num::F(f) if !f.is_finite() => out.push_str("null"),
        Num::F(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            // `Display` drops the fraction for integral floats ("2" for 2.0);
            // keep the float lexical class so a round trip preserves it.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
    }
}

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) if items.is_empty() => out.push_str("[]"),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document. Trailing whitespace is allowed, trailing content
/// is an error.
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError("invalid \\u escape".into()))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| JsonError("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return err("invalid \\u escape"),
                            }
                            continue;
                        }
                        _ => return err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries
                    // are valid; copy bytes until the next boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Num(Num::I(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Json::Num(Num::F(f))),
            Err(_) => err(format!("invalid number `{text}` at byte {start}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Rebuild a value; errors carry the offending field/type context.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialize a value compactly.
pub fn to_string<T: ToJson>(v: &T) -> String {
    v.to_json().to_string_compact()
}

/// Serialize a value with indentation.
pub fn to_string_pretty<T: ToJson>(v: &T) -> String {
    v.to_json().to_string_pretty()
}

/// Parse and convert in one step.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&parse(s)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {}", other.kind())),
        }
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(Num::U(*self as u64))
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$ty>::try_from(u).ok())
                        .ok_or_else(|| JsonError(format!(
                            "number out of range for {}", stringify!($ty)
                        ))),
                    other => err(format!(
                        "expected {}, found {}", stringify!($ty), other.kind()
                    )),
                }
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i >= 0 {
                    Json::Num(Num::U(i as u64))
                } else {
                    Json::Num(Num::I(i))
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) => n
                        .as_i64()
                        .and_then(|i| <$ty>::try_from(i).ok())
                        .ok_or_else(|| JsonError(format!(
                            "number out of range for {}", stringify!($ty)
                        ))),
                    other => err(format!(
                        "expected {}, found {}", stringify!($ty), other.kind()
                    )),
                }
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Num::F(*self))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) => Ok(n.as_f64()),
            other => err(format!("expected number, found {}", other.kind())),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(Num::F(*self as f64))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr()?;
        if items.len() != N {
            return err(format!("expected array of {N}, found {}", items.len()));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json(item)?;
        }
        Ok(out)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            other => err(format!("expected 2-element array, found {}", other.len())),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => err(format!("expected object, found {}", other.kind())),
        }
    }
}

// ---------------------------------------------------------------------------
// Derive-replacement macros
// ---------------------------------------------------------------------------

/// Implement [`ToJson`]/[`FromJson`] for a named-field struct, encoding it
/// as an object keyed by field name (the encoding a `serde` derive used).
///
/// Invoke in the defining module so private fields are reachable:
///
/// ```ignore
/// json_struct!(BlockStats { max_block_bytes, avg_block_bytes });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $( $field: $crate::json::FromJson::from_json(v.field(stringify!($field))?)
                        .map_err(|e| $crate::json::JsonError(format!(
                            "{}.{}: {}", stringify!($ty), stringify!($field), e.0
                        )))? ),+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a one-field tuple struct, encoding
/// it as the bare inner value (`ServerId(42)` ⇌ `42`), matching `serde`'s
/// newtype-struct encoding.
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty(<$inner as $crate::json::FromJson>::from_json(v)?))
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for an enum of unit variants, encoding
/// each variant as its name string (`Guarantee::BestEffort` ⇌
/// `"BestEffort"`), matching `serde`'s unit-variant encoding.
#[macro_export]
macro_rules! json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $( $ty::$variant => $crate::json::Json::Str(stringify!($variant).to_string()) ),+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match v.as_str()? {
                    $( stringify!($variant) => Ok($ty::$variant), )+
                    other => Err($crate::json::JsonError(format!(
                        "unknown {} variant `{}`", stringify!($ty), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\"", "1e3"] {
            let v = parse(text).unwrap();
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integer_lexical_class_is_preserved() {
        assert_eq!(parse("42").unwrap(), Json::Num(Num::U(42)));
        assert_eq!(parse("-42").unwrap(), Json::Num(Num::I(-42)));
        assert_eq!(parse("42.0").unwrap(), Json::Num(Num::F(42.0)));
        assert_eq!(Json::Num(Num::F(2.0)).to_string_compact(), "2.0");
        assert_eq!(Json::Num(Num::U(2)).to_string_compact(), "2");
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":{"e":-1.25}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
        let pretty = v.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""line\n\ttab \"q\" \\ A 😀""#).unwrap();
        assert_eq!(v, Json::Str("line\n\ttab \"q\" \\ A 😀".to_string()));
        let round = parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(u32::from_json(&parse("-1").unwrap()).is_err());
        assert!(u8::from_json(&parse("300").unwrap()).is_err());
    }

    #[test]
    fn option_vec_map_conversions() {
        let v: Option<u32> = None;
        assert_eq!(v.to_json(), Json::Null);
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(
            Vec::<u32>::from_json(&parse("[1,2,3]").unwrap()).unwrap(),
            vec![1, 2, 3]
        );
        let arr: [f64; 3] = [1.0, 2.5, -3.0];
        assert_eq!(<[f64; 3]>::from_json(&arr.to_json()).unwrap(), arr);
        let pair = (1.0_f64, 2.0_f64);
        assert_eq!(<(f64, f64)>::from_json(&pair.to_json()).unwrap(), pair);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 7u64);
        assert_eq!(BTreeMap::<String, u64>::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn missing_field_is_null_for_options() {
        struct S {
            a: u32,
            b: Option<u32>,
        }
        json_struct!(S { a, b });
        let s: S = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!((s.a, s.b), (1, None));
        assert!(from_str::<S>(r#"{"b":2}"#).is_err());
    }

    #[test]
    fn unit_enum_and_newtype_macros() {
        #[derive(Debug, PartialEq)]
        enum E {
            Left,
            Right,
        }
        json_unit_enum!(E { Left, Right });
        assert_eq!(to_string(&E::Left), "\"Left\"");
        assert_eq!(from_str::<E>("\"Right\"").unwrap(), E::Right);
        assert!(from_str::<E>("\"Up\"").is_err());

        #[derive(Debug, PartialEq)]
        struct W(i64);
        json_newtype!(W(i64));
        assert_eq!(to_string(&W(-9)), "-9");
        assert_eq!(from_str::<W>("-9").unwrap(), W(-9));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(f64::NAN.to_json().to_string_compact(), "null");
        assert_eq!(f64::INFINITY.to_json().to_string_compact(), "null");
    }
}
