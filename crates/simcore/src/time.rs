//! Simulation time.
//!
//! Time is a `u64` count of **microseconds** since simulation start.
//! Microsecond resolution is fine for multimedia playout (a 60 fps frame
//! period is 16_667 µs) and leaves ~584 000 simulated years of range, so
//! arithmetic never needs saturation in practice; we still use checked ops
//! at the API boundary to keep invariants explicit.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock (microseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }
    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulation logic never
    /// observes time running backwards, so that is a bug worth surfacing.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }
    /// `self + d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds {s}"
        );
        SimDuration((s * 1e6).round() as u64)
    }
    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: instant past u64::MAX microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(d.0)
                .expect("SimTime underflow: instant before the epoch"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(
            t.since(SimTime::from_secs(10)),
            SimDuration::from_millis(500)
        );
        assert_eq!((t - SimDuration::from_millis(500)).as_micros(), 10_000_000);
        assert_eq!((SimDuration::from_secs(3) * 4).as_micros(), 12_000_000);
        assert_eq!((SimDuration::from_secs(3) / 2).as_millis(), 1_500);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_future() {
        SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_secs(1_000_000) < SimTime::MAX);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(2).checked_sub(SimDuration::from_secs(1)),
            Some(SimDuration::from_secs(1))
        );
        assert_eq!(
            SimDuration::from_secs(1).checked_sub(SimDuration::from_secs(2)),
            None
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{:?}", SimDuration::from_micros(1)), "0.000001s");
    }
}
