//! Minimal `parking_lot`-style synchronization on top of `std::sync`.
//!
//! The reservation tables in `nod-cmfs` and `nod-netsim` were written
//! against `parking_lot::Mutex`, whose `lock()` returns the guard directly
//! (no poisoning `Result`). This shim preserves that API over
//! `std::sync::Mutex` so the workspace carries no external dependency: a
//! poisoned lock is recovered by taking the inner guard, which matches
//! `parking_lot`'s no-poisoning semantics (the state protected here is a
//! reservation table that stays consistent under panic-unwind because every
//! mutation is a single insert/remove).

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poisoning error.
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
