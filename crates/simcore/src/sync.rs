//! Minimal `parking_lot`-style synchronization on top of `std::sync`.
//!
//! The reservation tables in `nod-cmfs` and `nod-netsim` were written
//! against `parking_lot::Mutex`, whose `lock()` returns the guard directly
//! (no poisoning `Result`). This shim preserves that API over
//! `std::sync::Mutex` so the workspace carries no external dependency: a
//! poisoned lock is recovered by taking the inner guard, which matches
//! `parking_lot`'s no-poisoning semantics (the state protected here is a
//! reservation table that stays consistent under panic-unwind because every
//! mutation is a single insert/remove).

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poisoning error.
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A value split across `N` independently locked shards so concurrent
/// writers keyed by different ids rarely contend on the same lock.
///
/// Keys are spread with a Fibonacci multiplicative hash, so dense
/// sequential ids (session numbers, server ids) land on distinct shards.
/// The lock-order discipline is: hold at most one shard guard at a time;
/// whole-structure walks ([`Sharded::fold`]) lock shards one after another
/// in index order and never nest, so they cannot deadlock against keyed
/// accessors.
pub struct Sharded<T> {
    shards: Vec<Mutex<T>>,
}

impl<T> Sharded<T> {
    /// `shards` independent copies produced by `init` (one call per shard).
    ///
    /// # Panics
    /// Panics on zero shards.
    pub fn new(shards: usize, mut init: impl FnMut() -> T) -> Self {
        assert!(shards > 0, "at least one shard required");
        Sharded {
            shards: (0..shards).map(|_| Mutex::new(init())).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to.
    pub fn shard_for(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by ⌊2^64/φ⌋ and keep the high bits.
        let spread = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (spread >> 32) as usize % self.shards.len()
    }

    /// Lock the shard owning `key`.
    pub fn lock_key(&self, key: u64) -> MutexGuard<'_, T> {
        self.shards[self.shard_for(key)].lock()
    }

    /// Lock shard `index` directly.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn lock_shard(&self, index: usize) -> MutexGuard<'_, T> {
        self.shards[index].lock()
    }

    /// Fold over every shard, locking each in index order (one at a time).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &mut T) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            acc = f(acc, &mut shard.lock());
        }
        acc
    }

    /// Consume the structure, returning the shard values in index order.
    pub fn into_inner(self) -> Vec<T> {
        self.shards.into_iter().map(Mutex::into_inner).collect()
    }
}

impl<T: fmt::Debug> fmt::Debug for Sharded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn sharded_spreads_and_folds() {
        let s: Sharded<Vec<u64>> = Sharded::new(4, Vec::new);
        assert_eq!(s.shards(), 4);
        for key in 0..64u64 {
            s.lock_key(key).push(key);
        }
        // Dense keys land on more than one shard.
        let populated = s.fold(0usize, |acc, v| acc + usize::from(!v.is_empty()));
        assert!(populated > 1, "all keys hashed to one shard");
        // Nothing lost, nothing duplicated.
        let total = s.fold(0usize, |acc, v| acc + v.len());
        assert_eq!(total, 64);
        let mut all: Vec<u64> = s.into_inner().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_concurrent_pushes_are_consistent() {
        let s = std::sync::Arc::new(Sharded::new(8, || 0u64));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        *s.lock_key(t * 1_000 + i) += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.fold(0u64, |acc, n| acc + *n), 8_000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
