//! Deterministic future-event list.
//!
//! A binary heap keyed on `(time, seq)` where `seq` is a monotone insertion
//! counter: events scheduled for the same instant are delivered in the order
//! they were scheduled, which makes simulations reproducible regardless of
//! heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event held in the queue together with its delivery metadata.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Delivery instant.
    pub at: SimTime,
    /// Insertion sequence number; the tiebreak for simultaneous events.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A future-event list with a monotone clock.
///
/// The queue tracks the timestamp of the last popped event and rejects
/// scheduling into the past, which catches causality bugs in the substrates.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` for delivery at instant `at`.
    ///
    /// Returns the sequence number assigned to the event (usable as a
    /// lightweight handle for logging).
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — an event cannot be
    /// delivered in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        seq
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            debug_assert!(s.at >= self.now);
            self.now = s.at;
            (s.at, s.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Visit every pending event in **heap order** (arbitrary). Callers
    /// snapshotting the queue must sort by `(at, seq)` themselves — that
    /// is delivery order, and rescheduling entries in that order into a
    /// fresh queue reproduces the same-tick FIFO tie-break exactly.
    pub fn iter(&self) -> impl Iterator<Item = &Scheduled<E>> {
        self.heap.iter()
    }

    /// Drain and discard every pending event (e.g. at simulation end).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(1));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        assert!(q.pop().is_none());
        // Clock holds at the last event time.
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(7), 'x');
        q.schedule(SimTime::from_secs(4), 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn relative_scheduling_pattern() {
        // The common usage pattern: schedule relative to `now()`.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 0u32);
        while let Some((t, n)) = q.pop() {
            if n < 3 {
                q.schedule(t + SimDuration::from_secs(1), n + 1);
            }
        }
        assert_eq!(q.now(), SimTime::from_secs(4));
    }
}
