//! Interval capacity ledger for advance reservations.
//!
//! The paper's conclusion points to negotiation "with future reservations"
//! ([Haf 96]). The primitive that makes that work is a ledger that answers
//! "can `amount` of capacity be held over `[start, end)` given everything
//! already booked?" — a max-over-window test on a piecewise-constant usage
//! function, maintained as a delta map (classic sweep structure).

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Handle to a booked interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BookingId(pub u64);

/// A capacity ledger over time.
#[derive(Debug, Clone)]
pub struct IntervalLedger {
    capacity: u64,
    /// Usage deltas at instant boundaries.
    deltas: BTreeMap<SimTime, i64>,
    bookings: BTreeMap<BookingId, (SimTime, SimTime, u64)>,
    next_id: u64,
}

impl IntervalLedger {
    /// A ledger with constant `capacity`.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "ledger needs positive capacity");
        IntervalLedger {
            capacity,
            deltas: BTreeMap::new(),
            bookings: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The constant capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Peak usage inside `[start, end)`.
    pub fn peak_usage(&self, start: SimTime, end: SimTime) -> u64 {
        assert!(start < end, "empty or inverted window");
        // Usage entering the window.
        let mut usage: i64 = self.deltas.range(..=start).map(|(_, &d)| d).sum();
        let mut peak = usage;
        for (_, &d) in self.deltas.range((
            std::ops::Bound::Excluded(start),
            std::ops::Bound::Excluded(end),
        )) {
            usage += d;
            peak = peak.max(usage);
        }
        peak.max(0) as u64
    }

    /// Remaining capacity over the window (its minimum headroom).
    pub fn available(&self, start: SimTime, end: SimTime) -> u64 {
        self.capacity.saturating_sub(self.peak_usage(start, end))
    }

    /// Book `amount` over `[start, end)` if it fits everywhere in the
    /// window.
    ///
    /// # Panics
    /// Panics on an empty/inverted window or zero amount.
    pub fn try_book(
        &mut self,
        start: SimTime,
        end: SimTime,
        amount: u64,
    ) -> Result<BookingId, u64> {
        assert!(start < end, "empty or inverted window");
        assert!(amount > 0, "zero-amount booking");
        let available = self.available(start, end);
        if amount > available {
            return Err(available);
        }
        *self.deltas.entry(start).or_insert(0) += amount as i64;
        *self.deltas.entry(end).or_insert(0) -= amount as i64;
        let id = BookingId(self.next_id);
        self.next_id += 1;
        self.bookings.insert(id, (start, end, amount));
        Ok(id)
    }

    /// Cancel a booking (idempotent).
    pub fn cancel(&mut self, id: BookingId) {
        if let Some((start, end, amount)) = self.bookings.remove(&id) {
            self.apply_delta(start, -(amount as i64));
            self.apply_delta(end, amount as i64);
        }
    }

    fn apply_delta(&mut self, at: SimTime, d: i64) {
        let e = self.deltas.entry(at).or_insert(0);
        *e += d;
        if *e == 0 {
            self.deltas.remove(&at);
        }
    }

    /// Number of live bookings.
    pub fn bookings(&self) -> usize {
        self.bookings.len()
    }

    /// The booked interval and amount for a handle.
    pub fn booking(&self, id: BookingId) -> Option<(SimTime, SimTime, u64)> {
        self.bookings.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn booking_and_peak() {
        let mut l = IntervalLedger::new(100);
        l.try_book(t(0), t(10), 60).unwrap();
        l.try_book(t(5), t(15), 30).unwrap();
        assert_eq!(l.peak_usage(t(0), t(20)), 90);
        assert_eq!(l.peak_usage(t(10), t(20)), 30);
        assert_eq!(l.available(t(0), t(10)), 10);
        assert_eq!(l.available(t(15), t(20)), 100);
    }

    #[test]
    fn overlap_rejection_reports_headroom() {
        let mut l = IntervalLedger::new(100);
        l.try_book(t(0), t(10), 80).unwrap();
        // A 30-unit booking overlapping the busy region fails with the
        // window's true headroom.
        assert_eq!(l.try_book(t(5), t(8), 30), Err(20));
        // The same amount after the busy region fits.
        assert!(l.try_book(t(10), t(20), 30).is_ok());
    }

    #[test]
    fn adjacent_intervals_do_not_collide() {
        let mut l = IntervalLedger::new(50);
        l.try_book(t(0), t(10), 50).unwrap();
        // [10, 20) touches but does not overlap [0, 10).
        assert!(l.try_book(t(10), t(20), 50).is_ok());
    }

    #[test]
    fn cancel_restores_capacity_exactly() {
        let mut l = IntervalLedger::new(100);
        let a = l.try_book(t(0), t(10), 70).unwrap();
        let b = l.try_book(t(2), t(6), 30).unwrap();
        assert_eq!(l.bookings(), 2);
        l.cancel(a);
        l.cancel(b);
        l.cancel(b); // idempotent
        assert_eq!(l.bookings(), 0);
        assert_eq!(l.peak_usage(t(0), t(20)), 0);
        // The delta map is fully cleaned (no residue entries).
        assert!(l.try_book(t(0), t(20), 100).is_ok());
    }

    #[test]
    fn booking_lookup() {
        let mut l = IntervalLedger::new(10);
        let id = l.try_book(t(1), t(3), 4).unwrap();
        assert_eq!(l.booking(id), Some((t(1), t(3), 4)));
        l.cancel(id);
        assert_eq!(l.booking(id), None);
    }

    #[test]
    fn many_bookings_sweep_correctly() {
        let mut l = IntervalLedger::new(1_000);
        // 100 staggered 10-unit bookings, each [i, i+5).
        for i in 0..100u64 {
            l.try_book(t(i), t(i + 5), 10).unwrap();
        }
        // At any instant at most 5 overlap → peak 50.
        assert_eq!(l.peak_usage(t(0), t(200)), 50);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_rejected() {
        let mut l = IntervalLedger::new(10);
        let _ = l.try_book(t(5), t(5), 1);
    }
}
