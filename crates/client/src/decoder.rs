//! Decoders installed on a client machine.

use nod_mmdoc::{Format, FrameRate, MediaQos, Resolution, Variant};

/// One installed decoder: a format plus the envelope it can sustain.
///
/// The limits model real decoder behaviour of the era: a software MPEG-1
/// decoder on a workstation could sustain SIF at 30 fps but not full HDTV;
/// the INRS scalable MPEG-2 decoder [Dub 95] decodes a subset of layers,
/// bounding resolution and rate by available cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decoder {
    /// The coding format this decoder handles.
    pub format: Format,
    /// Largest video resolution it can sustain (ignored for audio/discrete).
    pub max_resolution: Resolution,
    /// Highest frame rate it can sustain (ignored for audio/discrete).
    pub max_frame_rate: FrameRate,
}

impl Decoder {
    /// A decoder with no practical envelope limits (discrete media, audio).
    pub fn unlimited(format: Format) -> Self {
        Decoder {
            format,
            max_resolution: Resolution::HDTV,
            max_frame_rate: FrameRate::HDTV,
        }
    }

    /// A video decoder bounded by resolution and rate.
    pub fn video(format: Format, max_resolution: Resolution, max_frame_rate: FrameRate) -> Self {
        Decoder {
            format,
            max_resolution,
            max_frame_rate,
        }
    }

    /// Can this decoder play the variant at its stored QoS?
    pub fn can_decode(&self, variant: &Variant) -> bool {
        if variant.format != self.format {
            return false;
        }
        match &variant.qos {
            MediaQos::Video(v) => {
                v.resolution <= self.max_resolution && v.frame_rate <= self.max_frame_rate
            }
            // Audio, text, image, graphic decoders are envelope-free here:
            // matching the format suffices.
            _ => true,
        }
    }
}

/// The set of decoders a client machine carries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecoderRegistry {
    decoders: Vec<Decoder>,
}

impl DecoderRegistry {
    /// An empty registry (a diskless terminal).
    pub fn new() -> Self {
        DecoderRegistry::default()
    }

    /// Install a decoder; keeps the most capable envelope per format.
    pub fn install(&mut self, decoder: Decoder) {
        if let Some(existing) = self
            .decoders
            .iter_mut()
            .find(|d| d.format == decoder.format)
        {
            existing.max_resolution = existing.max_resolution.max(decoder.max_resolution);
            existing.max_frame_rate = existing.max_frame_rate.max(decoder.max_frame_rate);
        } else {
            self.decoders.push(decoder);
        }
    }

    /// Builder-style install.
    pub fn with(mut self, decoder: Decoder) -> Self {
        self.install(decoder);
        self
    }

    /// Is any decoder installed for this format?
    pub fn supports_format(&self, format: Format) -> bool {
        self.decoders.iter().any(|d| d.format == format)
    }

    /// Can any installed decoder play this variant?
    pub fn can_decode(&self, variant: &Variant) -> bool {
        self.decoders.iter().any(|d| d.can_decode(variant))
    }

    /// Installed decoders.
    pub fn decoders(&self) -> &[Decoder] {
        &self.decoders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_mmdoc::prelude::*;

    fn mpeg1_variant(px: u32, fps: u32) -> Variant {
        Variant {
            id: VariantId(1),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: MediaQos::Video(VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::new(px),
                frame_rate: FrameRate::new(fps),
            }),
            blocks: BlockStats::new(10_000, 5_000),
            blocks_per_second: fps,
            file_bytes: 1_000_000,
            server: ServerId(0),
        }
    }

    #[test]
    fn format_mismatch_rejected() {
        let d = Decoder::video(Format::Mpeg1, Resolution::TV, FrameRate::TV);
        let mut v = mpeg1_variant(640, 25);
        assert!(d.can_decode(&v));
        v.format = Format::Mjpeg;
        assert!(!d.can_decode(&v));
    }

    #[test]
    fn envelope_limits_enforced() {
        let d = Decoder::video(Format::Mpeg1, Resolution::TV, FrameRate::TV);
        assert!(d.can_decode(&mpeg1_variant(640, 25)));
        assert!(!d.can_decode(&mpeg1_variant(960, 25))); // beyond resolution
        assert!(!d.can_decode(&mpeg1_variant(640, 30))); // beyond rate
    }

    #[test]
    fn registry_unions_decoders() {
        let reg = DecoderRegistry::new()
            .with(Decoder::video(Format::Mpeg1, Resolution::TV, FrameRate::TV))
            .with(Decoder::unlimited(Format::PcmLinear));
        assert!(reg.supports_format(Format::Mpeg1));
        assert!(reg.supports_format(Format::PcmLinear));
        assert!(!reg.supports_format(Format::Mjpeg));
        assert!(reg.can_decode(&mpeg1_variant(640, 25)));
        assert!(!reg.can_decode(&mpeg1_variant(1280, 25)));
    }

    #[test]
    fn install_keeps_best_envelope() {
        let mut reg = DecoderRegistry::new();
        reg.install(Decoder::video(
            Format::Mpeg1,
            Resolution::new(352),
            FrameRate::new(15),
        ));
        reg.install(Decoder::video(Format::Mpeg1, Resolution::TV, FrameRate::TV));
        assert_eq!(reg.decoders().len(), 1);
        assert!(reg.can_decode(&mpeg1_variant(640, 25)));
    }

    #[test]
    fn audio_decoder_ignores_video_limits() {
        let reg = DecoderRegistry::new().with(Decoder::unlimited(Format::MpegAudio));
        let v = Variant {
            id: VariantId(2),
            monomedia: MonomediaId(2),
            format: Format::MpegAudio,
            qos: MediaQos::Audio(AudioQos {
                quality: AudioQuality::Cd,
                language: Language::English,
            }),
            blocks: BlockStats::new(1, 1),
            blocks_per_second: 44_100,
            file_bytes: 1_000,
            server: ServerId(0),
        };
        assert!(reg.can_decode(&v));
    }
}
