//! The client machine: display, audio device, decoders.

use nod_mmdoc::prelude::*;

use crate::decoder::{Decoder, DecoderRegistry};

/// Display characteristics relevant to step-1 local negotiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Display {
    /// Screen width, pixels.
    pub width_px: u32,
    /// Screen height, pixels.
    pub height_px: u32,
    /// Deepest color the screen can render.
    pub color: ColorDepth,
}

/// Audio output hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AudioDevice {
    /// Best quality the device can reproduce.
    pub max_quality: AudioQuality,
}

/// Why the client machine cannot render a requested QoS (the
/// `FAILEDWITHLOCALOFFER` causes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalLimitation {
    /// Requested color depth exceeds the screen's (e.g. color on b&w).
    ScreenColor {
        /// What the screen can do.
        supported: ColorDepth,
        /// What was asked.
        requested: ColorDepth,
    },
    /// Requested resolution exceeds the screen width.
    ScreenSize {
        /// Screen width in pixels.
        supported_px: u32,
        /// Requested pixels per line.
        requested_px: u32,
    },
    /// Requested audio quality exceeds the device (or there is no device).
    AudioDevice {
        /// Best reproducible quality, `None` for no audio hardware.
        supported: Option<AudioQuality>,
        /// What was asked.
        requested: AudioQuality,
    },
}

impl std::fmt::Display for LocalLimitation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalLimitation::ScreenColor {
                supported,
                requested,
            } => write!(f, "screen renders {supported}, {requested} requested"),
            LocalLimitation::ScreenSize {
                supported_px,
                requested_px,
            } => write!(
                f,
                "screen is {supported_px} px wide, {requested_px} px/line requested"
            ),
            LocalLimitation::AudioDevice {
                supported,
                requested,
            } => match supported {
                Some(q) => write!(f, "audio device tops out at {q}, {requested} requested"),
                None => write!(f, "no audio device, {requested} requested"),
            },
        }
    }
}

/// A client machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientMachine {
    /// Machine id.
    pub id: ClientId,
    /// The display.
    pub display: Display,
    /// The audio device, if any.
    pub audio: Option<AudioDevice>,
    /// Installed decoders.
    pub decoders: DecoderRegistry,
    /// Concurrent decode budget, in megapixel-operations per second.
    /// Decoding the streams of one system offer must fit this budget — the
    /// era's software decoders were CPU-bound (the INRS scalable decoder
    /// trades layers for cycles).
    pub decode_budget: f64,
}

impl ClientMachine {
    /// A period-typical color workstation: 1024×768 color display, CD-class
    /// audio, MPEG-1 + MJPEG + H.261 video and the full audio/still suite.
    pub fn era_workstation(id: ClientId) -> Self {
        let decoders = DecoderRegistry::new()
            .with(Decoder::video(
                Format::Mpeg1,
                Resolution::new(1024),
                FrameRate::new(30),
            ))
            .with(Decoder::video(
                Format::Mjpeg,
                Resolution::new(640),
                FrameRate::new(25),
            ))
            .with(Decoder::video(
                Format::H261,
                Resolution::new(352),
                FrameRate::new(30),
            ))
            .with(Decoder::unlimited(Format::PcmLinear))
            .with(Decoder::unlimited(Format::PcmMulaw))
            .with(Decoder::unlimited(Format::Adpcm))
            .with(Decoder::unlimited(Format::MpegAudio))
            .with(Decoder::unlimited(Format::Jpeg))
            .with(Decoder::unlimited(Format::Gif))
            .with(Decoder::unlimited(Format::PlainText))
            .with(Decoder::unlimited(Format::Html));
        ClientMachine {
            id,
            display: Display {
                width_px: 1024,
                height_px: 768,
                color: ColorDepth::Color,
            },
            audio: Some(AudioDevice {
                max_quality: AudioQuality::Cd,
            }),
            decoders,
            decode_budget: 14.0,
        }
    }

    /// A high-end machine: 1920-wide super-color display, MPEG-2 scalable
    /// decoder (the INRS component) on top of the workstation suite.
    pub fn era_highend(id: ClientId) -> Self {
        let mut m = ClientMachine::era_workstation(id);
        m.display = Display {
            width_px: 1920,
            height_px: 1080,
            color: ColorDepth::SuperColor,
        };
        m.decoders.install(Decoder::video(
            Format::Mpeg2,
            Resolution::HDTV,
            FrameRate::new(30),
        ));
        m.decoders.install(Decoder::video(
            Format::Mpeg1,
            Resolution::HDTV,
            FrameRate::new(30),
        ));
        m.decode_budget = 64.0;
        m
    }

    /// A grayscale budget PC: 640-wide grey display, telephone audio,
    /// H.261-only video.
    pub fn era_budget_pc(id: ClientId) -> Self {
        let decoders = DecoderRegistry::new()
            .with(Decoder::video(
                Format::H261,
                Resolution::new(352),
                FrameRate::new(15),
            ))
            .with(Decoder::unlimited(Format::PcmMulaw))
            .with(Decoder::unlimited(Format::Gif))
            .with(Decoder::unlimited(Format::PlainText));
        ClientMachine {
            id,
            display: Display {
                width_px: 640,
                height_px: 480,
                color: ColorDepth::Grey,
            },
            audio: Some(AudioDevice {
                max_quality: AudioQuality::Telephone,
            }),
            decoders,
            decode_budget: 3.0,
        }
    }

    /// Step-1 check: can the machine *render* this QoS at all? Returns the
    /// first limitation found.
    pub fn check_local(&self, qos: &MediaQos) -> Result<(), LocalLimitation> {
        match qos {
            MediaQos::Video(v) => {
                if v.color > self.display.color {
                    return Err(LocalLimitation::ScreenColor {
                        supported: self.display.color,
                        requested: v.color,
                    });
                }
                if v.resolution.pixels_per_line() > self.display.width_px {
                    return Err(LocalLimitation::ScreenSize {
                        supported_px: self.display.width_px,
                        requested_px: v.resolution.pixels_per_line(),
                    });
                }
                Ok(())
            }
            MediaQos::Image(i) | MediaQos::Graphic(i) => {
                if i.color > self.display.color {
                    return Err(LocalLimitation::ScreenColor {
                        supported: self.display.color,
                        requested: i.color,
                    });
                }
                if i.resolution.pixels_per_line() > self.display.width_px {
                    return Err(LocalLimitation::ScreenSize {
                        supported_px: self.display.width_px,
                        requested_px: i.resolution.pixels_per_line(),
                    });
                }
                Ok(())
            }
            MediaQos::Audio(a) => {
                let supported = self.audio.map(|d| d.max_quality);
                match supported {
                    Some(q) if a.quality <= q => Ok(()),
                    _ => Err(LocalLimitation::AudioDevice {
                        supported,
                        requested: a.quality,
                    }),
                }
            }
            MediaQos::Text(_) => Ok(()),
        }
    }

    /// Step-2 check: is any installed decoder able to play the variant (and
    /// the machine able to render it)?
    pub fn feasible(&self, variant: &Variant) -> bool {
        self.decoders.can_decode(variant) && self.check_local(&variant.qos).is_ok()
    }

    /// CPU cost of decoding one variant, in megapixel-ops/s. Video scales
    /// with raster area × rate × a codec-complexity factor; audio is a
    /// small fixed charge; discrete media decode once, off the budget.
    pub fn decode_cost(&self, variant: &Variant) -> f64 {
        match &variant.qos {
            MediaQos::Video(v) => {
                let codec = match variant.format {
                    Format::Mpeg2 => 1.3,
                    Format::Mpeg1 => 1.0,
                    Format::H261 => 0.8,
                    Format::Mjpeg => 0.6,
                    _ => 1.0,
                };
                v.resolution.pixels_per_line() as f64
                    * v.resolution.lines() as f64
                    * v.frame_rate.fps() as f64
                    / 1e6
                    * codec
            }
            MediaQos::Audio(_) => 0.5,
            _ => 0.0,
        }
    }

    /// Can the machine decode all these streams *at the same time*?
    /// Per-variant decodability is step 2's job; this is the combination
    /// check step 5 applies to a whole system offer.
    pub fn can_decode_concurrently<'a>(
        &self,
        variants: impl IntoIterator<Item = &'a Variant>,
    ) -> bool {
        let total: f64 = variants.into_iter().map(|v| self.decode_cost(v)).sum();
        total <= self.decode_budget
    }

    /// Clamp a requested QoS to what the machine can render — the *local
    /// offer* returned with `FAILEDWITHLOCALOFFER`.
    pub fn clamp_to_local(&self, qos: &MediaQos) -> MediaQos {
        match qos {
            MediaQos::Video(v) => MediaQos::Video(VideoQos {
                color: v.color.min(self.display.color),
                resolution: Resolution::new(
                    v.resolution
                        .pixels_per_line()
                        .min(self.display.width_px.clamp(10, 1920)),
                ),
                frame_rate: v.frame_rate,
            }),
            MediaQos::Image(i) => MediaQos::Image(ImageQos {
                color: i.color.min(self.display.color),
                resolution: Resolution::new(
                    i.resolution
                        .pixels_per_line()
                        .min(self.display.width_px.clamp(10, 1920)),
                ),
            }),
            MediaQos::Graphic(g) => MediaQos::Graphic(ImageQos {
                color: g.color.min(self.display.color),
                resolution: Resolution::new(
                    g.resolution
                        .pixels_per_line()
                        .min(self.display.width_px.clamp(10, 1920)),
                ),
            }),
            MediaQos::Audio(a) => MediaQos::Audio(AudioQos {
                quality: self
                    .audio
                    .map(|d| a.quality.min(d.max_quality))
                    .unwrap_or(AudioQuality::Telephone),
                language: a.language,
            }),
            MediaQos::Text(t) => MediaQos::Text(*t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn color_tv_video() -> MediaQos {
        MediaQos::Video(VideoQos {
            color: ColorDepth::Color,
            resolution: Resolution::TV,
            frame_rate: FrameRate::TV,
        })
    }

    #[test]
    fn workstation_renders_tv_color() {
        let m = ClientMachine::era_workstation(ClientId(0));
        assert!(m.check_local(&color_tv_video()).is_ok());
    }

    #[test]
    fn paper_example_color_on_bw_screen() {
        // Paper §4, FAILEDWITHLOCALOFFER: "the user asks for a color video,
        // while the client machine screen is black&white".
        let mut m = ClientMachine::era_budget_pc(ClientId(0));
        m.display.color = ColorDepth::BlackWhite;
        match m.check_local(&color_tv_video()).unwrap_err() {
            LocalLimitation::ScreenColor {
                supported,
                requested,
            } => {
                assert_eq!(supported, ColorDepth::BlackWhite);
                assert_eq!(requested, ColorDepth::Color);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn screen_size_limitation() {
        let m = ClientMachine::era_budget_pc(ClientId(0));
        let hd = MediaQos::Video(VideoQos {
            color: ColorDepth::Grey,
            resolution: Resolution::new(1280),
            frame_rate: FrameRate::TV,
        });
        assert!(matches!(
            m.check_local(&hd).unwrap_err(),
            LocalLimitation::ScreenSize {
                supported_px: 640,
                requested_px: 1280
            }
        ));
    }

    #[test]
    fn audio_limitation() {
        let m = ClientMachine::era_budget_pc(ClientId(0));
        let cd = MediaQos::Audio(AudioQos {
            quality: AudioQuality::Cd,
            language: Language::English,
        });
        assert!(matches!(
            m.check_local(&cd).unwrap_err(),
            LocalLimitation::AudioDevice {
                supported: Some(AudioQuality::Telephone),
                ..
            }
        ));
        let mut deaf = m.clone();
        deaf.audio = None;
        assert!(matches!(
            deaf.check_local(&cd).unwrap_err(),
            LocalLimitation::AudioDevice {
                supported: None,
                ..
            }
        ));
    }

    #[test]
    fn text_always_renderable() {
        let m = ClientMachine::era_budget_pc(ClientId(0));
        assert!(m
            .check_local(&MediaQos::Text(TextQos {
                language: Language::French
            }))
            .is_ok());
    }

    #[test]
    fn feasible_combines_decode_and_render() {
        let m = ClientMachine::era_workstation(ClientId(0));
        let mpeg = Variant {
            id: VariantId(1),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: color_tv_video(),
            blocks: BlockStats::new(10_000, 5_000),
            blocks_per_second: 25,
            file_bytes: 1_000_000,
            server: ServerId(0),
        };
        assert!(m.feasible(&mpeg));
        // Paper §4 example: MJPEG file on an MPEG-only client is "simply
        // not considered as a feasible system offer".
        let mut mpeg_only = m.clone();
        mpeg_only.decoders = DecoderRegistry::new().with(Decoder::video(
            Format::Mpeg1,
            Resolution::new(1024),
            FrameRate::new(30),
        ));
        let mut mjpeg = mpeg.clone();
        mjpeg.format = Format::Mjpeg;
        assert!(!mpeg_only.feasible(&mjpeg));
        assert!(mpeg_only.feasible(&mpeg));
    }

    #[test]
    fn clamp_produces_renderable_offer() {
        let m = ClientMachine::era_budget_pc(ClientId(0));
        let clamped = m.clamp_to_local(&color_tv_video());
        assert!(m.check_local(&clamped).is_ok());
        match clamped {
            MediaQos::Video(v) => {
                assert_eq!(v.color, ColorDepth::Grey);
                assert_eq!(v.resolution.pixels_per_line(), 640);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Audio clamps to the device.
        let cd = MediaQos::Audio(AudioQos {
            quality: AudioQuality::Cd,
            language: Language::French,
        });
        match m.clamp_to_local(&cd) {
            MediaQos::Audio(a) => {
                assert_eq!(a.quality, AudioQuality::Telephone);
                assert_eq!(a.language, Language::French);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_budget_bounds_concurrency() {
        let ws = ClientMachine::era_workstation(ClientId(0));
        let mk = |id: u64, px: u32, fps: u32, fmt: Format| Variant {
            id: VariantId(id),
            monomedia: MonomediaId(id),
            format: fmt,
            qos: MediaQos::Video(VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::new(px),
                frame_rate: FrameRate::new(fps),
            }),
            blocks: BlockStats::new(10_000, 5_000),
            blocks_per_second: fps,
            file_bytes: 1_000_000,
            server: ServerId(0),
        };
        let tv = mk(1, 640, 25, Format::Mpeg1);
        // One TV stream plus audio fits the workstation budget.
        let audio = Variant {
            id: VariantId(2),
            monomedia: MonomediaId(2),
            format: Format::PcmLinear,
            qos: MediaQos::Audio(AudioQos {
                quality: AudioQuality::Cd,
                language: Language::English,
            }),
            blocks: BlockStats::new(4, 4),
            blocks_per_second: 44_100,
            file_bytes: 1_000,
            server: ServerId(0),
        };
        assert!(ws.can_decode_concurrently([&tv, &audio]));
        // Two concurrent TV streams blow the budget (7.7 × 2 > 14).
        let tv2 = mk(3, 640, 25, Format::Mpeg1);
        assert!(!ws.can_decode_concurrently([&tv, &tv2]));
        // The high-end machine handles both.
        let hi = ClientMachine::era_highend(ClientId(1));
        assert!(hi.can_decode_concurrently([&tv, &tv2]));
        // MJPEG is cheaper to decode than MPEG-1 at the same raster.
        let mjpeg = mk(4, 640, 25, Format::Mjpeg);
        assert!(ws.decode_cost(&mjpeg) < ws.decode_cost(&tv));
        // Discrete media are free at playout time.
        use crate::decoder::Decoder as _d;
        let _ = _d::unlimited(Format::Jpeg);
        let img = Variant {
            id: VariantId(5),
            monomedia: MonomediaId(5),
            format: Format::Jpeg,
            qos: MediaQos::Image(ImageQos {
                color: ColorDepth::Color,
                resolution: Resolution::TV,
            }),
            blocks: BlockStats::new(1_000, 1_000),
            blocks_per_second: 0,
            file_bytes: 1_000,
            server: ServerId(0),
        };
        assert_eq!(ws.decode_cost(&img), 0.0);
    }

    #[test]
    fn highend_decodes_mpeg2() {
        let m = ClientMachine::era_highend(ClientId(0));
        let v = Variant {
            id: VariantId(1),
            monomedia: MonomediaId(1),
            format: Format::Mpeg2,
            qos: MediaQos::Video(VideoQos {
                color: ColorDepth::SuperColor,
                resolution: Resolution::new(1280),
                frame_rate: FrameRate::new(30),
            }),
            blocks: BlockStats::new(40_000, 20_000),
            blocks_per_second: 30,
            file_bytes: 10_000_000,
            server: ServerId(0),
        };
        assert!(m.feasible(&v));
        assert!(!ClientMachine::era_workstation(ClientId(1)).feasible(&v));
    }
}
