//! Client machine capability model.
//!
//! Two steps of the paper's negotiation procedure live against this model:
//!
//! * **Step 1, static local negotiation** — "check whether the client
//!   machine characteristics, such as the screen size and the screen color,
//!   support the requested QoS"; a color request on a black&white screen
//!   yields `FAILEDWITHLOCALOFFER`.
//! * **Step 2, static compatibility checking** — "check the format
//!   compatibility of the variants … with the decoder(s) supported by the
//!   client machine"; an MJPEG variant is infeasible on an MPEG-only
//!   client.
//!
//! The model covers the display (size, color depth), the audio device, and
//! a decoder registry with per-decoder limits (the INRS scalable MPEG-2
//! decoder is a decoder whose resolution limit depends on layers decoded).

pub mod decoder;
pub mod machine;

pub use decoder::{Decoder, DecoderRegistry};
pub use machine::{AudioDevice, ClientMachine, Display, LocalLimitation};
