//! `nod-top`: the live fleet view, rendered for terminals.
//!
//! The broker folds its outcome log into tumbling virtual-time windows
//! (`nod_broker::fleet_windows`); this module renders those rows as a
//! `top`-style frame — one summary block for the window under the
//! cursor plus an activity strip over the trailing history — so a
//! contended run can be replayed frame by frame at a fixed cadence.
//! Rendering is pure (`&[TopRow]` in, `String` out) and the row type is
//! local, so the core TUI crate stays dependency-free; the `nod_top`
//! binary (feature `top`) adapts `FleetWindow` into [`TopRow`] and
//! drives the frame loop.

/// One fleet window, as the top view consumes it (mirrors
/// `nod_broker::FleetWindow` without depending on the broker crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopRow {
    /// Window start, inclusive, ms.
    pub start_ms: u64,
    /// Window end, exclusive, ms.
    pub end_ms: u64,
    /// Sessions admitted at full QoS.
    pub admitted: u64,
    /// Sessions admitted on a degraded offer.
    pub degraded: u64,
    /// Sessions starved out by contention.
    pub starved: u64,
    /// Sessions terminally refused.
    pub rejected: u64,
    /// Sessions that errored.
    pub errored: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Admitted sessions that released their resources.
    pub departures: u64,
    /// Fault-window edges that fired.
    pub fault_edges: u64,
    /// Sessions holding resources at the window's close.
    pub active_at_end: u64,
}

/// The eight-level block ramp used for activity sparklines.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A sparkline over `values`, scaled to the series' own maximum; an
/// all-zero series renders as a flat baseline.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                RAMP[0]
            } else {
                RAMP[(v * 7).div_ceil(max).min(7) as usize]
            }
        })
        .collect()
}

/// Render one frame of the fleet view: the window at `cursor` in focus,
/// with trailing sparklines over everything up to and including it.
/// `alerts` (burning SLO names) render as a banner line when non-empty.
/// Deterministic: same rows, cursor and alerts — same frame.
pub fn render_frame(rows: &[TopRow], cursor: usize, alerts: &[&str]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("nod-top — no fleet windows (empty outcome log)\n");
        return out;
    }
    let cursor = cursor.min(rows.len() - 1);
    let w = &rows[cursor];
    out.push_str(&format!(
        "nod-top — fleet window {}/{}  t = [{} ms, {} ms)\n",
        cursor + 1,
        rows.len(),
        w.start_ms,
        w.end_ms
    ));
    if !alerts.is_empty() {
        out.push_str(&format!("SLO BURNING: {}\n", alerts.join(", ")));
    }
    out.push_str(&format!(
        "admitted {:>5}  degraded {:>5}  starved {:>5}  rejected {:>5}  errored {:>5}\n",
        w.admitted, w.degraded, w.starved, w.rejected, w.errored
    ));
    out.push_str(&format!(
        "retries  {:>5}  departed {:>5}  faults  {:>5}  active   {:>5}\n",
        w.retries, w.departures, w.fault_edges, w.active_at_end
    ));
    let seen = &rows[..=cursor];
    let series = |f: fn(&TopRow) -> u64| -> Vec<u64> { seen.iter().map(f).collect() };
    out.push_str(&format!(
        "admissions {}\n",
        sparkline(&series(|r| r.admitted + r.degraded))
    ));
    out.push_str(&format!(
        "refusals   {}\n",
        sparkline(&series(|r| r.starved + r.rejected + r.errored))
    ));
    out.push_str(&format!(
        "retries    {}\n",
        sparkline(&series(|r| r.retries))
    ));
    out.push_str(&format!(
        "active     {}\n",
        sparkline(&series(|r| r.active_at_end))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<TopRow> {
        (0..4)
            .map(|i| TopRow {
                start_ms: i * 1_000,
                end_ms: (i + 1) * 1_000,
                admitted: i,
                retries: 4 - i,
                active_at_end: i,
                ..TopRow::default()
            })
            .collect()
    }

    #[test]
    fn sparkline_scales_to_series_max() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        // Ceil scaling: any nonzero value clears the baseline glyph.
        assert_eq!(sparkline(&[1, 8]), "▂█");
        assert_eq!(sparkline(&[]), "");
        let s: Vec<char> = sparkline(&[0, 2, 4, 8]).chars().collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], '▁');
        assert_eq!(s[3], '█');
    }

    #[test]
    fn frame_is_deterministic_and_windowed() {
        let rows = rows();
        let a = render_frame(&rows, 2, &[]);
        let b = render_frame(&rows, 2, &[]);
        assert_eq!(a, b);
        assert!(a.starts_with("nod-top — fleet window 3/4  t = [2000 ms, 3000 ms)\n"));
        assert!(a.contains("admitted     2"));
        assert!(!a.contains("SLO BURNING"));
        // Sparklines cover only the windows seen so far.
        let admissions = a.lines().find(|l| l.starts_with("admissions")).unwrap();
        assert_eq!(
            admissions.chars().count(),
            "admissions ".chars().count() + 3
        );
        // Cursor past the end clamps to the last window.
        assert!(render_frame(&rows, 99, &[]).starts_with("nod-top — fleet window 4/4"));
    }

    #[test]
    fn alerts_render_as_a_banner() {
        let rows = rows();
        let frame = render_frame(&rows, 0, &["session-failure-ratio"]);
        assert!(frame.contains("SLO BURNING: session-failure-ratio\n"));
        assert!(render_frame(&[], 0, &[]).contains("no fleet windows"));
    }
}
