//! The QoS GUI, rendered for terminals (paper §8, Figures 3–7).
//!
//! The prototype's profile manager displayed AIC/Motif windows; figure
//! content, not measured results. This crate reproduces the same window set
//! as deterministic text renderings — the *workflow* (select profile →
//! negotiate → offer display with constraint highlighting → confirm /
//! cancel / renegotiate) is what matters, and it is fully exercised by the
//! [`flow::ProfileManagerApp`] state machine:
//!
//! * **main window** (Fig. 3) — profile list, `OK` to negotiate, `EXIT`;
//! * **profile component window** (Fig. 4) — monomedia/time/cost profile
//!   list with the violated profiles' constraint buttons "activated with
//!   red color" (here: `[!]` markers);
//! * **per-media profile windows** (Fig. 5) — scaling bars with desired,
//!   minimum-acceptable and offered positions;
//! * **information window** (Fig. 6/7) — negotiation status, offered QoS
//!   parameter values, cost, and the `choicePeriod` countdown.

//!
//! Beyond the per-session GUI, [`top`] renders the *fleet*: tumbling
//! broker windows as a `top`-style frame (summary block + activity
//! sparklines), driven live by the `nod_top` binary (feature `top`).

pub mod flow;
pub mod top;
pub mod windows;

pub use flow::{ProfileManagerApp, UiAction, UiEvent, UiState};
pub use top::{render_frame, sparkline, TopRow};
pub use windows::{
    audio_profile_window, bar, cost_profile_window, information_window, main_window,
    profile_component_window, show_example, time_profile_window, video_profile_window,
};
