//! `nod_top` — live fleet view over a contended broker run.
//!
//! ```text
//! cargo run --release -p nod-tui --features top --bin nod_top -- \
//!     --sessions 64 --servers 2 --seed 9 --window-ms 2000 --fps 8
//! ```
//!
//! Drives the B9 contended workload, folds the broker's outcome log
//! into tumbling virtual-time windows (`nod_broker::fleet_windows`) and
//! replays them as `top`-style frames: a summary block for the window
//! under the cursor plus activity sparklines over the history so far.
//! `--slos` attaches the default fleet SLO set; a window's frame shows
//! a `SLO BURNING` banner once a burn alert's window has closed.
//! `--once` skips the replay and prints only the final frame — the
//! deterministic form CI can diff.

use nod_broker::fleet_windows;
use nod_obs::default_fleet_slos;
use nod_tui::top::{render_frame, TopRow};
use nod_workload::{run_contended_with, ContendedConfig};

fn usage() -> ! {
    eprintln!(
        "usage: nod_top [--sessions N] [--servers N] [--clients N] [--seed N] [--faults N] \
         [--arrivals-per-minute F] [--hold-ms N] [--window-ms N] [--fps F] [--slos] [--once]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match it.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("error: {flag} needs a value");
            usage()
        }
    }
}

fn main() {
    let mut config = ContendedConfig {
        seed: 9,
        sessions: 64,
        servers: 2,
        arrivals_per_minute: 180.0,
        hold_ms: 12_000,
        ..ContendedConfig::default()
    };
    let mut window_ms: u64 = 2_000;
    let mut fps: f64 = 8.0;
    let mut once = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => config.sessions = parse(&mut it, "--sessions"),
            "--servers" => config.servers = parse(&mut it, "--servers"),
            "--clients" => config.clients = parse(&mut it, "--clients"),
            "--seed" => config.seed = parse(&mut it, "--seed"),
            "--faults" => config.fault_windows = parse(&mut it, "--faults"),
            "--arrivals-per-minute" => {
                config.arrivals_per_minute = parse(&mut it, "--arrivals-per-minute")
            }
            "--hold-ms" => config.hold_ms = parse(&mut it, "--hold-ms"),
            "--window-ms" => window_ms = parse(&mut it, "--window-ms"),
            "--fps" => fps = parse(&mut it, "--fps"),
            "--slos" => config.slos = default_fleet_slos(),
            "--once" => once = true,
            _ => usage(),
        }
    }

    let (result, report) = run_contended_with(&config, None);
    let rows: Vec<TopRow> = fleet_windows(&report.events, window_ms)
        .iter()
        .map(|w| TopRow {
            start_ms: w.start_ms,
            end_ms: w.end_ms,
            admitted: w.admitted,
            degraded: w.degraded,
            starved: w.starved,
            rejected: w.rejected,
            errored: w.errored,
            retries: w.retries,
            departures: w.departures,
            fault_edges: w.fault_edges,
            active_at_end: w.active_at_end,
        })
        .collect();

    // An alert banners every frame from the window its burn closed in.
    let alerts_at = |end_ms: u64| -> Vec<&str> {
        report
            .slo_alerts
            .iter()
            .filter(|a| a.window_end_ms <= end_ms)
            .map(|a| a.slo)
            .collect()
    };

    if once {
        let cursor = rows.len().saturating_sub(1);
        let end_ms = rows.last().map_or(0, |w| w.end_ms);
        print!("{}", render_frame(&rows, cursor, &alerts_at(end_ms)));
    } else {
        let frame_gap = std::time::Duration::from_secs_f64(1.0 / fps.max(0.1));
        for (cursor, w) in rows.iter().enumerate() {
            // ESC[2J ESC[H: clear and home, the classic top repaint.
            print!(
                "\x1b[2J\x1b[H{}",
                render_frame(&rows, cursor, &alerts_at(w.end_ms))
            );
            std::thread::sleep(frame_gap);
        }
        if rows.is_empty() {
            print!("{}", render_frame(&rows, 0, &[]));
        }
    }
    println!(
        "run: seed {} — admitted {}/{} ({:.0}%)  retries {}  leaked {}",
        config.seed,
        result.admitted,
        result.offered,
        100.0 * result.admission_ratio,
        result.retries,
        result.leaked_streams,
    );
    for alert in &report.slo_alerts {
        println!(
            "SLO BURN: {} — observed {:.3} vs bound {:.3} for {} windows (ending at {} ms)",
            alert.slo, alert.observed, alert.threshold, alert.burning_windows, alert.window_end_ms
        );
    }
}
