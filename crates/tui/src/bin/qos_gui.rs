//! The QoS GUI as a runnable (scriptable) terminal application.
//!
//! ```text
//! cargo run -p nod-tui --bin qos_gui            # scripted demo session
//! echo "select 1\nok\naccept\nexit" | cargo run -p nod-tui --bin qos_gui -- --stdin
//! ```
//!
//! Commands (one per line with `--stdin`):
//! `list` · `select <n>` · `ok` (negotiate / confirm) · `cancel` ·
//! `components` · `video` · `audio` · `cost` · `time` · `example` ·
//! `accept` · `reject` · `exit`.
//!
//! Drives a real [`QosManager`] over a seeded deployment, exactly the §8
//! workflow: select profile → OK → information window (choicePeriod) →
//! accept (play) or reject (components window with constraint markers).

use std::io::BufRead;

use nod_client::ClientMachine;
use nod_cmfs::{ServerConfig, ServerFarm};
use nod_mmdb::{CorpusBuilder, CorpusParams};
use nod_mmdoc::{ClientId, DocumentId, ServerId};
use nod_netsim::{Network, Topology};
use nod_qosneg::manager::{ManagerConfig, QosManager};
use nod_qosneg::profile::tv_news_profile;
use nod_qosneg::{CostModel, Money, SessionReservation};
use nod_simcore::StreamRng;
use nod_tui::{windows, ProfileManagerApp, UiAction, UiEvent, UiState};

struct App {
    manager: QosManager,
    client: ClientMachine,
    gui: ProfileManagerApp,
    held: Option<SessionReservation>,
    document: DocumentId,
}

impl App {
    fn new() -> App {
        let mut rng = StreamRng::new(2026);
        let catalog = CorpusBuilder::new(CorpusParams {
            documents: 8,
            servers: (0..3).map(ServerId).collect(),
            ..CorpusParams::default()
        })
        .build(&mut rng);
        let manager = QosManager::new(
            catalog,
            ServerFarm::uniform(3, ServerConfig::era_default()),
            Network::new(Topology::dumbbell(4, 3, 25_000_000, 155_000_000)),
            CostModel::era_default(),
            ManagerConfig::default(),
        );
        let mut economy = tv_news_profile();
        economy.name = "economy".into();
        economy.max_cost = Money::from_dollars(2);
        let mut premium = tv_news_profile();
        premium.name = "premium".into();
        premium.max_cost = Money::from_dollars(20);
        premium.importance.cost_per_dollar = 0.5;
        App {
            manager,
            client: ClientMachine::era_workstation(ClientId(0)),
            gui: ProfileManagerApp::new(vec![tv_news_profile(), economy, premium]),
            held: None,
            document: DocumentId(1),
        }
    }

    fn release_held(&mut self) {
        if let Some(r) = self.held.take() {
            self.manager.release(&r);
            println!("(resources released)");
        }
    }

    fn dispatch(&mut self, action: UiAction) {
        match action {
            UiAction::StartNegotiation { profile } => {
                let p = self.gui.selected_profile().clone();
                println!(
                    "negotiating {} under profile #{profile} \"{}\"…",
                    self.document, p.name
                );
                match self.manager.negotiate(&self.client, self.document, &p) {
                    Ok(outcome) => {
                        self.release_held();
                        self.held = outcome.reservation;
                        let violated = outcome
                            .user_offer
                            .as_ref()
                            .map(|o| nod_qosneg::violated_components(&p, o))
                            .unwrap_or_default();
                        self.gui.handle(UiEvent::NegotiationResult {
                            status: outcome.status,
                            offer: outcome.user_offer,
                            violated,
                        });
                    }
                    Err(e) => println!("negotiation error: {e}"),
                }
            }
            UiAction::AcceptOffer => {
                if self.held.take().is_some() {
                    println!("offer accepted — the presentation would start now.");
                    println!("(simulated playout elided; see examples/quickstart.rs)");
                } else {
                    println!("nothing to accept");
                }
            }
            UiAction::ReleaseOffer { timed_out } => {
                self.release_held();
                if timed_out {
                    println!("choicePeriod expired — session aborted.");
                }
            }
            UiAction::None => {}
        }
    }

    fn command(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        let cmd = match parts.next() {
            Some(c) => c,
            None => return true,
        };
        match cmd {
            "list" => print!("{}", self.gui.render(None)),
            "select" => {
                if let Some(Ok(n)) = parts.next().map(str::parse::<usize>) {
                    self.gui.handle(UiEvent::SelectProfile(n));
                    print!("{}", self.gui.render(None));
                } else {
                    println!("usage: select <index>");
                }
            }
            "ok" => {
                let action = self.gui.handle(UiEvent::Ok);
                self.dispatch(action);
                print!("{}", self.gui.render(Some(30_000)));
            }
            "accept" => {
                if self.gui.state() == UiState::Information {
                    let action = self.gui.handle(UiEvent::Ok);
                    self.dispatch(action);
                } else {
                    println!("no offer on screen");
                }
            }
            "reject" | "cancel" => {
                let action = self.gui.handle(UiEvent::Cancel);
                self.dispatch(action);
                print!("{}", self.gui.render(None));
            }
            "components" => {
                self.gui.handle(UiEvent::OpenComponents);
                print!("{}", self.gui.render(None));
            }
            "video" => {
                self.gui.handle(UiEvent::OpenVideoProfile);
                print!("{}", self.gui.render(None));
            }
            "audio" => print!(
                "{}",
                windows::audio_profile_window(self.gui.selected_profile(), None)
            ),
            "cost" => print!(
                "{}",
                windows::cost_profile_window(self.gui.selected_profile(), None)
            ),
            "time" => print!(
                "{}",
                windows::time_profile_window(self.gui.selected_profile())
            ),
            "example" => print!("{}", windows::show_example(self.gui.selected_profile())),
            "exit" => {
                self.release_held();
                self.gui.handle(UiEvent::Exit);
                return false;
            }
            other => println!("unknown command {other:?} (try: list select ok accept reject components video audio cost time example exit)"),
        }
        true
    }
}

fn main() {
    let from_stdin = std::env::args().any(|a| a == "--stdin");
    let mut app = App::new();
    println!("QoS GUI — news-on-demand profile manager (scripted terminal build)\n");
    if from_stdin {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.unwrap_or_default();
            println!("> {line}");
            if !app.command(&line) {
                break;
            }
        }
    } else {
        // The canned demo: the full §8 happy path and failure path.
        for line in [
            "list", "ok", "accept", "select 1", "ok", "reject", "video", "cost", "exit",
        ] {
            println!("> {line}");
            if !app.command(line) {
                break;
            }
        }
    }
    println!("bye.");
}
