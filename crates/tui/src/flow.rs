//! The profile-manager window flow (paper §8).
//!
//! A state machine over the window set: the main window appears on "Play
//! with QoS"; `OK` starts negotiation; the information window displays the
//! result and arms the `choicePeriod` timer; on failure the profile
//! component window highlights violated profiles and the user can edit and
//! renegotiate.

use nod_qosneg::{NegotiationStatus, UserOffer, UserProfile};

use crate::windows;

/// Which window is on screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UiState {
    /// Fig. 3 — profile selection.
    Main,
    /// Fig. 4 — the profile component list (after a failure, with
    /// constraint markers).
    ProfileComponents,
    /// Fig. 5 — editing the video profile.
    VideoProfile,
    /// Fig. 6/7 — negotiation result awaiting confirmation.
    Information,
    /// The GUI was exited.
    Exited,
}

/// User interactions the flow reacts to.
#[derive(Debug, Clone, PartialEq)]
pub enum UiEvent {
    /// Select a profile row in the main window.
    SelectProfile(usize),
    /// Press `OK` (context-dependent: negotiate / confirm offer).
    Ok,
    /// Press `CANCEL` (reject offer / back out of a window).
    Cancel,
    /// Double-click the selected profile (open components).
    OpenComponents,
    /// Open the video profile window from the components window.
    OpenVideoProfile,
    /// Press `EXIT` in the main window.
    Exit,
    /// The `choicePeriod` expired.
    ChoiceTimeout,
    /// A negotiation result arrived from the QoS manager.
    NegotiationResult {
        /// The status returned by the manager.
        status: NegotiationStatus,
        /// The user offer, if one was reserved.
        offer: Option<UserOffer>,
        /// Profile components the offer falls short of (drives the
        /// component window's red constraint buttons; compute with
        /// `nod_qosneg::violated_components`).
        violated: Vec<&'static str>,
    },
}

/// Outputs the embedding application must act on.
#[derive(Debug, Clone, PartialEq)]
pub enum UiAction {
    /// Run the negotiation procedure for the selected profile.
    StartNegotiation {
        /// Index of the selected profile.
        profile: usize,
    },
    /// The user accepted the reserved offer: start the presentation.
    AcceptOffer,
    /// The user rejected the offer (or it timed out): release resources.
    ReleaseOffer {
        /// True when the release was caused by the timer, not the user.
        timed_out: bool,
    },
    /// Nothing to do.
    None,
}

/// The profile manager's window flow.
#[derive(Debug)]
pub struct ProfileManagerApp {
    profiles: Vec<UserProfile>,
    selected: usize,
    state: UiState,
    last_status: Option<NegotiationStatus>,
    last_offer: Option<UserOffer>,
    last_violated: Vec<&'static str>,
}

impl ProfileManagerApp {
    /// Start at the main window with a set of stored profiles.
    ///
    /// # Panics
    /// Panics on an empty profile list (the GUI always ships defaults).
    pub fn new(profiles: Vec<UserProfile>) -> Self {
        assert!(!profiles.is_empty(), "the profile manager needs profiles");
        ProfileManagerApp {
            profiles,
            selected: 0,
            state: UiState::Main,
            last_status: None,
            last_offer: None,
            last_violated: Vec::new(),
        }
    }

    /// The window currently displayed.
    pub fn state(&self) -> UiState {
        self.state
    }

    /// The selected profile.
    pub fn selected_profile(&self) -> &UserProfile {
        &self.profiles[self.selected]
    }

    /// The last negotiation status shown, if any.
    pub fn last_status(&self) -> Option<NegotiationStatus> {
        self.last_status
    }

    /// Feed one event; returns the action the embedder must perform.
    pub fn handle(&mut self, event: UiEvent) -> UiAction {
        use UiEvent as E;
        use UiState as S;
        match (self.state, event) {
            (S::Main, E::SelectProfile(i)) => {
                if i < self.profiles.len() {
                    self.selected = i;
                }
                UiAction::None
            }
            (S::Main, E::Ok) => UiAction::StartNegotiation {
                profile: self.selected,
            },
            (S::Main, E::OpenComponents) => {
                self.state = S::ProfileComponents;
                UiAction::None
            }
            (S::Main, E::Exit) => {
                self.state = S::Exited;
                UiAction::None
            }
            (
                _,
                E::NegotiationResult {
                    status,
                    offer,
                    violated,
                },
            ) => {
                self.last_status = Some(status);
                self.last_offer = offer;
                self.last_violated = violated;
                self.state = match status {
                    NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer => {
                        S::Information
                    }
                    // Failures without a held offer show the component
                    // window with constraint markers (paper: "the profile
                    // component window appears also when the negotiation
                    // fails").
                    _ => S::ProfileComponents,
                };
                UiAction::None
            }
            (S::Information, E::Ok) => {
                self.state = S::Main;
                UiAction::AcceptOffer
            }
            (S::Information, E::Cancel) => {
                self.state = S::ProfileComponents;
                UiAction::ReleaseOffer { timed_out: false }
            }
            (S::Information, E::ChoiceTimeout) => {
                self.state = S::Main;
                UiAction::ReleaseOffer { timed_out: true }
            }
            (S::ProfileComponents, E::OpenVideoProfile) => {
                self.state = S::VideoProfile;
                UiAction::None
            }
            (S::ProfileComponents, E::Cancel) => {
                self.state = S::Main;
                UiAction::None
            }
            (S::VideoProfile, E::Ok) => {
                // Modified profile saved: renegotiate from the main window.
                self.state = S::Main;
                UiAction::StartNegotiation {
                    profile: self.selected,
                }
            }
            (S::VideoProfile, E::Cancel) => {
                self.state = S::ProfileComponents;
                UiAction::None
            }
            _ => UiAction::None,
        }
    }

    /// Render the current window.
    pub fn render(&self, choice_remaining_ms: Option<u64>) -> String {
        match self.state {
            UiState::Main => {
                let names: Vec<&str> = self.profiles.iter().map(|p| p.name.as_str()).collect();
                windows::main_window(&names, self.selected)
            }
            UiState::ProfileComponents => {
                // The red constraint buttons: exactly the components the
                // last offer fell short of.
                windows::profile_component_window(self.selected_profile(), &self.last_violated)
            }
            UiState::VideoProfile => windows::video_profile_window(
                self.selected_profile(),
                self.last_offer.as_ref().and_then(|o| o.qos.video.as_ref()),
            ),
            UiState::Information => windows::information_window(
                self.last_status
                    .unwrap_or(NegotiationStatus::FailedTryLater),
                self.last_offer.as_ref(),
                choice_remaining_ms,
            ),
            UiState::Exited => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_qosneg::profile::tv_news_profile;
    use nod_qosneg::Money;

    fn app() -> ProfileManagerApp {
        let mut economy = tv_news_profile();
        economy.name = "economy".into();
        economy.max_cost = Money::from_dollars(2);
        ProfileManagerApp::new(vec![tv_news_profile(), economy])
    }

    fn some_offer() -> UserOffer {
        UserOffer {
            qos: tv_news_profile().desired,
            cost: Money::from_dollars(4),
        }
    }

    #[test]
    fn select_then_negotiate() {
        let mut a = app();
        assert_eq!(a.state(), UiState::Main);
        a.handle(UiEvent::SelectProfile(1));
        assert_eq!(a.selected_profile().name, "economy");
        let action = a.handle(UiEvent::Ok);
        assert_eq!(action, UiAction::StartNegotiation { profile: 1 });
    }

    #[test]
    fn successful_result_shows_information_then_accept() {
        let mut a = app();
        a.handle(UiEvent::Ok);
        a.handle(UiEvent::NegotiationResult {
            status: NegotiationStatus::Succeeded,
            offer: Some(some_offer()),
            violated: vec![],
        });
        assert_eq!(a.state(), UiState::Information);
        let rendered = a.render(Some(25_000));
        assert!(rendered.contains("SUCCEEDED"));
        assert!(rendered.contains("confirm within 25 s"));
        assert_eq!(a.handle(UiEvent::Ok), UiAction::AcceptOffer);
        assert_eq!(a.state(), UiState::Main);
    }

    #[test]
    fn rejection_releases_and_opens_components() {
        let mut a = app();
        a.handle(UiEvent::NegotiationResult {
            status: NegotiationStatus::FailedWithOffer,
            offer: Some(some_offer()),
            violated: vec!["video", "cost"],
        });
        assert_eq!(a.state(), UiState::Information);
        assert_eq!(
            a.handle(UiEvent::Cancel),
            UiAction::ReleaseOffer { timed_out: false }
        );
        assert_eq!(a.state(), UiState::ProfileComponents);
        // Constraint markers appear after the failure.
        assert!(a.render(None).contains("[!]"));
    }

    #[test]
    fn timeout_aborts_the_session() {
        let mut a = app();
        a.handle(UiEvent::NegotiationResult {
            status: NegotiationStatus::Succeeded,
            offer: Some(some_offer()),
            violated: vec![],
        });
        assert_eq!(
            a.handle(UiEvent::ChoiceTimeout),
            UiAction::ReleaseOffer { timed_out: true }
        );
        assert_eq!(a.state(), UiState::Main);
    }

    #[test]
    fn hard_failures_open_components_without_offer() {
        let mut a = app();
        a.handle(UiEvent::NegotiationResult {
            status: NegotiationStatus::FailedTryLater,
            offer: None,
            violated: vec![],
        });
        assert_eq!(a.state(), UiState::ProfileComponents);
    }

    #[test]
    fn edit_and_renegotiate_loop() {
        let mut a = app();
        a.handle(UiEvent::NegotiationResult {
            status: NegotiationStatus::FailedWithOffer,
            offer: Some(some_offer()),
            violated: vec!["video", "cost"],
        });
        a.handle(UiEvent::Cancel); // to components
        a.handle(UiEvent::OpenVideoProfile);
        assert_eq!(a.state(), UiState::VideoProfile);
        // The offer's video values appear on the bars.
        assert!(a.render(None).contains("system offer"));
        let action = a.handle(UiEvent::Ok);
        assert_eq!(action, UiAction::StartNegotiation { profile: 0 });
        assert_eq!(a.state(), UiState::Main);
    }

    #[test]
    fn exit_terminates() {
        let mut a = app();
        a.handle(UiEvent::Exit);
        assert_eq!(a.state(), UiState::Exited);
        assert_eq!(a.render(None), "");
        // Events after exit are ignored.
        assert_eq!(a.handle(UiEvent::Ok), UiAction::None);
    }

    #[test]
    fn out_of_range_selection_ignored() {
        let mut a = app();
        a.handle(UiEvent::SelectProfile(99));
        assert_eq!(a.selected_profile().name, "tv-news");
    }
}
