//! Deterministic text renderings of the QoS GUI windows.

use nod_mmdoc::prelude::*;
use nod_qosneg::{Money, NegotiationStatus, UserOffer, UserProfile};

const WIDTH: usize = 62;

fn frame(title: &str, body_lines: &[String]) -> String {
    let mut out = String::new();
    out.push('┌');
    out.push_str(&"─".repeat(WIDTH - 2));
    out.push_str("┐\n");
    out.push_str(&center_line(title));
    out.push_str(&rule());
    for l in body_lines {
        out.push_str(&pad_line(l));
    }
    out.push('└');
    out.push_str(&"─".repeat(WIDTH - 2));
    out.push_str("┘\n");
    out
}

fn rule() -> String {
    format!("├{}┤\n", "─".repeat(WIDTH - 2))
}

fn visible_len(s: &str) -> usize {
    s.chars().count()
}

fn pad_line(s: &str) -> String {
    let len = visible_len(s);
    let pad = (WIDTH - 2).saturating_sub(len + 1);
    format!("│ {}{}│\n", s, " ".repeat(pad))
}

fn center_line(s: &str) -> String {
    let len = visible_len(s);
    let total = (WIDTH - 2).saturating_sub(len);
    let left = total / 2;
    format!("│{}{}{}│\n", " ".repeat(left), s, " ".repeat(total - left))
}

/// A horizontal scaling bar of `width` cells over `[lo, hi]` with markers:
/// `D` desired, `m` minimum acceptable, `o` system offer. Markers may
/// coincide; the later marker in that list wins the cell.
pub fn bar(lo: f64, hi: f64, width: usize, desired: f64, min: f64, offer: Option<f64>) -> String {
    assert!(hi > lo && width >= 2, "bar: bad scale");
    let mut cells: Vec<char> = vec!['─'; width];
    let place = |v: f64| -> usize {
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * (width - 1) as f64).round()) as usize
    };
    cells[place(min)] = 'm';
    cells[place(desired)] = 'D';
    if let Some(o) = offer {
        cells[place(o)] = 'o';
    }
    cells.into_iter().collect()
}

/// Figure 3: the main window — the profile list and its buttons.
pub fn main_window(profiles: &[&str], selected: usize) -> String {
    let mut body = vec!["User profiles:".to_string()];
    for (i, p) in profiles.iter().enumerate() {
        let marker = if i == selected { '▶' } else { ' ' };
        body.push(format!(" {marker} {p}"));
    }
    body.push(String::new());
    body.push("[ OK ]  [ Edit ]  [ Delete ]  [ Set default ]  [ EXIT ]".to_string());
    frame("QoS negotiation — main window", &body)
}

/// Figure 4: the profile component window. `violated` lists the profile
/// components whose constraint buttons light up after a failed negotiation.
pub fn profile_component_window(profile: &UserProfile, violated: &[&str]) -> String {
    let mark = |name: &str| {
        if violated.contains(&name) {
            "[!]"
        } else {
            "[ ]"
        }
    };
    let mut body = vec![format!("Profile: {}", profile.name), String::new()];
    for name in ["video", "audio", "text", "image", "time", "cost"] {
        let present = match name {
            "video" => profile.desired.video.is_some(),
            "audio" => profile.desired.audio.is_some(),
            "text" => profile.desired.text.is_some(),
            "image" => profile.desired.image.is_some(),
            _ => true,
        };
        if present {
            body.push(format!("  {} {name} profile", mark(name)));
        }
    }
    body.push(String::new());
    body.push("[ Save ]  [ Save as ]  [ CANCEL ]".to_string());
    frame("Profile components", &body)
}

/// Figure 5: the video profile window with its scaling bars.
pub fn video_profile_window(profile: &UserProfile, offer: Option<&VideoQos>) -> String {
    let desired = profile.desired.video;
    let worst = profile.worst.video;
    let mut body = Vec::new();
    match (desired, worst) {
        (Some(d), Some(w)) => {
            body.push(format!(
                "frame rate   [{}] {} fps",
                bar(
                    1.0,
                    60.0,
                    30,
                    d.frame_rate.fps() as f64,
                    w.frame_rate.fps() as f64,
                    offer.map(|o| o.frame_rate.fps() as f64),
                ),
                d.frame_rate.fps()
            ));
            body.push(format!(
                "resolution   [{}] {} px",
                bar(
                    10.0,
                    1920.0,
                    30,
                    d.resolution.pixels_per_line() as f64,
                    w.resolution.pixels_per_line() as f64,
                    offer.map(|o| o.resolution.pixels_per_line() as f64),
                ),
                d.resolution.pixels_per_line()
            ));
            body.push(format!(
                "color        [{}] {}",
                bar(
                    0.0,
                    3.0,
                    30,
                    d.color.level() as f64,
                    w.color.level() as f64,
                    offer.map(|o| o.color.level() as f64),
                ),
                d.color
            ));
            if let Some(o) = offer {
                body.push(String::new());
                body.push(format!("system offer: {o}"));
            }
        }
        _ => body.push("no video requirement in this profile".to_string()),
    }
    body.push(String::new());
    body.push("D desired   m minimum acceptable   o offer".to_string());
    body.push("[ OK ]  [ Save ]  [ Save as ]  [ show example ]  [ CANCEL ]".to_string());
    frame("Video profile", &body)
}

/// Figure 5 family: the audio profile window.
pub fn audio_profile_window(profile: &UserProfile, offer: Option<&AudioQos>) -> String {
    let mut body = Vec::new();
    match (profile.desired.audio, profile.worst.audio) {
        (Some(d), Some(w)) => {
            let level = |q: AudioQuality| match q {
                AudioQuality::Telephone => 0.0,
                AudioQuality::Radio => 1.0,
                AudioQuality::Cd => 2.0,
            };
            body.push(format!(
                "quality      [{}] {}",
                bar(
                    0.0,
                    2.0,
                    30,
                    level(d.quality),
                    level(w.quality),
                    offer.map(|o| level(o.quality))
                ),
                d.quality
            ));
            body.push(format!(
                "language     desired {}  (min {})",
                d.language, w.language
            ));
            if let Some(o) = offer {
                body.push(String::new());
                body.push(format!("system offer: {o}"));
            }
        }
        _ => body.push("no audio requirement in this profile".to_string()),
    }
    body.push(String::new());
    body.push("D desired   m minimum acceptable   o offer".to_string());
    body.push("[ OK ]  [ Save ]  [ Save as ]  [ show example ]  [ CANCEL ]".to_string());
    frame("Audio profile", &body)
}

/// The cost profile window: ceiling plus the per-dollar importance knob.
pub fn cost_profile_window(profile: &UserProfile, offered: Option<Money>) -> String {
    let max = profile.max_cost.dollars();
    let scale_hi = (max * 2.0).max(1.0);
    let mut body = vec![format!(
        "maximum cost [{}] {}",
        bar(0.0, scale_hi, 30, max, 0.0, offered.map(|m| m.dollars())),
        profile.max_cost
    )];
    body.push(format!(
        "cost importance: {:.1} per $ (0 = cost does not matter)",
        profile.importance.cost_per_dollar
    ));
    if let Some(o) = offered {
        body.push(String::new());
        body.push(cost_line(o, profile.max_cost));
    }
    body.push(String::new());
    body.push("[ OK ]  [ Save ]  [ Save as ]  [ CANCEL ]".to_string());
    frame("Cost profile", &body)
}

/// The time profile window: startup deadline and `choicePeriod`.
pub fn time_profile_window(profile: &UserProfile) -> String {
    let body = vec![
        format!(
            "delivery must start within {:>5.1} s",
            profile.time.max_startup_ms as f64 / 1e3
        ),
        format!(
            "offer confirmation window  {:>5.1} s (choicePeriod)",
            profile.time.choice_period_ms as f64 / 1e3
        ),
        String::new(),
        "[ OK ]  [ Save ]  [ Save as ]  [ CANCEL ]".to_string(),
    ];
    frame("Time profile", &body)
}

/// "show example" (paper §8): a textual stand-in for the MPEG player's
/// preview of "a monomedia example which satisfies the current profile" —
/// renders the desired video parameters as a preview card.
pub fn show_example(profile: &UserProfile) -> String {
    let body = match profile.desired.video {
        Some(v) => vec![
            format!("previewing a clip at {v}"),
            format!(
                "≈ {} lines, {} colors, frame every {} ms",
                v.resolution.lines(),
                1u64 << v.color.bits_per_pixel().min(24),
                1_000 / v.frame_rate.fps().max(1)
            ),
        ],
        None => vec!["this profile requests no video".to_string()],
    };
    frame("Example player", &body)
}

/// Figures 6/7: the information window displaying the negotiation result.
/// `remaining_ms` is the `choicePeriod` countdown while the offer is held.
pub fn information_window(
    status: NegotiationStatus,
    offer: Option<&UserOffer>,
    remaining_ms: Option<u64>,
) -> String {
    let mut body = vec![format!("negotiation status: {status}")];
    match offer {
        Some(o) => {
            if let Some(v) = o.qos.video {
                body.push(format!("  video : {v}"));
            }
            if let Some(a) = o.qos.audio {
                body.push(format!("  audio : {a}"));
            }
            if let Some(t) = o.qos.text {
                body.push(format!("  text  : ({})", t.language));
            }
            if let Some(i) = o.qos.image {
                body.push(format!("  image : ({}, {})", i.color, i.resolution));
            }
            body.push(format!("  cost  : {}", o.cost));
        }
        None => body.push("  no offer available".to_string()),
    }
    if let Some(ms) = remaining_ms {
        body.push(String::new());
        body.push(format!(
            "confirm within {:.0} s  [ OK ]  [ CANCEL ]",
            ms as f64 / 1e3
        ));
    }
    frame("Information", &body)
}

/// Render the cost line of an offer (used by the walkthrough binary).
pub fn cost_line(cost: Money, max: Money) -> String {
    let status = if cost <= max { "within" } else { "ABOVE" };
    format!("cost {cost} ({status} the {max} ceiling)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_qosneg::profile::tv_news_profile;

    fn assert_framed(s: &str) {
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
        assert!(lines[0].starts_with('┌'));
        assert!(lines.last().unwrap().starts_with('└'));
        for l in &lines {
            assert_eq!(
                l.chars().count(),
                WIDTH,
                "ragged line: {l:?} ({} cells)",
                l.chars().count()
            );
        }
    }

    #[test]
    fn main_window_lists_profiles() {
        let w = main_window(&["tv-news", "economy", "premium"], 1);
        assert_framed(&w);
        assert!(w.contains("▶ economy"));
        assert!(w.contains("  tv-news"));
        assert!(w.contains("[ OK ]"));
        assert!(w.contains("[ EXIT ]"));
    }

    #[test]
    fn component_window_marks_violations() {
        let p = tv_news_profile();
        let w = profile_component_window(&p, &["video", "cost"]);
        assert_framed(&w);
        assert!(w.contains("[!] video profile"));
        assert!(w.contains("[ ] audio profile"));
        assert!(w.contains("[!] cost profile"));
        // No image requirement in tv-news: the row is absent.
        assert!(!w.contains("image profile"));
    }

    #[test]
    fn bar_places_markers() {
        let b = bar(0.0, 10.0, 11, 10.0, 0.0, Some(5.0));
        assert_eq!(b.chars().count(), 11);
        assert_eq!(b.chars().next(), Some('m'));
        assert_eq!(b.chars().last(), Some('D'));
        assert_eq!(b.chars().nth(5), Some('o'));
    }

    #[test]
    fn bar_clamps_out_of_scale_values() {
        let b = bar(0.0, 10.0, 11, 20.0, -5.0, None);
        assert_eq!(b.chars().next(), Some('m'));
        assert_eq!(b.chars().last(), Some('D'));
    }

    #[test]
    fn video_window_shows_bars_and_offer() {
        let p = tv_news_profile();
        let offer = VideoQos {
            color: ColorDepth::Grey,
            resolution: Resolution::new(320),
            frame_rate: FrameRate::new(15),
        };
        let w = video_profile_window(&p, Some(&offer));
        assert_framed(&w);
        assert!(w.contains("frame rate"));
        assert!(w.contains("system offer: (grey, 15 frames/s, 320 px/line)"));
        assert!(w.contains("show example"));
    }

    #[test]
    fn video_window_without_requirement() {
        let mut p = tv_news_profile();
        p.desired.video = None;
        p.worst.video = None;
        let w = video_profile_window(&p, None);
        assert!(w.contains("no video requirement"));
    }

    #[test]
    fn information_window_success_and_failure() {
        let p = tv_news_profile();
        let offer = UserOffer {
            qos: p.desired,
            cost: Money::from_dollars_f64(4.2),
        };
        let ok = information_window(NegotiationStatus::Succeeded, Some(&offer), Some(30_000));
        assert_framed(&ok);
        assert!(ok.contains("SUCCEEDED"));
        assert!(ok.contains("$4.20"));
        assert!(ok.contains("confirm within 30 s"));

        let fail = information_window(NegotiationStatus::FailedTryLater, None, None);
        assert!(fail.contains("FAILEDTRYLATER"));
        assert!(fail.contains("no offer available"));
    }

    #[test]
    fn audio_window_shows_quality_bar() {
        let p = tv_news_profile();
        let offer = AudioQos {
            quality: AudioQuality::Radio,
            language: Language::English,
        };
        let w = audio_profile_window(&p, Some(&offer));
        assert_framed(&w);
        assert!(w.contains("quality"));
        assert!(w.contains("system offer: (radio audio, english)"));
        let mut no_audio = tv_news_profile();
        no_audio.desired.audio = None;
        no_audio.worst.audio = None;
        assert!(audio_profile_window(&no_audio, None).contains("no audio requirement"));
    }

    #[test]
    fn cost_window_marks_offer_position() {
        let p = tv_news_profile();
        let w = cost_profile_window(&p, Some(Money::from_dollars(8)));
        assert_framed(&w);
        assert!(w.contains("maximum cost"));
        assert!(w.contains("ABOVE"));
        let ok = cost_profile_window(&p, Some(Money::from_dollars(3)));
        assert!(ok.contains("within"));
    }

    #[test]
    fn time_window_shows_deadlines() {
        let w = time_profile_window(&tv_news_profile());
        assert_framed(&w);
        assert!(w.contains("10.0 s"));
        assert!(w.contains("choicePeriod"));
    }

    #[test]
    fn show_example_previews_desired_video() {
        let w = show_example(&tv_news_profile());
        assert_framed(&w);
        assert!(w.contains("(color, 25 frames/s, 640 px/line)"));
        let mut p = tv_news_profile();
        p.desired.video = None;
        p.worst.video = None;
        assert!(show_example(&p).contains("no video"));
    }

    #[test]
    fn cost_line_marks_overruns() {
        assert!(cost_line(Money::from_dollars(3), Money::from_dollars(4)).contains("within"));
        assert!(cost_line(Money::from_dollars(5), Money::from_dollars(4)).contains("ABOVE"));
    }
}
