//! The playout timeline: document schedule × selected variants.

use std::collections::HashMap;

use nod_mmdoc::{Document, MonomediaId, ScheduleError, Variant, VariantId};

/// One scheduled stream: a monomedia played from a specific variant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// The monomedia component.
    pub monomedia: MonomediaId,
    /// The variant chosen by negotiation.
    pub variant: VariantId,
    /// Absolute start offset within the presentation, ms.
    pub start_ms: u64,
    /// Presentation duration, ms.
    pub duration_ms: u64,
    /// Sustained bit rate of the stream while active (bits/s).
    pub avg_bit_rate: u64,
}

impl TimelineEntry {
    /// End instant, ms.
    pub fn end_ms(&self) -> u64 {
        self.start_ms + self.duration_ms
    }

    /// Is the stream active at `t` ms into the presentation?
    pub fn active_at(&self, t_ms: u64) -> bool {
        t_ms >= self.start_ms && t_ms < self.end_ms()
    }
}

/// Timeline construction failures.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineError {
    /// The document's temporal constraints do not resolve.
    Schedule(ScheduleError),
    /// No variant was supplied for a component.
    MissingVariant(MonomediaId),
    /// A supplied variant belongs to a different monomedia.
    WrongMonomedia {
        /// The component being scheduled.
        expected: MonomediaId,
        /// The monomedia the variant actually represents.
        got: MonomediaId,
    },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::Schedule(e) => write!(f, "{e}"),
            TimelineError::MissingVariant(id) => write!(f, "no variant selected for {id}"),
            TimelineError::WrongMonomedia { expected, got } => {
                write!(f, "variant for {got} supplied where {expected} expected")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// The full presentation plan of a negotiated document.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
    total_ms: u64,
}

impl Timeline {
    /// Build a timeline from the document's resolved schedule and the
    /// negotiated variant per component.
    pub fn build(
        document: &Document,
        selected: &HashMap<MonomediaId, &Variant>,
    ) -> Result<Timeline, TimelineError> {
        let starts = document.schedule().map_err(TimelineError::Schedule)?;
        let mut entries = Vec::with_capacity(document.monomedia().len());
        for m in document.monomedia() {
            let v = selected
                .get(&m.id)
                .ok_or(TimelineError::MissingVariant(m.id))?;
            if v.monomedia != m.id {
                return Err(TimelineError::WrongMonomedia {
                    expected: m.id,
                    got: v.monomedia,
                });
            }
            entries.push(TimelineEntry {
                monomedia: m.id,
                variant: v.id,
                start_ms: starts[&m.id],
                duration_ms: m.duration_ms,
                avg_bit_rate: v.avg_bit_rate(),
            });
        }
        entries.sort_by_key(|e| (e.start_ms, e.monomedia));
        let total_ms = entries.iter().map(TimelineEntry::end_ms).max().unwrap_or(0);
        Ok(Timeline { entries, total_ms })
    }

    /// All entries, ordered by start time.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Total presentation length, ms.
    pub fn total_ms(&self) -> u64 {
        self.total_ms
    }

    /// Streams active at instant `t` ms.
    pub fn active_at(&self, t_ms: u64) -> Vec<&TimelineEntry> {
        self.entries.iter().filter(|e| e.active_at(t_ms)).collect()
    }

    /// Aggregate bandwidth demand at instant `t` ms (bits/s) — the input to
    /// capacity planning.
    pub fn demand_at(&self, t_ms: u64) -> u64 {
        self.active_at(t_ms).iter().map(|e| e.avg_bit_rate).sum()
    }

    /// Peak aggregate demand over the presentation, sampled at entry
    /// boundaries (demand only changes there).
    pub fn peak_demand(&self) -> u64 {
        self.entries
            .iter()
            .flat_map(|e| [e.start_ms, e.end_ms().saturating_sub(1)])
            .map(|t| self.demand_at(t))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_mmdoc::prelude::*;

    fn doc_and_variants() -> (Document, Vec<Variant>) {
        let video =
            Monomedia::new(MonomediaId(1), MediaKind::Video, "clip").with_duration_secs(100);
        let audio =
            Monomedia::new(MonomediaId(2), MediaKind::Audio, "sound").with_duration_secs(100);
        let doc = Document::multimedia(
            DocumentId(1),
            "article",
            vec![video, audio],
            vec![TemporalConstraint::simultaneous(
                MonomediaId(1),
                MonomediaId(2),
            )],
            vec![],
        );
        let v1 = Variant {
            id: VariantId(10),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: MediaQos::Video(VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::TV,
                frame_rate: FrameRate::TV,
            }),
            blocks: BlockStats::new(12_000, 6_000),
            blocks_per_second: 25,
            file_bytes: 6_000 * 25 * 100,
            server: ServerId(0),
        };
        let v2 = Variant {
            id: VariantId(11),
            monomedia: MonomediaId(2),
            format: Format::PcmMulaw,
            qos: MediaQos::Audio(AudioQos {
                quality: AudioQuality::Telephone,
                language: Language::English,
            }),
            blocks: BlockStats::new(1, 1),
            blocks_per_second: 8_000,
            file_bytes: 8_000 * 100,
            server: ServerId(0),
        };
        (doc, vec![v1, v2])
    }

    fn build(doc: &Document, vars: &[Variant]) -> Timeline {
        let map: HashMap<MonomediaId, &Variant> = vars.iter().map(|v| (v.monomedia, v)).collect();
        Timeline::build(doc, &map).unwrap()
    }

    #[test]
    fn builds_ordered_entries() {
        let (doc, vars) = doc_and_variants();
        let t = build(&doc, &vars);
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.total_ms(), 100_000);
        assert!(t
            .entries()
            .windows(2)
            .all(|w| w[0].start_ms <= w[1].start_ms));
    }

    #[test]
    fn demand_aggregates_active_streams() {
        let (doc, vars) = doc_and_variants();
        let t = build(&doc, &vars);
        let video_bps = 6_000 * 8 * 25;
        let audio_bps = 8 * 8_000;
        assert_eq!(t.demand_at(0), video_bps + audio_bps);
        assert_eq!(t.demand_at(100_000), 0); // past the end
        assert_eq!(t.peak_demand(), video_bps + audio_bps);
        assert_eq!(t.active_at(50_000).len(), 2);
    }

    #[test]
    fn missing_variant_detected() {
        let (doc, vars) = doc_and_variants();
        let map: HashMap<MonomediaId, &Variant> =
            vars.iter().take(1).map(|v| (v.monomedia, v)).collect();
        assert_eq!(
            Timeline::build(&doc, &map).unwrap_err(),
            TimelineError::MissingVariant(MonomediaId(2))
        );
    }

    #[test]
    fn wrong_monomedia_detected() {
        let (doc, vars) = doc_and_variants();
        let mut map: HashMap<MonomediaId, &Variant> = HashMap::new();
        map.insert(MonomediaId(1), &vars[0]);
        map.insert(MonomediaId(2), &vars[0]); // video variant for the audio slot
        match Timeline::build(&doc, &map).unwrap_err() {
            TimelineError::WrongMonomedia { expected, got } => {
                assert_eq!(expected, MonomediaId(2));
                assert_eq!(got, MonomediaId(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entry_activity_window_is_half_open() {
        let e = TimelineEntry {
            monomedia: MonomediaId(1),
            variant: VariantId(1),
            start_ms: 1_000,
            duration_ms: 2_000,
            avg_bit_rate: 100,
        };
        assert!(!e.active_at(999));
        assert!(e.active_at(1_000));
        assert!(e.active_at(2_999));
        assert!(!e.active_at(3_000));
        assert_eq!(e.end_ms(), 3_000);
    }
}
