//! Synchronization and playout engine.
//!
//! Stands in for the University of Ottawa synchronization component
//! [Lam 94] of the CITR prototype. It turns a document plus the variants
//! selected by negotiation into a **playout timeline**, models the client's
//! **jitter buffer** (the paper's §6 notes jitter "is compensated by
//! synchronization protocols"), and runs a **playout session** state
//! machine with the exact transition discipline of the paper's adaptation
//! procedure: *stop the presentation after having obtained the current
//! position of the document, and restart the presentation (using the
//! alternate components) from the position parameter determined earlier.*

pub mod buffer;
pub mod session;
pub mod sync;
pub mod timeline;

pub use buffer::JitterBuffer;
pub use session::{PlayoutSession, SessionState, SessionStats};
pub use sync::{skew_tolerance_ms, SyncState, SyncViolation};
pub use timeline::{Timeline, TimelineEntry, TimelineError};
