//! The playout session state machine.
//!
//! Implements the paper's transition discipline for adaptation: the QoS
//! manager "stops the presentation of the document after having obtained
//! the current position of the document, and restarts the presentation
//! (using the alternate components) from the position parameter determined
//! earlier".

use nod_obs::Recorder;

use crate::buffer::JitterBuffer;
use crate::timeline::Timeline;

/// Session lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Buffering before (or after a stall during) playout.
    Buffering,
    /// Media is advancing.
    Playing,
    /// Stopped for an adaptation transition; position captured.
    Transitioning,
    /// The document played to the end.
    Completed,
    /// The user or the system gave up.
    Aborted,
}

/// Accumulated quality-of-experience statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SessionStats {
    /// Media milliseconds actually presented.
    pub played_ms: f64,
    /// Wall milliseconds spent buffering/stalled after initial pre-roll.
    pub stall_ms: f64,
    /// Wall milliseconds of initial pre-roll.
    pub preroll_ms: f64,
    /// Buffer underrun events.
    pub underruns: u64,
    /// Adaptation transitions performed.
    pub transitions: u64,
}

impl SessionStats {
    /// Fraction of post-pre-roll wall time that was spent playing —
    /// the playout-continuity metric of experiment E9.
    pub fn continuity(&self) -> f64 {
        let denom = self.played_ms + self.stall_ms;
        if denom <= 0.0 {
            0.0
        } else {
            self.played_ms / denom
        }
    }
}

/// A playout session for one negotiated document.
#[derive(Debug, Clone)]
pub struct PlayoutSession {
    timeline: Timeline,
    buffer: JitterBuffer,
    buffer_capacity_ms: u64,
    position_ms: f64,
    state: SessionState,
    stats: SessionStats,
    recorder: Option<Recorder>,
}

impl PlayoutSession {
    /// Start a session on a timeline with a jitter buffer of
    /// `buffer_capacity_ms` of media.
    pub fn new(timeline: Timeline, buffer_capacity_ms: u64) -> Self {
        PlayoutSession {
            timeline,
            buffer: JitterBuffer::new(buffer_capacity_ms),
            buffer_capacity_ms,
            position_ms: 0.0,
            state: SessionState::Buffering,
            stats: SessionStats::default(),
            recorder: None,
        }
    }

    /// Attach an observability recorder: underruns, degraded playout time
    /// and adaptation transitions are counted as they happen
    /// (`playout.underruns`, `playout.degraded_ms`, `playout.transitions`).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Current document position, ms of media presented.
    pub fn position_ms(&self) -> f64 {
        self.position_ms
    }

    /// The active timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Advance wall time by `dt_ms` with the network delivering at
    /// `delivery_ratio` × real time. No-op in terminal or transitioning
    /// states.
    pub fn advance(&mut self, dt_ms: u64, delivery_ratio: f64) {
        match self.state {
            SessionState::Buffering | SessionState::Playing => {}
            _ => return,
        }
        let was_stalled = self.buffer.is_stalled();
        let played = self.buffer.advance(dt_ms, delivery_ratio);
        self.position_ms += played;
        self.stats.played_ms += played;
        let wasted = dt_ms as f64 - played;
        if wasted > 0.0 {
            if self.stats.played_ms == 0.0 && was_stalled {
                self.stats.preroll_ms += wasted;
            } else {
                self.stats.stall_ms += wasted;
            }
        }
        let prev_underruns = self.stats.underruns;
        self.stats.underruns = self.buffer.underruns();
        if let Some(rec) = &self.recorder {
            let new_underruns = self.stats.underruns - prev_underruns;
            if new_underruns > 0 {
                rec.counter("playout.underruns", new_underruns);
            }
            if delivery_ratio < 1.0 {
                rec.counter("playout.degraded_ms", dt_ms);
            }
        }
        self.state = if self.position_ms >= self.timeline.total_ms() as f64 {
            SessionState::Completed
        } else if self.buffer.is_stalled() {
            SessionState::Buffering
        } else {
            SessionState::Playing
        };
    }

    /// The paper's transition step 1: stop and capture the position.
    ///
    /// Returns the position (ms) to restart from. No-op (returning the
    /// current position) if the session is already terminal.
    pub fn interrupt_for_transition(&mut self) -> u64 {
        if matches!(self.state, SessionState::Completed | SessionState::Aborted) {
            return self.position_ms as u64;
        }
        self.state = SessionState::Transitioning;
        self.position_ms as u64
    }

    /// The paper's transition step 2: restart from the captured position
    /// using the alternate components (a new timeline). The buffer re-rolls.
    ///
    /// # Panics
    /// Panics unless the session is in [`SessionState::Transitioning`].
    pub fn resume_with(&mut self, timeline: Timeline) {
        assert_eq!(
            self.state,
            SessionState::Transitioning,
            "resume_with outside a transition"
        );
        self.timeline = timeline;
        self.buffer = JitterBuffer::new(self.buffer_capacity_ms);
        self.stats.transitions += 1;
        if let Some(rec) = &self.recorder {
            rec.counter("playout.transitions", 1);
        }
        self.state = SessionState::Buffering;
    }

    /// Abort the session (user walked away, confirmation timed out, or no
    /// alternate offer existed).
    pub fn abort(&mut self) {
        if !matches!(self.state, SessionState::Completed) {
            self.state = SessionState::Aborted;
        }
    }

    /// Fraction of the document presented so far.
    pub fn progress(&self) -> f64 {
        let total = self.timeline.total_ms() as f64;
        if total <= 0.0 {
            1.0
        } else {
            (self.position_ms / total).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_mmdoc::prelude::*;
    use std::collections::HashMap;

    fn simple_timeline(total_secs: u64) -> Timeline {
        let mono =
            Monomedia::new(MonomediaId(1), MediaKind::Video, "clip").with_duration_secs(total_secs);
        let doc = Document::multimedia(DocumentId(1), "doc", vec![mono], vec![], vec![]);
        let v = Variant {
            id: VariantId(1),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: MediaQos::Video(VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::TV,
                frame_rate: FrameRate::TV,
            }),
            blocks: BlockStats::new(12_000, 6_000),
            blocks_per_second: 25,
            file_bytes: 6_000 * 25 * total_secs,
            server: ServerId(0),
        };
        let map: HashMap<MonomediaId, &Variant> = [(MonomediaId(1), &v)].into();
        Timeline::build(&doc, &map).unwrap()
    }

    #[test]
    fn healthy_session_completes() {
        let mut s = PlayoutSession::new(simple_timeline(10), 2_000);
        assert_eq!(s.state(), SessionState::Buffering);
        for _ in 0..60 {
            s.advance(500, 1.0);
        }
        assert_eq!(s.state(), SessionState::Completed);
        let st = s.stats();
        assert!(st.played_ms >= 10_000.0);
        assert_eq!(st.underruns, 0);
        assert_eq!(st.stall_ms, 0.0);
        assert!(st.preroll_ms > 0.0);
        assert_eq!(st.continuity(), 1.0);
        assert_eq!(s.progress(), 1.0);
    }

    #[test]
    fn congestion_degrades_continuity() {
        let mut s = PlayoutSession::new(simple_timeline(60), 2_000);
        for step in 0..200 {
            // Congestion between steps 20 and 120: 30% delivery.
            let ratio = if (20..120).contains(&step) { 0.3 } else { 1.0 };
            s.advance(500, ratio);
            if s.state() == SessionState::Completed {
                break;
            }
        }
        let st = s.stats();
        assert!(st.underruns > 0);
        assert!(st.stall_ms > 0.0);
        assert!(st.continuity() < 0.95, "continuity={}", st.continuity());
    }

    #[test]
    fn transition_preserves_position() {
        let mut s = PlayoutSession::new(simple_timeline(60), 2_000);
        for _ in 0..20 {
            s.advance(500, 1.0);
        }
        let before = s.position_ms();
        assert!(before > 0.0);
        let pos = s.interrupt_for_transition();
        assert_eq!(s.state(), SessionState::Transitioning);
        assert_eq!(pos, before as u64);
        // Advancing while transitioning does nothing.
        s.advance(5_000, 1.0);
        assert_eq!(s.position_ms(), before);
        s.resume_with(simple_timeline(60));
        assert_eq!(s.state(), SessionState::Buffering);
        assert_eq!(s.stats().transitions, 1);
        assert_eq!(s.position_ms(), before); // restart from saved position
        for _ in 0..300 {
            s.advance(500, 1.0);
            if s.state() == SessionState::Completed {
                break;
            }
        }
        assert_eq!(s.state(), SessionState::Completed);
    }

    #[test]
    #[should_panic(expected = "outside a transition")]
    fn resume_requires_transition() {
        let mut s = PlayoutSession::new(simple_timeline(10), 1_000);
        s.resume_with(simple_timeline(10));
    }

    #[test]
    fn abort_is_terminal() {
        let mut s = PlayoutSession::new(simple_timeline(10), 1_000);
        s.abort();
        assert_eq!(s.state(), SessionState::Aborted);
        s.advance(10_000, 1.0);
        assert_eq!(s.position_ms(), 0.0);
        // Completed sessions cannot be aborted into a different state.
        let mut done = PlayoutSession::new(simple_timeline(1), 1_000);
        for _ in 0..20 {
            done.advance(500, 1.0);
        }
        assert_eq!(done.state(), SessionState::Completed);
        done.abort();
        assert_eq!(done.state(), SessionState::Completed);
    }

    #[test]
    fn interrupt_after_completion_is_noop() {
        let mut s = PlayoutSession::new(simple_timeline(1), 1_000);
        for _ in 0..20 {
            s.advance(500, 1.0);
        }
        let pos = s.interrupt_for_transition();
        assert_eq!(s.state(), SessionState::Completed);
        assert!(pos >= 1_000);
    }
}
