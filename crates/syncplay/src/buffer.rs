//! Client-side jitter buffer.
//!
//! The synchronization protocols of [Lam 94] compensate network jitter by
//! buffering ahead of the playout point. We model the buffer as a fluid
//! reservoir measured in milliseconds of media: arrivals fill it at the
//! delivered rate, the decoder drains it in real time, and an underrun
//! (buffer empties while the stream should be playing) is a visible stall.

/// A fluid-model jitter buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterBuffer {
    capacity_ms: u64,
    level_ms: f64,
    underruns: u64,
    stalled: bool,
}

impl JitterBuffer {
    /// A buffer holding at most `capacity_ms` of media.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity_ms: u64) -> Self {
        assert!(capacity_ms > 0, "jitter buffer needs nonzero capacity");
        JitterBuffer {
            capacity_ms,
            level_ms: 0.0,
            underruns: 0,
            stalled: true, // starts empty: pre-roll before playing
        }
    }

    /// Capacity, ms of media.
    pub fn capacity_ms(&self) -> u64 {
        self.capacity_ms
    }

    /// Current fill level, ms of media.
    pub fn level_ms(&self) -> f64 {
        self.level_ms
    }

    /// Total underrun events so far.
    pub fn underruns(&self) -> u64 {
        self.underruns
    }

    /// Is playout currently stalled (pre-rolling or recovering)?
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Advance the model by `dt_ms` of wall-clock time during which the
    /// network delivered media at `delivery_ratio` × real time (1.0 = keeps
    /// up exactly; 0.5 = half rate under congestion; >1.0 = catch-up).
    ///
    /// Returns the milliseconds of media actually *played* during the step
    /// (less than `dt_ms` when stalled).
    ///
    /// # Panics
    /// Panics on a negative or non-finite ratio.
    pub fn advance(&mut self, dt_ms: u64, delivery_ratio: f64) -> f64 {
        assert!(
            delivery_ratio.is_finite() && delivery_ratio >= 0.0,
            "invalid delivery ratio {delivery_ratio}"
        );
        let dt = dt_ms as f64;
        let arrived = dt * delivery_ratio;

        if self.stalled {
            // Pre-roll / recovery: fill without draining until half full.
            self.level_ms = (self.level_ms + arrived).min(self.capacity_ms as f64);
            if self.level_ms >= self.capacity_ms as f64 * 0.5 {
                self.stalled = false;
            }
            return 0.0;
        }

        // Playing: drain in real time while arrivals refill.
        let net = self.level_ms + arrived - dt;
        if net < 0.0 {
            // Buffer ran dry partway through the step.
            let played = self.level_ms + arrived; // everything we had
            self.level_ms = 0.0;
            self.underruns += 1;
            self.stalled = true;
            played.max(0.0)
        } else {
            self.level_ms = net.min(self.capacity_ms as f64);
            dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preroll_then_smooth_playout() {
        let mut b = JitterBuffer::new(2_000);
        assert!(b.is_stalled());
        // Pre-roll at real-time delivery: needs 1000 ms to half-fill.
        let played = b.advance(1_000, 1.0);
        assert_eq!(played, 0.0);
        assert!(!b.is_stalled());
        // Steady state: plays everything.
        let played = b.advance(5_000, 1.0);
        assert_eq!(played, 5_000.0);
        assert_eq!(b.underruns(), 0);
    }

    #[test]
    fn congestion_causes_underrun_and_recovery() {
        let mut b = JitterBuffer::new(2_000);
        b.advance(1_000, 1.0); // pre-roll
                               // Delivery collapses to 20%: the 1000 ms cushion drains in 1250 ms.
        let played = b.advance(2_000, 0.2);
        assert!(played < 2_000.0);
        assert_eq!(b.underruns(), 1);
        assert!(b.is_stalled());
        // Recovery at full rate: refills and resumes.
        b.advance(1_000, 1.0);
        assert!(!b.is_stalled());
        assert_eq!(b.advance(1_000, 1.0), 1_000.0);
    }

    #[test]
    fn buffer_never_exceeds_capacity() {
        let mut b = JitterBuffer::new(1_000);
        b.advance(10_000, 5.0);
        assert!(b.level_ms() <= 1_000.0);
        b.advance(10_000, 5.0);
        assert!(b.level_ms() <= 1_000.0);
    }

    #[test]
    fn sustained_undersupply_stalls_repeatedly() {
        let mut b = JitterBuffer::new(1_000);
        let mut played = 0.0;
        for _ in 0..100 {
            played += b.advance(500, 0.5);
        }
        // At 50% delivery only ~50% of wall time can play.
        let total = 100.0 * 500.0;
        assert!(played < 0.6 * total, "played {played} of {total}");
        assert!(b.underruns() >= 2);
    }

    #[test]
    fn zero_delivery_plays_nothing_after_cushion() {
        let mut b = JitterBuffer::new(1_000);
        b.advance(500, 1.0); // pre-roll to half
        let p1 = b.advance(400, 0.0); // drains the 500 ms cushion
        assert_eq!(p1, 400.0);
        let p2 = b.advance(400, 0.0);
        assert!(p2 <= 100.0 + 1e-9);
        assert!(b.is_stalled());
        assert_eq!(b.advance(10_000, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_rejected() {
        JitterBuffer::new(0);
    }
}
