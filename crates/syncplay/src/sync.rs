//! Inter-stream synchronization checking.
//!
//! The Ottawa synchronization component [Lam 94] keeps concurrently
//! playing monomedia aligned (lip sync between a clip and its narration).
//! We model each stream's *presentation skew* — how far its playout point
//! has drifted from the document clock — and check pairs of simultaneously
//! active streams against per-media-pair skew tolerances.
//!
//! The classic tolerances (Steinmetz's synchronization study, the same
//! experimental lineage as the paper's [Ste 90] constants): audio/video
//! lip sync ±80 ms; audio/text (captions) ±240 ms; anything else ±500 ms.

use std::collections::HashMap;

use nod_mmdoc::{MediaKind, MonomediaId};

use crate::timeline::Timeline;

/// Skew tolerance (ms) for a pair of media kinds.
pub fn skew_tolerance_ms(a: MediaKind, b: MediaKind) -> u64 {
    use MediaKind::*;
    match (a, b) {
        (Video, Audio) | (Audio, Video) => 80,
        (Audio, Text) | (Text, Audio) => 240,
        _ => 500,
    }
}

/// A detected synchronization violation at a document instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncViolation {
    /// First stream of the misaligned pair.
    pub a: MonomediaId,
    /// Second stream of the pair.
    pub b: MonomediaId,
    /// The skew observed, ms.
    pub skew_ms: u64,
    /// The tolerance it violated, ms.
    pub tolerance_ms: u64,
}

/// The per-stream playout clocks of a session at one wall instant.
///
/// `positions_ms` maps each active monomedia to its own presented
/// position; the synchronization component compares them pairwise.
#[derive(Debug, Clone, Default)]
pub struct SyncState {
    positions_ms: HashMap<MonomediaId, f64>,
    kinds: HashMap<MonomediaId, MediaKind>,
}

impl SyncState {
    /// An empty state.
    pub fn new() -> Self {
        SyncState::default()
    }

    /// Record a stream's playout position.
    pub fn set_position(&mut self, id: MonomediaId, kind: MediaKind, position_ms: f64) {
        assert!(
            position_ms.is_finite() && position_ms >= 0.0,
            "bad position"
        );
        self.positions_ms.insert(id, position_ms);
        self.kinds.insert(id, kind);
    }

    /// A stream's recorded position.
    pub fn position(&self, id: MonomediaId) -> Option<f64> {
        self.positions_ms.get(&id).copied()
    }

    /// Check every pair of streams active at document instant `t_ms` on
    /// `timeline` against the pairwise tolerances. Streams without a
    /// recorded position are skipped (not yet started).
    pub fn check(&self, timeline: &Timeline, t_ms: u64) -> Vec<SyncViolation> {
        let active: Vec<MonomediaId> = timeline
            .active_at(t_ms)
            .into_iter()
            .map(|e| e.monomedia)
            .filter(|id| self.positions_ms.contains_key(id))
            .collect();
        let mut violations = Vec::new();
        for (i, &a) in active.iter().enumerate() {
            for &b in &active[i + 1..] {
                let (ka, kb) = (self.kinds[&a], self.kinds[&b]);
                let tolerance = skew_tolerance_ms(ka, kb);
                let skew = (self.positions_ms[&a] - self.positions_ms[&b]).abs() as u64;
                if skew > tolerance {
                    violations.push(SyncViolation {
                        a,
                        b,
                        skew_ms: skew,
                        tolerance_ms: tolerance,
                    });
                }
            }
        }
        violations
    }

    /// The resynchronization correction: pull every stream back to the
    /// slowest one (the conservative [Lam 94] policy — skipping media is
    /// visible; waiting is not). Returns the position everyone resumes
    /// from.
    pub fn resync_to_slowest(&mut self) -> Option<f64> {
        let min = self
            .positions_ms
            .values()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if !min.is_finite() {
            return None;
        }
        for v in self.positions_ms.values_mut() {
            *v = min;
        }
        Some(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_mmdoc::prelude::*;
    use std::collections::HashMap as Map;

    fn av_timeline() -> Timeline {
        let video = Monomedia::new(MonomediaId(1), MediaKind::Video, "clip").with_duration_secs(60);
        let audio =
            Monomedia::new(MonomediaId(2), MediaKind::Audio, "sound").with_duration_secs(60);
        let text =
            Monomedia::new(MonomediaId(3), MediaKind::Text, "caption").with_duration_secs(60);
        let doc = Document::multimedia(
            DocumentId(1),
            "doc",
            vec![video, audio, text],
            vec![
                TemporalConstraint::simultaneous(MonomediaId(1), MonomediaId(2)),
                TemporalConstraint::offset(MonomediaId(1), MonomediaId(3), 0),
            ],
            vec![],
        );
        let mk = |id: u64, mono: u64, kind: MediaKind| Variant {
            id: VariantId(id),
            monomedia: MonomediaId(mono),
            format: match kind {
                MediaKind::Video => Format::Mpeg1,
                MediaKind::Audio => Format::PcmMulaw,
                _ => Format::PlainText,
            },
            qos: match kind {
                MediaKind::Video => MediaQos::Video(VideoQos {
                    color: ColorDepth::Color,
                    resolution: Resolution::TV,
                    frame_rate: FrameRate::TV,
                }),
                MediaKind::Audio => MediaQos::Audio(AudioQos {
                    quality: AudioQuality::Telephone,
                    language: Language::English,
                }),
                _ => MediaQos::Text(TextQos {
                    language: Language::English,
                }),
            },
            blocks: BlockStats::new(6_000, 3_000),
            blocks_per_second: match kind {
                MediaKind::Video => 25,
                MediaKind::Audio => 8_000,
                _ => 0,
            },
            file_bytes: 3_000 * 25 * 60,
            server: ServerId(0),
        };
        let v1 = mk(1, 1, MediaKind::Video);
        let v2 = mk(2, 2, MediaKind::Audio);
        let v3 = mk(3, 3, MediaKind::Text);
        let selected: Map<MonomediaId, &Variant> = [
            (MonomediaId(1), &v1),
            (MonomediaId(2), &v2),
            (MonomediaId(3), &v3),
        ]
        .into();
        Timeline::build(&doc, &selected).unwrap()
    }

    #[test]
    fn aligned_streams_pass() {
        let t = av_timeline();
        let mut s = SyncState::new();
        s.set_position(MonomediaId(1), MediaKind::Video, 10_000.0);
        s.set_position(MonomediaId(2), MediaKind::Audio, 10_050.0); // 50 ms skew
        s.set_position(MonomediaId(3), MediaKind::Text, 10_200.0); // 200 ms vs audio
        assert!(s.check(&t, 10_000).is_empty());
    }

    #[test]
    fn lip_sync_violation_detected() {
        let t = av_timeline();
        let mut s = SyncState::new();
        s.set_position(MonomediaId(1), MediaKind::Video, 10_000.0);
        s.set_position(MonomediaId(2), MediaKind::Audio, 10_120.0); // 120 ms > 80 ms
        let v = s.check(&t, 10_000);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].tolerance_ms, 80);
        assert_eq!(v[0].skew_ms, 120);
    }

    #[test]
    fn tolerances_are_pairwise() {
        assert_eq!(skew_tolerance_ms(MediaKind::Video, MediaKind::Audio), 80);
        assert_eq!(skew_tolerance_ms(MediaKind::Audio, MediaKind::Video), 80);
        assert_eq!(skew_tolerance_ms(MediaKind::Text, MediaKind::Audio), 240);
        assert_eq!(skew_tolerance_ms(MediaKind::Video, MediaKind::Image), 500);
    }

    #[test]
    fn inactive_streams_are_ignored() {
        let t = av_timeline();
        let mut s = SyncState::new();
        // Only video has a recorded position; nothing to compare.
        s.set_position(MonomediaId(1), MediaKind::Video, 5_000.0);
        assert!(s.check(&t, 5_000).is_empty());
        // Past the end of the document, nothing is active.
        s.set_position(MonomediaId(2), MediaKind::Audio, 90_000.0);
        assert!(s.check(&t, 70_000).is_empty());
    }

    #[test]
    fn resync_pulls_to_slowest() {
        let t = av_timeline();
        let mut s = SyncState::new();
        s.set_position(MonomediaId(1), MediaKind::Video, 10_000.0);
        s.set_position(MonomediaId(2), MediaKind::Audio, 10_500.0);
        assert!(!s.check(&t, 10_000).is_empty());
        let resumed = s.resync_to_slowest().unwrap();
        assert_eq!(resumed, 10_000.0);
        assert_eq!(s.position(MonomediaId(2)), Some(10_000.0));
        assert!(s.check(&t, 10_000).is_empty());
        // Empty state has nothing to resync.
        assert_eq!(SyncState::new().resync_to_slowest(), None);
    }
}
