//! Observability for the negotiation pipeline.
//!
//! The paper's negotiation procedure is a six-stage pipeline (local
//! negotiation → compatibility pruning → classification-parameter
//! computation → offer ordering → resource commitment → user confirmation).
//! This crate makes that pipeline visible: a [`Recorder`] accumulates named
//! counters, gauges and value histograms (with labels, e.g.
//! `negotiation.outcome{status=FAILEDWITHOFFER}`), times pipeline stages
//! with lightweight [`Span`]s, streams structured events to an [`ObsSink`]
//! as JSON lines, and exports the whole state as a diffable [`Snapshot`].
//!
//! On top of the aggregate layer sits **causal tracing**: a [`Tracer`]
//! partitions span/point events into per-session traces stamped with
//! virtual time ([`trace`]), a bounded flight recorder dumps the last N
//! events when an invariant breaks, and [`analyze`] reconstructs span
//! trees from a trace log — critical path, retry waterfalls, wait-time
//! attribution, text report and Chrome `trace_event` export.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies** — built on `nod-simcore`'s stats and JSON
//!    layers only, so every crate in the workspace can afford to link it.
//! 2. **Free when absent** — instrumented code holds an
//!    `Option<&Recorder>` / `Option<Recorder>`; the disabled path is a
//!    `None` check, no allocation, no locking. The same holds one level
//!    up: a recorder without a tracer attached never pays for tracing.
//! 3. **Panic-free boundary** — the underlying
//!    [`OnlineStats::push`](nod_simcore::OnlineStats::push) asserts finite
//!    input; the recorder instead *drops* non-finite samples and counts
//!    them under `obs.dropped_samples` so a NaN produced mid-negotiation
//!    degrades a metric rather than aborting the session.
//! 4. **Deterministic** — histogram quantiles come from a log-bucketed
//!    sketch ([`hist`]) with bounded relative error and *exact* merge (no
//!    sampling), and spans can be timed by the simulation clock
//!    ([`Recorder::set_sim_time_us`]) so metrics and traces from a seeded
//!    experiment are reproducible bit-for-bit.
//!
//! # Quick example
//!
//! ```
//! use nod_obs::{MemorySink, Recorder};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let rec = Recorder::with_sink(sink.clone());
//! rec.counter_with("negotiation.outcome", &[("status", "SUCCEEDED")], 1);
//! let span = rec.span("negotiate");
//! span.child("enumerate").end();
//! span.end(); // spans record `span.<name>.ms` histograms as they end
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("negotiation.outcome{status=SUCCEEDED}"), 1);
//! assert!(snap.histograms.contains_key("span.enumerate.ms"));
//! assert_eq!(sink.events().len(), 7); // counter + 2×(start, end, observe)
//! ```

pub mod analyze;
pub mod hist;
pub mod prom;
mod recorder;
pub mod retain;
mod sink;
pub mod slo;
mod snapshot;
pub mod trace;

pub use hist::{HistogramShardAcc, LogBuckets, LogHistogram, ValueHistogram, RELATIVE_ERROR};
pub use prom::to_prometheus_text;
pub use recorder::{Recorder, SimTimePin, Span};
pub use retain::TailKeeper;
pub use sink::{FileSink, MemorySink, ObsEvent, ObsSink, StderrSink};
pub use slo::{default_fleet_slos, Objective, SloAlert, SloMonitor, SloSpec};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use trace::{
    FlightDump, RetentionPolicy, RetentionStats, TraceEvent, TraceId, Tracer, FLIGHT_CAPACITY,
};

/// Counter incremented (with a `metric` label) whenever a non-finite sample
/// is dropped at the recorder boundary.
pub const DROPPED_SAMPLES: &str = "obs.dropped_samples";

/// Flatten a metric name and label set into the canonical storage key.
///
/// Labels are sorted by key so call-site order never splits a metric:
/// `negotiation.outcome{status=SUCCEEDED}`.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    write_metric_key(&mut out, name, labels);
    out
}

/// [`metric_key`] writing into a caller-owned buffer (reused capacity).
fn write_metric_key(out: &mut String, name: &str, labels: &[(&str, &str)]) {
    // One- and two-label calls (the vast majority) skip the sort buffer.
    let mut two: [(&str, &str); 2];
    let sorted: &[(&str, &str)];
    let owned: Vec<(&str, &str)>;
    match labels {
        [] => {
            out.push_str(name);
            return;
        }
        [_] => sorted = labels,
        [a, b] => {
            two = [*a, *b];
            if two[0] > two[1] {
                two.swap(0, 1);
            }
            sorted = &two;
        }
        _ => {
            let mut v = labels.to_vec();
            v.sort();
            owned = v;
            sorted = &owned;
        }
    }
    let mut cap = name.len() + 2;
    for (k, v) in sorted {
        cap += k.len() + v.len() + 2;
    }
    out.reserve(cap);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
}

/// Cap on the per-thread pool behind [`intern_metric_key`]; past it new
/// keys fall back to a per-call allocation instead of growing the leak.
const INTERN_CAP: usize = 4096;

std::thread_local! {
    static INTERN_SCRATCH: std::cell::RefCell<String> =
        const { std::cell::RefCell::new(String::new()) };
    static INTERNED: std::cell::RefCell<std::collections::HashSet<&'static str>> =
        std::cell::RefCell::new(std::collections::HashSet::new());
}

/// [`metric_key`] through a bounded per-thread intern pool: the distinct
/// key set of a run is small (names × label values), so steady-state
/// lookups return a leaked `&'static str` and allocate nothing. Used by
/// the tracing hot path, where a point fires per admission verdict.
pub(crate) fn intern_metric_key(
    name: &str,
    labels: &[(&str, &str)],
) -> std::borrow::Cow<'static, str> {
    INTERN_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.clear();
        write_metric_key(&mut scratch, name, labels);
        INTERNED.with(|set| {
            let mut set = set.borrow_mut();
            if let Some(&k) = set.get(scratch.as_str()) {
                return std::borrow::Cow::Borrowed(k);
            }
            if set.len() < INTERN_CAP {
                let leaked: &'static str = Box::leak(scratch.clone().into_boxed_str());
                set.insert(leaked);
                std::borrow::Cow::Borrowed(leaked)
            } else {
                std::borrow::Cow::Owned(scratch.clone())
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_key_sorts_labels() {
        assert_eq!(metric_key("a.b", &[]), "a.b");
        assert_eq!(metric_key("a.b", &[("z", "1"), ("a", "2")]), "a.b{a=2,z=1}");
        assert_eq!(metric_key("a.b", &[("a", "2"), ("z", "1")]), "a.b{a=2,z=1}");
    }
}
