//! Observability for the negotiation pipeline.
//!
//! The paper's negotiation procedure is a six-stage pipeline (local
//! negotiation → compatibility pruning → classification-parameter
//! computation → offer ordering → resource commitment → user confirmation).
//! This crate makes that pipeline visible: a [`Recorder`] accumulates named
//! counters, gauges and value histograms (with labels, e.g.
//! `negotiation.outcome{status=FAILEDWITHOFFER}`), times pipeline stages
//! with lightweight [`Span`]s, streams structured events to an [`ObsSink`]
//! as JSON lines, and exports the whole state as a diffable [`Snapshot`].
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies** — built on `nod-simcore`'s stats and JSON
//!    layers only, so every crate in the workspace can afford to link it.
//! 2. **Free when absent** — instrumented code holds an
//!    `Option<&Recorder>` / `Option<Recorder>`; the disabled path is a
//!    `None` check, no allocation, no locking.
//! 3. **Panic-free boundary** — the underlying
//!    [`OnlineStats::push`](nod_simcore::OnlineStats::push) asserts finite
//!    input; the recorder instead *drops* non-finite samples and counts
//!    them under `obs.dropped_samples` so a NaN produced mid-negotiation
//!    degrades a metric rather than aborting the session.
//! 4. **Deterministic** — histogram reservoirs are seeded from the metric
//!    key, and spans can be timed by the simulation clock
//!    ([`Recorder::set_sim_time_us`]) so traces from a seeded experiment
//!    are reproducible bit-for-bit.
//!
//! # Quick example
//!
//! ```
//! use nod_obs::{MemorySink, Recorder};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let rec = Recorder::with_sink(sink.clone());
//! rec.counter_with("negotiation.outcome", &[("status", "SUCCEEDED")], 1);
//! {
//!     let span = rec.span("negotiate");
//!     let _child = span.child("enumerate");
//! } // spans record `span.<name>.ms` histograms as they end
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("negotiation.outcome{status=SUCCEEDED}"), 1);
//! assert!(snap.histograms.contains_key("span.enumerate.ms"));
//! assert_eq!(sink.events().len(), 7); // counter + 2×(start, end, observe)
//! ```

mod recorder;
mod sink;
mod snapshot;

pub use recorder::{Recorder, Span};
pub use sink::{FileSink, MemorySink, ObsEvent, ObsSink, StderrSink};
pub use snapshot::{HistogramSnapshot, Snapshot};

/// Counter incremented (with a `metric` label) whenever a non-finite sample
/// is dropped at the recorder boundary.
pub const DROPPED_SAMPLES: &str = "obs.dropped_samples";

/// Flatten a metric name and label set into the canonical storage key.
///
/// Labels are sorted by key so call-site order never splits a metric:
/// `negotiation.outcome{status=SUCCEEDED}`.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_key_sorts_labels() {
        assert_eq!(metric_key("a.b", &[]), "a.b");
        assert_eq!(metric_key("a.b", &[("z", "1"), ("a", "2")]), "a.b{a=2,z=1}");
        assert_eq!(metric_key("a.b", &[("a", "2"), ("z", "1")]), "a.b{a=2,z=1}");
    }
}
