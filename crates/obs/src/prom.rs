//! Prometheus text exposition of a [`Snapshot`].
//!
//! Renders the recorder's flattened keys (`name{k=v,...}`) into the
//! Prometheus text format: counters and gauges verbatim, histograms as
//! summaries (quantile series plus `_sum`/`_count`). Metric and label
//! names are sanitized to the Prometheus charset (`.` and other invalid
//! characters become `_`); label values are escaped per the format spec.
//! Output is sorted by metric family then series, so a deterministic
//! snapshot renders byte-identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// Map a metric or label name into the Prometheus charset.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value (backslash, quote, newline).
fn escape_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Split a flattened recorder key into `(family, labels)`.
fn split_key(key: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (sanitize(key), Vec::new());
    };
    let family = sanitize(&key[..brace]);
    let inner = key[brace + 1..].trim_end_matches('}');
    let labels = inner
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (sanitize(k), v.to_string()),
            None => (sanitize(pair), String::new()),
        })
        .collect();
    (family, labels)
}

/// Render a label set (optionally with an extra label appended).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Format a float the way Prometheus expects (no exponent surprises for
/// the values we emit; non-finite becomes `NaN`/`+Inf`/`-Inf`).
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        let s = format!("{v}");
        s
    }
}

/// Render `snap` in the Prometheus text exposition format.
pub fn to_prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();

    enum Series<'a> {
        Counter(u64),
        Gauge(f64),
        Hist(&'a HistogramSnapshot),
    }

    let mut all: Vec<(&String, Series)> = Vec::new();
    all.extend(snap.counters.iter().map(|(k, &v)| (k, Series::Counter(v))));
    all.extend(snap.gauges.iter().map(|(k, &v)| (k, Series::Gauge(v))));
    all.extend(snap.histograms.iter().map(|(k, h)| (k, Series::Hist(h))));

    // Group keys by family so each family gets one TYPE line.
    type Labels = Vec<(String, String)>;
    let mut fams: BTreeMap<String, Vec<(Labels, Series)>> = BTreeMap::new();
    for (key, val) in all {
        let (family, labels) = split_key(key);
        fams.entry(family).or_default().push((labels, val));
    }

    for (family, series) in fams {
        let kind = match series[0].1 {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Hist(_) => "summary",
        };
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for (labels, val) in &series {
            match val {
                Series::Counter(v) => {
                    let _ = writeln!(out, "{family}{} {v}", label_block(labels, None));
                }
                Series::Gauge(v) => {
                    let _ = writeln!(out, "{family}{} {}", label_block(labels, None), num(*v));
                }
                Series::Hist(h) => {
                    for (q, v) in [
                        ("0.5", h.p50),
                        ("0.9", h.p90),
                        ("0.95", h.p95),
                        ("0.99", h.p99),
                    ] {
                        let _ = writeln!(
                            out,
                            "{family}{} {}",
                            label_block(labels, Some(("quantile", q))),
                            num(v)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{family}_sum{} {}",
                        label_block(labels, None),
                        num(h.mean * h.count as f64)
                    );
                    let _ = writeln!(
                        out,
                        "{family}_count{} {}",
                        label_block(labels, None),
                        h.count
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let rec = Recorder::new();
        rec.counter_with("negotiation.outcome", &[("status", "SUCCEEDED")], 4);
        rec.counter_with("negotiation.outcome", &[("status", "FAILEDTRYLATER")], 2);
        rec.gauge("broker.admission_ratio", 0.75);
        for x in [1.0, 2.0, 3.0, 4.0] {
            rec.observe("span.negotiate.ms", x);
        }
        let text = to_prometheus_text(&rec.snapshot());

        assert!(text.contains("# TYPE broker_admission_ratio gauge\n"));
        assert!(text.contains("broker_admission_ratio 0.75\n"));
        assert!(text.contains("# TYPE negotiation_outcome counter\n"));
        assert!(text.contains("negotiation_outcome{status=\"SUCCEEDED\"} 4\n"));
        assert!(text.contains("negotiation_outcome{status=\"FAILEDTRYLATER\"} 2\n"));
        assert!(text.contains("# TYPE span_negotiate_ms summary\n"));
        assert!(text.contains("span_negotiate_ms{quantile=\"0.5\"}"));
        assert!(text.contains("span_negotiate_ms_sum 10\n"));
        assert!(text.contains("span_negotiate_ms_count 4\n"));
        // One TYPE line per family, families sorted.
        let types: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut sorted = types.clone();
        sorted.sort();
        assert_eq!(types, sorted);
    }

    #[test]
    fn deterministic_rendering() {
        let build = || {
            let rec = Recorder::new();
            rec.counter_with("a.b", &[("x", "1")], 1);
            rec.observe("h", 2.5);
            rec.gauge("g", -1.0);
            to_prometheus_text(&rec.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sanitizes_names_and_escapes_values() {
        let rec = Recorder::new();
        rec.counter_with("weird.name-x", &[("label.a", "va\"l")], 1);
        let text = to_prometheus_text(&rec.snapshot());
        assert!(text.contains("weird_name_x{label_a=\"va\\\"l\"} 1\n"));
    }
}
