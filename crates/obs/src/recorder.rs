//! The metric recorder and its span handles.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, MutexGuard, OnceLock};
use std::time::Instant;

use nod_simcore::sync::Mutex;

use crate::hist::{HistogramShardAcc, ValueHistogram};
use crate::sink::{ObsEvent, ObsSink};
use crate::snapshot::Snapshot;
use crate::trace::{TraceId, Tracer};
use crate::{metric_key, DROPPED_SAMPLES};

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, ValueHistogram>,
}

/// Where metric writes land.
enum Store {
    /// One table behind one lock — the default, with exact last-write
    /// gauges and exact Welford histogram moments.
    Locked(Mutex<State>),
    /// Per-worker-thread tables merged at snapshot time, so a threaded
    /// fleet run never serializes its hot path on one recorder lock.
    Sharded(Shards),
}

struct Shards {
    shards: Box<[Mutex<State>]>,
    /// Next shard to hand to a thread that has none yet.
    next: AtomicUsize,
}

/// Each thread remembers which shard it owns per sharded recorder
/// (keyed by the recorder's allocation address), so the hot path is one
/// thread-local scan instead of an atomic claim. Bounded: the cache is
/// cleared if it ever fills, which only costs a re-claim.
const SHARD_CACHE_CAP: usize = 64;

thread_local! {
    static SHARD_OF: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
    /// Per-thread override of the simulation clock (see
    /// [`Recorder::pin_sim_time_us`]).
    static SIM_TIME_PIN: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII guard for [`Recorder::pin_sim_time_us`]: while alive, every
/// timestamp the *current thread* reads from any recorder is the pinned
/// virtual instant. Dropping it restores the previous pin (pins nest).
#[must_use = "the pin only holds while the guard is alive"]
#[derive(Debug)]
pub struct SimTimePin {
    prev: Option<u64>,
}

impl Drop for SimTimePin {
    fn drop(&mut self) {
        SIM_TIME_PIN.with(|p| p.set(self.prev));
    }
}

impl Shards {
    /// The calling thread's shard for the recorder identified by `token`.
    fn shard(&self, token: usize) -> &Mutex<State> {
        let idx = SHARD_OF.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, i)) = cache.iter().find(|(t, _)| *t == token) {
                i
            } else {
                let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
                if cache.len() >= SHARD_CACHE_CAP {
                    cache.clear();
                }
                cache.push((token, i));
                i
            }
        });
        &self.shards[idx]
    }
}

struct Shared {
    store: Store,
    sink: Option<Arc<dyn ObsSink>>,
    /// Set-once causal tracer; absent on the vast majority of recorders.
    tracer: OnceLock<Tracer>,
    span_ids: AtomicU64,
    epoch: Instant,
    sim_time_us: AtomicU64,
    use_sim_clock: AtomicBool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let store = match &self.store {
            Store::Locked(_) => "locked".to_string(),
            Store::Sharded(s) => format!("sharded({})", s.shards.len()),
        };
        f.debug_struct("Shared")
            .field("store", &store)
            .field("sink", &self.sink.as_ref().map(|_| "<sink>"))
            .finish_non_exhaustive()
    }
}

/// A shared handle to a metric store plus an optional event sink.
///
/// `Recorder` is an `Arc` internally: clone it freely, hand clones to every
/// subsystem, and read one merged [`Snapshot`] at the end. All methods take
/// `&self` and are thread-safe.
///
/// Instrumented code should hold an `Option<Recorder>` (or
/// `Option<&Recorder>` in `Copy` contexts) so that the disabled
/// configuration costs a branch and nothing else.
#[derive(Clone, Debug)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with no event sink (metrics only).
    pub fn new() -> Self {
        Recorder::build(None, None)
    }

    /// A recorder that also streams every event to `sink`.
    pub fn with_sink(sink: Arc<dyn ObsSink>) -> Self {
        Recorder::build(Some(sink), None)
    }

    /// A recorder whose metric tables are sharded across worker threads
    /// (each thread claims a private shard on first write), merged into one
    /// [`Snapshot`] on read — so threaded fleet runs never contend on a
    /// recorder lock.
    ///
    /// The determinism contract: the merged snapshot depends only on the
    /// *multiset* of writes, not on which thread made them — counters sum
    /// exactly, gauges aggregate by running **max** (not last-write, which
    /// would be scheduler-dependent), and histogram summaries are derived
    /// from the merged log buckets ([`HistogramShardAcc`]), so the same
    /// seed yields a byte-identical snapshot at any thread count. Histogram
    /// `mean`/`m2` therefore carry the buckets' ≤ 1% relative error instead
    /// of being Welford-exact.
    pub fn sharded(shards: usize) -> Self {
        Recorder::build(None, Some(shards.max(1)))
    }

    fn build(sink: Option<Arc<dyn ObsSink>>, shards: Option<usize>) -> Self {
        let store = match shards {
            None => Store::Locked(Mutex::new(State::default())),
            Some(n) => Store::Sharded(Shards {
                shards: (0..n).map(|_| Mutex::new(State::default())).collect(),
                next: AtomicUsize::new(0),
            }),
        };
        Recorder {
            shared: Arc::new(Shared {
                store,
                sink,
                tracer: OnceLock::new(),
                span_ids: AtomicU64::new(1),
                epoch: Instant::now(),
                sim_time_us: AtomicU64::new(0),
                use_sim_clock: AtomicBool::new(false),
            }),
        }
    }

    /// Is this a sharded (fleet-mode) recorder?
    pub fn is_sharded(&self) -> bool {
        matches!(self.shared.store, Store::Sharded(_))
    }

    /// Lock the calling thread's metric table (the single table in locked
    /// mode, this thread's shard in sharded mode).
    fn state(&self) -> MutexGuard<'_, State> {
        match &self.shared.store {
            Store::Locked(m) => m.lock(),
            Store::Sharded(s) => s.shard(Arc::as_ptr(&self.shared) as usize).lock(),
        }
    }

    /// Attach a causal [`Tracer`] (set-once; later calls are ignored).
    /// Spans opened through this recorder then also record
    /// [`crate::TraceEvent`]s into whichever trace is resumed on the
    /// current thread, and [`Recorder::trace_point`] becomes live.
    pub fn set_tracer(&self, tracer: Tracer) {
        let _ = self.shared.tracer.set(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer.get()
    }

    /// Is a trace resumed on the current thread? Callers use this to skip
    /// building labels for [`Recorder::trace_point`] on untraced runs.
    pub fn trace_active(&self) -> bool {
        self.shared
            .tracer
            .get()
            .is_some_and(|t| t.active().is_some())
    }

    /// Record a point event (a leaf annotation, e.g. an admission verdict)
    /// under the innermost open span of the active trace. A branch when no
    /// tracer is attached, a thread-local check when no trace is resumed —
    /// allocation-free in both cases.
    pub fn trace_point(&self, name: &str, labels: &[(&str, &str)]) {
        self.trace_point_value(name, labels, None);
    }

    /// [`Recorder::trace_point`] carrying a numeric value.
    pub fn trace_point_value(&self, name: &str, labels: &[(&str, &str)], value: Option<f64>) {
        let Some(tracer) = self.shared.tracer.get() else {
            return;
        };
        tracer.point(
            self.now_us(),
            || crate::intern_metric_key(name, labels),
            value,
        );
    }

    /// Drive span timing from the simulation clock instead of wall time.
    ///
    /// Harnesses call this as their event loop advances; once called, all
    /// subsequent timestamps come from the most recent value, making traces
    /// of seeded experiments reproducible.
    pub fn set_sim_time_us(&self, t_us: u64) {
        self.shared.sim_time_us.store(t_us, Ordering::Relaxed);
        self.shared.use_sim_clock.store(true, Ordering::Relaxed);
    }

    /// Pin the *current thread's* clock to the virtual instant `t_us`
    /// until the returned guard drops.
    ///
    /// [`Recorder::set_sim_time_us`] is global: a worker thread doing
    /// virtual-time work concurrently with the coordinator's event loop
    /// would otherwise stamp its spans with whatever tick the coordinator
    /// happens to be on — a scheduler-dependent value. Pinning gives the
    /// worker the event's own virtual time (so span durations are a
    /// deterministic zero and sink timestamps are replayable) without
    /// touching the shared clock other threads read.
    pub fn pin_sim_time_us(&self, t_us: u64) -> SimTimePin {
        let prev = SIM_TIME_PIN.with(|p| p.replace(Some(t_us)));
        SimTimePin { prev }
    }

    /// Current timestamp in microseconds: the calling thread's pin if one
    /// is alive ([`Recorder::pin_sim_time_us`]), else the sim clock if set,
    /// else wall time since the recorder was created.
    pub fn now_us(&self) -> u64 {
        if let Some(pinned) = SIM_TIME_PIN.with(|p| p.get()) {
            return pinned;
        }
        if self.shared.use_sim_clock.load(Ordering::Relaxed) {
            self.shared.sim_time_us.load(Ordering::Relaxed)
        } else {
            self.shared.epoch.elapsed().as_micros() as u64
        }
    }

    /// Run `event` and emit the result only when a sink is attached, so
    /// the no-sink path never pays for building the event.
    fn emit_with(&self, event: impl FnOnce() -> ObsEvent) {
        if let Some(sink) = &self.shared.sink {
            sink.emit(&event());
        }
    }

    /// Add `delta` to the counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        self.counter_with(name, &[], delta);
    }

    /// Add `delta` to the counter `name` with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if let Some(sink) = &self.shared.sink {
            let key = metric_key(name, labels);
            *self.state().counters.entry(key.clone()).or_insert(0) += delta;
            sink.emit(&ObsEvent::counter(self.now_us(), key, delta));
        } else {
            // Steady state (key already seen on this thread and in this
            // shard) touches no allocator: interned key, `get_mut` hit.
            let key = crate::intern_metric_key(name, labels);
            let mut state = self.state();
            match state.counters.get_mut(key.as_ref()) {
                Some(v) => *v += delta,
                None => {
                    state.counters.insert(key.into_owned(), delta);
                }
            }
        }
    }

    /// Set the gauge `name` to `value`. Non-finite values are dropped and
    /// counted under `obs.dropped_samples`.
    pub fn gauge(&self, name: &str, value: f64) {
        self.gauge_with(name, &[], value);
    }

    /// Set a labelled gauge. In sharded mode the gauge aggregates by
    /// running max instead of last-write, because "last" is
    /// scheduler-dependent once writers race across shards.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if self.drop_non_finite(name, value) {
            return;
        }
        let sharded = self.is_sharded();
        let set = |state: &mut State, key: &str| {
            if sharded {
                match state.gauges.get_mut(key) {
                    Some(g) => *g = g.max(value),
                    None => {
                        state.gauges.insert(key.to_string(), value);
                    }
                }
            } else {
                match state.gauges.get_mut(key) {
                    Some(g) => *g = value,
                    None => {
                        state.gauges.insert(key.to_string(), value);
                    }
                }
            }
        };
        if let Some(sink) = &self.shared.sink {
            let key = metric_key(name, labels);
            set(&mut self.state(), &key);
            sink.emit(&ObsEvent::gauge(self.now_us(), key, value));
        } else {
            let key = crate::intern_metric_key(name, labels);
            set(&mut self.state(), key.as_ref());
        }
    }

    /// Record `value` into the histogram `name`. Non-finite values are
    /// dropped and counted under `obs.dropped_samples`.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &[], value);
    }

    /// Record a labelled histogram sample.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if self.drop_non_finite(name, value) {
            return;
        }
        if let Some(sink) = &self.shared.sink {
            let key = metric_key(name, labels);
            self.state()
                .hists
                .entry(key.clone())
                .or_default()
                .record(value);
            sink.emit(&ObsEvent::observe(self.now_us(), key, value));
        } else {
            let key = crate::intern_metric_key(name, labels);
            let mut state = self.state();
            match state.hists.get_mut(key.as_ref()) {
                Some(h) => h.record(value),
                None => {
                    state
                        .hists
                        .entry(key.into_owned())
                        .or_default()
                        .record(value);
                }
            }
        }
    }

    /// True (and counted) when `value` cannot enter the stats layer.
    fn drop_non_finite(&self, name: &str, value: f64) -> bool {
        if value.is_finite() {
            return false;
        }
        let key = metric_key(DROPPED_SAMPLES, &[("metric", name)]);
        if let Some(sink) = &self.shared.sink {
            *self.state().counters.entry(key.clone()).or_insert(0) += 1;
            sink.emit(&ObsEvent::counter(self.now_us(), key, 1));
        } else {
            *self.state().counters.entry(key).or_insert(0) += 1;
        }
        true
    }

    /// Open a root span. The span records `span.<name>.ms` when it ends
    /// (on drop or [`Span::end`]) and emits start/end events to the sink.
    /// With a tracer attached and a trace resumed on this thread, the span
    /// also joins that trace's tree, parented by the ambient span stack.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with_parent(name, 0, false)
    }

    /// Open a root span that exists *only* in the active trace: no
    /// `span.<name>.ms` histogram, no sink events. `None` when no trace is
    /// resumed on this thread. Drivers use this for spans whose entire
    /// purpose is trace structure (the broker's per-session `session` /
    /// `attempt` / `backoff` / `confirm` spans), so enabling tracing does
    /// not also grow the metric surface — and untraced runs pay nothing.
    pub fn trace_span(&self, name: &'static str) -> Option<Span> {
        if !self.trace_active() {
            return None;
        }
        Some(self.span_with_parent(name, 0, true))
    }

    fn span_with_parent(&self, name: &'static str, parent: u64, quiet: bool) -> Span {
        let id = self.shared.span_ids.fetch_add(1, Ordering::Relaxed);
        let start_us = self.now_us();
        if !quiet {
            self.emit_with(|| ObsEvent::span_start(start_us, name.to_string(), id, parent));
        }
        let trace = self
            .shared
            .tracer
            .get()
            .and_then(|t| t.span_start(start_us, name, id, parent));
        Span {
            rec: self.clone(),
            name,
            id,
            parent,
            start_us,
            trace,
            quiet,
            ended: false,
        }
    }

    /// Snapshot the full metric state (counters, gauges, histogram
    /// summaries). Cheap enough to call between experiment phases. For a
    /// sharded recorder this merges every shard with order-independent
    /// folds (counter sum, gauge max, bucket union), so the result is
    /// independent of how writes were spread across threads.
    pub fn snapshot(&self) -> Snapshot {
        match &self.shared.store {
            Store::Locked(m) => {
                let state = m.lock();
                let counters = state.counters.clone();
                let gauges = state.gauges.clone();
                let histograms = state
                    .hists
                    .iter()
                    .map(|(k, h)| (k.clone(), h.snapshot()))
                    .collect();
                Snapshot {
                    counters,
                    gauges,
                    histograms,
                }
            }
            Store::Sharded(s) => {
                let mut counters: BTreeMap<String, u64> = BTreeMap::new();
                let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
                let mut accs: BTreeMap<String, HistogramShardAcc> = BTreeMap::new();
                // One shard lock at a time; writers on other shards keep
                // running while we walk.
                for shard in s.shards.iter() {
                    let state = shard.lock();
                    for (k, v) in &state.counters {
                        *counters.entry(k.clone()).or_insert(0) += v;
                    }
                    for (k, v) in &state.gauges {
                        gauges
                            .entry(k.clone())
                            .and_modify(|g| *g = g.max(*v))
                            .or_insert(*v);
                    }
                    for (k, h) in &state.hists {
                        accs.entry(k.clone()).or_default().add(h);
                    }
                }
                let histograms = accs.iter().map(|(k, a)| (k.clone(), a.finish())).collect();
                Snapshot {
                    counters,
                    gauges,
                    histograms,
                }
            }
        }
    }

    /// Flush the sink, if any (no-op for in-memory and stderr sinks).
    pub fn flush(&self) {
        if let Some(sink) = &self.shared.sink {
            sink.flush();
        }
    }
}

/// A timed region of the pipeline.
///
/// Spans nest by explicit parenting — [`Span::child`] — rather than
/// thread-local ambient context, so traces stay deterministic when stages
/// fan out across worker threads. (With a [`Tracer`] attached, a *root*
/// span additionally picks up the active trace's innermost span as its
/// trace-tree parent, which is how broker-level spans enclose negotiation
/// spans without plumbing.) Ending is idempotent: `end()` consumes the
/// span; dropping an un-ended span still records its duration, but under
/// a `dropped="true"` label — a drop without `end()` marks an abandoned
/// path (early return, error unwind), and those timings must stay visible
/// without polluting the clean-path histogram.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: u64,
    /// The trace this span's start was recorded into, if any.
    trace: Option<TraceId>,
    /// Trace-only: skip the metrics/sink half of `finish`.
    quiet: bool,
    ended: bool,
}

impl Span {
    /// This span's id (appears in sink events as `span`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parent span id (0 for root spans).
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Open a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.rec.span_with_parent(name, self.id, self.quiet)
    }

    /// End the span now (otherwise it ends on drop, which flags the
    /// timing with `dropped="true"`).
    pub fn end(mut self) {
        self.finish(false);
    }

    fn finish(&mut self, via_drop: bool) {
        if self.ended {
            return;
        }
        self.ended = true;
        let end_us = self.rec.now_us();
        let elapsed_ms = end_us.saturating_sub(self.start_us) as f64 / 1_000.0;
        if !self.quiet {
            let metric = format!("span.{}.ms", self.name);
            if via_drop {
                self.rec
                    .observe_with(&metric, &[("dropped", "true")], elapsed_ms);
            } else {
                self.rec.observe(&metric, elapsed_ms);
            }
            self.rec.emit_with(|| {
                ObsEvent::span_end(
                    end_us,
                    self.name.to_string(),
                    self.id,
                    self.parent,
                    elapsed_ms,
                )
            });
        }
        if let (Some(trace), Some(tracer)) = (self.trace, self.rec.shared.tracer.get()) {
            tracer.span_end(
                end_us,
                self.name,
                self.id,
                self.parent,
                elapsed_ms,
                via_drop,
                trace,
            );
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    #[test]
    fn counters_accumulate_per_label() {
        let rec = Recorder::new();
        rec.counter("req", 1);
        rec.counter("req", 2);
        rec.counter_with("req", &[("status", "ok")], 5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("req"), 3);
        assert_eq!(snap.counter("req{status=ok}"), 5);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let rec = Recorder::new();
        rec.gauge("depth", 3.0);
        rec.gauge("depth", 7.5);
        assert_eq!(rec.snapshot().gauges.get("depth"), Some(&7.5));
    }

    #[test]
    fn histograms_summarize() {
        let rec = Recorder::new();
        for x in 1..=100 {
            rec.observe("lat", x as f64);
        }
        let snap = rec.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 100);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        // Quantiles come from the log sketch: within its 1% relative bound.
        assert!((h.p50 - 50.5).abs() <= 1.6, "p50={}", h.p50);
        assert!((h.p95 - 95.0).abs() <= 2.0, "p95={}", h.p95);
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        let rec = Recorder::new();
        rec.observe("lat", f64::NAN);
        rec.observe("lat", f64::INFINITY);
        rec.observe("lat", 1.0);
        rec.gauge("g", f64::NEG_INFINITY);
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["lat"].count, 1);
        assert_eq!(snap.counter("obs.dropped_samples{metric=lat}"), 2);
        assert_eq!(snap.counter("obs.dropped_samples{metric=g}"), 1);
        assert!(!snap.gauges.contains_key("g"));
    }

    #[test]
    fn long_streams_keep_accurate_percentiles() {
        let rec = Recorder::new();
        for x in 0..20_000 {
            rec.observe("big", x as f64);
        }
        let snap = rec.snapshot();
        let h = &snap.histograms["big"];
        assert_eq!(h.count, 20_000);
        // Far past the old reservoir cap, the log buckets stay within
        // their relative-error bound instead of degrading to a subsample.
        assert!((h.p50 - 10_000.0).abs() <= 250.0, "p50={}", h.p50);
        assert!((h.p99 - 19_800.0).abs() <= 450.0, "p99={}", h.p99);
    }

    #[test]
    fn span_nesting_and_timing() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::with_sink(sink.clone());
        rec.set_sim_time_us(1_000);
        let root = rec.span("negotiate");
        rec.set_sim_time_us(2_000);
        let child = root.child("enumerate");
        assert_eq!(child.parent(), root.id());
        rec.set_sim_time_us(5_000);
        child.end();
        rec.set_sim_time_us(9_000);
        root.end();

        let snap = rec.snapshot();
        assert_eq!(snap.histograms["span.enumerate.ms"].mean, 3.0);
        assert_eq!(snap.histograms["span.negotiate.ms"].mean, 8.0);

        let kinds: Vec<(String, String)> = sink
            .events()
            .iter()
            .filter(|e| e.kind.starts_with("span"))
            .map(|e| (e.kind.clone(), e.name.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("span_start".into(), "negotiate".into()),
                ("span_start".into(), "enumerate".into()),
                ("span_end".into(), "enumerate".into()),
                ("span_end".into(), "negotiate".into()),
            ]
        );
    }

    #[test]
    fn dropped_span_records_under_dropped_label() {
        let rec = Recorder::new();
        rec.set_sim_time_us(0);
        {
            let _span = rec.span("scope");
            rec.set_sim_time_us(500);
        }
        let snap = rec.snapshot();
        // The timing is not lost, but it is flagged: the clean-path
        // histogram stays clean and the anomaly is visible.
        let h = &snap.histograms["span.scope.ms{dropped=true}"];
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 0.5);
        assert!(!snap.histograms.contains_key("span.scope.ms"));

        rec.set_sim_time_us(1_000);
        let span = rec.span("scope");
        rec.set_sim_time_us(1_200);
        span.end();
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["span.scope.ms"].count, 1);
        assert_eq!(snap.histograms["span.scope.ms{dropped=true}"].count, 1);
    }

    #[test]
    fn spans_join_the_active_trace() {
        let rec = Recorder::new();
        let tracer = Tracer::new();
        rec.set_tracer(tracer.clone());
        rec.set_sim_time_us(10);

        // Untraced span: metrics only, no trace events.
        rec.span("lonely").end();
        assert!(!rec.trace_active());

        tracer.resume(7);
        assert!(rec.trace_active());
        let root = rec.span("session");
        let attempt = rec.span("attempt"); // ambient-parented under session
        rec.trace_point("cmfs.admission", &[("result", "accepted")]);
        attempt.end();
        root.end();
        tracer.suspend();

        let events = tracer.drain();
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.trace == 7));
        let attempt_start = events
            .iter()
            .find(|e| e.kind == "span_start" && e.name == "attempt")
            .unwrap();
        let session_start = events
            .iter()
            .find(|e| e.kind == "span_start" && e.name == "session")
            .unwrap();
        assert_eq!(attempt_start.parent, session_start.span);
        let point = events.iter().find(|e| e.kind == "point").unwrap();
        assert_eq!(point.name, "cmfs.admission{result=accepted}");
        assert_eq!(point.span, attempt_start.span);
        assert!(events.iter().all(|e| e.name != "lonely"));
    }

    #[test]
    fn trace_point_without_tracer_is_free() {
        let rec = Recorder::new();
        rec.trace_point("noop", &[("k", "v")]);
        assert!(!rec.trace_active());
    }

    /// Write one fixed multiset of metrics from `threads` workers (the
    /// split is by index, so the union is thread-count-independent).
    fn sharded_run(shards: usize, threads: usize) -> Snapshot {
        let rec = Recorder::sharded(shards);
        rec.set_sim_time_us(0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in (t..256).step_by(threads) {
                        rec.counter_with("fleet.sessions", &[("class", "tv")], 1);
                        rec.observe("fleet.latency_ms", (i % 37 + 1) as f64);
                        rec.gauge("fleet.load", (i % 11) as f64);
                    }
                });
            }
        });
        rec.snapshot()
    }

    #[test]
    fn sharded_snapshots_are_identical_across_thread_counts() {
        let one = sharded_run(8, 1);
        let two = sharded_run(8, 2);
        let eight = sharded_run(8, 8);
        assert_eq!(one.to_json_pretty(), two.to_json_pretty());
        assert_eq!(one.to_json_pretty(), eight.to_json_pretty());
        // Shard count must not matter either.
        let narrow = sharded_run(1, 8);
        assert_eq!(one.to_json_pretty(), narrow.to_json_pretty());
        assert_eq!(one.counter("fleet.sessions{class=tv}"), 256);
        assert_eq!(one.histograms["fleet.latency_ms"].count, 256);
        // Gauges aggregate by max in sharded mode.
        assert_eq!(one.gauges["fleet.load"], 10.0);
    }

    #[test]
    fn sharded_matches_locked_on_order_independent_fields() {
        let sharded = sharded_run(8, 8);
        let rec = Recorder::new();
        for i in 0..256usize {
            rec.counter_with("fleet.sessions", &[("class", "tv")], 1);
            rec.observe("fleet.latency_ms", (i % 37 + 1) as f64);
            rec.gauge("fleet.load", (i % 11) as f64);
        }
        let locked = rec.snapshot();
        assert_eq!(sharded.counters, locked.counters);
        let (s, l) = (
            &sharded.histograms["fleet.latency_ms"],
            &locked.histograms["fleet.latency_ms"],
        );
        assert_eq!(s.count, l.count);
        assert_eq!(s.min, l.min);
        assert_eq!(s.max, l.max);
        assert_eq!(s.buckets, l.buckets);
        assert_eq!((s.p50, s.p90, s.p95, s.p99), (l.p50, l.p90, l.p95, l.p99));
        assert!((s.mean - l.mean).abs() <= 0.02 * l.max, "sketched mean");
    }

    #[test]
    fn sim_time_pin_overrides_per_thread_and_nests() {
        let rec = Recorder::new();
        rec.set_sim_time_us(500);
        assert_eq!(rec.now_us(), 500);
        {
            let _outer = rec.pin_sim_time_us(1_000);
            assert_eq!(rec.now_us(), 1_000);
            {
                let _inner = rec.pin_sim_time_us(2_000);
                assert_eq!(rec.now_us(), 2_000);
            }
            assert_eq!(rec.now_us(), 1_000, "inner pin restores the outer");
        }
        assert_eq!(rec.now_us(), 500, "dropping the pin restores the clock");

        // The pin is thread-local: another thread still reads the shared
        // sim clock while this thread is pinned.
        let _pin = rec.pin_sim_time_us(9_999);
        let other = &rec;
        std::thread::scope(|s| {
            s.spawn(move || assert_eq!(other.now_us(), 500))
                .join()
                .unwrap();
        });
        // A pinned span has a deterministic zero duration.
        let span = rec.span("pinned.stage");
        span.end();
        assert_eq!(rec.snapshot().histograms["span.pinned.stage.ms"].max, 0.0);
    }
}
