//! The metric recorder and its span handles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nod_simcore::rng::SplitMix64;
use nod_simcore::sync::Mutex;
use nod_simcore::OnlineStats;

use crate::sink::{ObsEvent, ObsSink};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::{metric_key, DROPPED_SAMPLES};

/// Cap on retained samples per histogram; beyond it a deterministic
/// reservoir (algorithm R, seeded from the metric key) keeps a uniform
/// subsample for percentile estimation while the Welford moments stay
/// exact over the full stream.
const RESERVOIR_CAP: usize = 4096;

#[derive(Debug)]
pub(crate) struct HistState {
    pub(crate) stats: OnlineStats,
    pub(crate) samples: Vec<f64>,
    seen: u64,
    rng: SplitMix64,
}

impl HistState {
    fn new(key: &str) -> Self {
        // FNV-1a over the key: any fixed, stable seed works; keying it to
        // the metric name decorrelates reservoirs across metrics.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        HistState {
            stats: OnlineStats::new(),
            samples: Vec::new(),
            seen: 0,
            rng: SplitMix64::new(h),
        }
    }

    fn push(&mut self, x: f64) {
        self.stats.push(x);
        self.seen += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(x);
        } else {
            let j = self.rng.next_below(self.seen);
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = x;
            }
        }
    }
}

#[derive(Debug, Default)]
struct State {
    counters: std::collections::BTreeMap<String, u64>,
    gauges: std::collections::BTreeMap<String, f64>,
    hists: std::collections::BTreeMap<String, HistState>,
}

struct Shared {
    state: Mutex<State>,
    sink: Option<Arc<dyn ObsSink>>,
    span_ids: AtomicU64,
    epoch: Instant,
    sim_time_us: AtomicU64,
    use_sim_clock: AtomicBool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("state", &self.state)
            .field("sink", &self.sink.as_ref().map(|_| "<sink>"))
            .finish_non_exhaustive()
    }
}

/// A shared handle to a metric store plus an optional event sink.
///
/// `Recorder` is an `Arc` internally: clone it freely, hand clones to every
/// subsystem, and read one merged [`Snapshot`] at the end. All methods take
/// `&self` and are thread-safe.
///
/// Instrumented code should hold an `Option<Recorder>` (or
/// `Option<&Recorder>` in `Copy` contexts) so that the disabled
/// configuration costs a branch and nothing else.
#[derive(Clone, Debug)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with no event sink (metrics only).
    pub fn new() -> Self {
        Recorder::build(None)
    }

    /// A recorder that also streams every event to `sink`.
    pub fn with_sink(sink: Arc<dyn ObsSink>) -> Self {
        Recorder::build(Some(sink))
    }

    fn build(sink: Option<Arc<dyn ObsSink>>) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                state: Mutex::new(State::default()),
                sink,
                span_ids: AtomicU64::new(1),
                epoch: Instant::now(),
                sim_time_us: AtomicU64::new(0),
                use_sim_clock: AtomicBool::new(false),
            }),
        }
    }

    /// Drive span timing from the simulation clock instead of wall time.
    ///
    /// Harnesses call this as their event loop advances; once called, all
    /// subsequent timestamps come from the most recent value, making traces
    /// of seeded experiments reproducible.
    pub fn set_sim_time_us(&self, t_us: u64) {
        self.shared.sim_time_us.store(t_us, Ordering::Relaxed);
        self.shared.use_sim_clock.store(true, Ordering::Relaxed);
    }

    /// Current timestamp in microseconds (sim clock if set, else wall time
    /// since the recorder was created).
    pub fn now_us(&self) -> u64 {
        if self.shared.use_sim_clock.load(Ordering::Relaxed) {
            self.shared.sim_time_us.load(Ordering::Relaxed)
        } else {
            self.shared.epoch.elapsed().as_micros() as u64
        }
    }

    fn emit(&self, event: ObsEvent) {
        if let Some(sink) = &self.shared.sink {
            sink.emit(&event);
        }
    }

    /// Add `delta` to the counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        self.counter_with(name, &[], delta);
    }

    /// Add `delta` to the counter `name` with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = metric_key(name, labels);
        *self
            .shared
            .state
            .lock()
            .counters
            .entry(key.clone())
            .or_insert(0) += delta;
        self.emit(ObsEvent::counter(self.now_us(), key, delta));
    }

    /// Set the gauge `name` to `value`. Non-finite values are dropped and
    /// counted under `obs.dropped_samples`.
    pub fn gauge(&self, name: &str, value: f64) {
        self.gauge_with(name, &[], value);
    }

    /// Set a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if self.drop_non_finite(name, value) {
            return;
        }
        let key = metric_key(name, labels);
        self.shared.state.lock().gauges.insert(key.clone(), value);
        self.emit(ObsEvent::gauge(self.now_us(), key, value));
    }

    /// Record `value` into the histogram `name`. Non-finite values are
    /// dropped and counted under `obs.dropped_samples`.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &[], value);
    }

    /// Record a labelled histogram sample.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if self.drop_non_finite(name, value) {
            return;
        }
        let key = metric_key(name, labels);
        self.shared
            .state
            .lock()
            .hists
            .entry(key.clone())
            .or_insert_with(|| HistState::new(&key))
            .push(value);
        self.emit(ObsEvent::observe(self.now_us(), key, value));
    }

    /// True (and counted) when `value` cannot enter the stats layer.
    fn drop_non_finite(&self, name: &str, value: f64) -> bool {
        if value.is_finite() {
            return false;
        }
        let key = metric_key(DROPPED_SAMPLES, &[("metric", name)]);
        *self
            .shared
            .state
            .lock()
            .counters
            .entry(key.clone())
            .or_insert(0) += 1;
        self.emit(ObsEvent::counter(self.now_us(), key, 1));
        true
    }

    /// Open a root span. The span records `span.<name>.ms` when it ends
    /// (on drop or [`Span::end`]) and emits start/end events to the sink.
    pub fn span(&self, name: &str) -> Span {
        self.span_with_parent(name, 0)
    }

    fn span_with_parent(&self, name: &str, parent: u64) -> Span {
        let id = self.shared.span_ids.fetch_add(1, Ordering::Relaxed);
        let start_us = self.now_us();
        self.emit(ObsEvent::span_start(start_us, name.to_string(), id, parent));
        Span {
            rec: self.clone(),
            name: name.to_string(),
            id,
            parent,
            start_us,
            ended: false,
        }
    }

    /// Snapshot the full metric state (counters, gauges, histogram
    /// summaries). Cheap enough to call between experiment phases.
    pub fn snapshot(&self) -> Snapshot {
        let mut state = self.shared.state.lock();
        let counters = state.counters.clone();
        let gauges = state.gauges.clone();
        let histograms = state
            .hists
            .iter_mut()
            .map(|(k, h)| (k.clone(), HistogramSnapshot::from_state(h)))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Flush the sink, if any (no-op for in-memory and stderr sinks).
    pub fn flush(&self) {
        if let Some(sink) = &self.shared.sink {
            sink.flush();
        }
    }
}

/// A timed region of the pipeline.
///
/// Spans nest by explicit parenting — [`Span::child`] — rather than
/// thread-local ambient context, so traces stay deterministic when stages
/// fan out across worker threads. Ending is idempotent: `end()` consumes
/// the span, and dropping an un-ended span ends it.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    name: String,
    id: u64,
    parent: u64,
    start_us: u64,
    ended: bool,
}

impl Span {
    /// This span's id (appears in sink events as `span`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parent span id (0 for root spans).
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Open a child span.
    pub fn child(&self, name: &str) -> Span {
        self.rec.span_with_parent(name, self.id)
    }

    /// End the span now (otherwise it ends on drop).
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        let end_us = self.rec.now_us();
        let elapsed_ms = end_us.saturating_sub(self.start_us) as f64 / 1_000.0;
        self.rec
            .observe(&format!("span.{}.ms", self.name), elapsed_ms);
        self.rec.emit(ObsEvent::span_end(
            end_us,
            self.name.clone(),
            self.id,
            self.parent,
            elapsed_ms,
        ));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    #[test]
    fn counters_accumulate_per_label() {
        let rec = Recorder::new();
        rec.counter("req", 1);
        rec.counter("req", 2);
        rec.counter_with("req", &[("status", "ok")], 5);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("req"), 3);
        assert_eq!(snap.counter("req{status=ok}"), 5);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let rec = Recorder::new();
        rec.gauge("depth", 3.0);
        rec.gauge("depth", 7.5);
        assert_eq!(rec.snapshot().gauges.get("depth"), Some(&7.5));
    }

    #[test]
    fn histograms_summarize() {
        let rec = Recorder::new();
        for x in 1..=100 {
            rec.observe("lat", x as f64);
        }
        let snap = rec.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 100);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.p50 - 50.5).abs() < 1e-9);
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        let rec = Recorder::new();
        rec.observe("lat", f64::NAN);
        rec.observe("lat", f64::INFINITY);
        rec.observe("lat", 1.0);
        rec.gauge("g", f64::NEG_INFINITY);
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["lat"].count, 1);
        assert_eq!(snap.counter("obs.dropped_samples{metric=lat}"), 2);
        assert_eq!(snap.counter("obs.dropped_samples{metric=g}"), 1);
        assert!(!snap.gauges.contains_key("g"));
    }

    #[test]
    fn reservoir_caps_retained_samples() {
        let rec = Recorder::new();
        for x in 0..20_000 {
            rec.observe("big", x as f64);
        }
        let snap = rec.snapshot();
        let h = &snap.histograms["big"];
        assert_eq!(h.count, 20_000);
        // Percentiles come from the reservoir: still roughly uniform.
        assert!(h.p50 > 5_000.0 && h.p50 < 15_000.0, "p50={}", h.p50);
    }

    #[test]
    fn span_nesting_and_timing() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::with_sink(sink.clone());
        rec.set_sim_time_us(1_000);
        let root = rec.span("negotiate");
        rec.set_sim_time_us(2_000);
        let child = root.child("enumerate");
        assert_eq!(child.parent(), root.id());
        rec.set_sim_time_us(5_000);
        child.end();
        rec.set_sim_time_us(9_000);
        root.end();

        let snap = rec.snapshot();
        assert_eq!(snap.histograms["span.enumerate.ms"].mean, 3.0);
        assert_eq!(snap.histograms["span.negotiate.ms"].mean, 8.0);

        let kinds: Vec<(String, String)> = sink
            .events()
            .iter()
            .filter(|e| e.kind.starts_with("span"))
            .map(|e| (e.kind.clone(), e.name.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("span_start".into(), "negotiate".into()),
                ("span_start".into(), "enumerate".into()),
                ("span_end".into(), "enumerate".into()),
                ("span_end".into(), "negotiate".into()),
            ]
        );
    }

    #[test]
    fn dropped_span_still_records() {
        let rec = Recorder::new();
        rec.set_sim_time_us(0);
        {
            let _span = rec.span("scope");
            rec.set_sim_time_us(500);
        }
        assert_eq!(rec.snapshot().histograms["span.scope.ms"].count, 1);
    }
}
