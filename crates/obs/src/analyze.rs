//! Offline analysis of trace logs: span-tree reconstruction, integrity
//! checking, critical paths, retry waterfalls, wait-time attribution, and
//! exports (text report, Chrome `trace_event` JSON).
//!
//! The input is the flat event stream a [`crate::Tracer`] drains (or its
//! JSONL serialization, via [`parse_jsonl`]). [`build_trees`] turns it
//! back into one tree per trace *and* verifies the causal invariants the
//! tracer promises — every event in exactly one trace, contiguous
//! sequence numbers, every span closed exactly once, children closing
//! before their parents, points attached to known spans. Analysis on top
//! of a validated forest is then straightforward tree walking.
//!
//! Wait-time attribution ([`attribute_wait`]) answers "where did session
//! 41's virtual time go": the session's end-to-end duration is split into
//! active negotiation work, backoff waits (further split by what caused
//! the retry — admission-queue rejection vs network rejection), the user
//! confirmation window, and unattributed gap — and the parts sum exactly
//! to the total, in integer microseconds.

use std::collections::BTreeMap;

use crate::trace::TraceEvent;

/// One reconstructed span with its children and point annotations.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (e.g. `session`, `attempt`, `negotiate`).
    pub name: String,
    /// Span id (unique per recorder run).
    pub span: u64,
    /// Start timestamp, µs.
    pub start_us: u64,
    /// End timestamp, µs.
    pub end_us: u64,
    /// True when the span ended via drop rather than an explicit `end()`.
    pub dropped: bool,
    /// Point events recorded under this span (not under descendants).
    pub points: Vec<TraceEvent>,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Span duration in µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// All descendants (including self) named `name`, in start order.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a SpanNode>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.find_all(name, out);
        }
    }

    /// A structural fingerprint of the subtree — name, timing, points and
    /// children, but not span ids (ids depend on allocation order across
    /// the whole run, not on the session). Two same-seed runs must agree
    /// on every session's shape.
    pub fn shape(&self) -> String {
        let mut out = format!(
            "{}[{}..{}{}](",
            self.name,
            self.start_us,
            self.end_us,
            if self.dropped { ",dropped" } else { "" }
        );
        for p in &self.points {
            out.push_str(&format!("p:{}@{};", p.name, p.t_us));
        }
        for c in &self.children {
            out.push_str(&c.shape());
            out.push(';');
        }
        out.push(')');
        out
    }
}

/// All spans of one trace. Usually a single `session` root (broker runs);
/// scenario drivers that trace a whole run under one id produce several
/// roots.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id (broker: session index).
    pub trace: u64,
    /// Root spans, in start order.
    pub roots: Vec<SpanNode>,
}

impl TraceTree {
    /// Structural fingerprint of the whole trace (see [`SpanNode::shape`]).
    pub fn shape(&self) -> String {
        let mut out = format!("trace {}:", self.trace);
        for r in &self.roots {
            out.push_str(&r.shape());
            out.push(';');
        }
        out
    }
}

/// Parse a JSONL trace log (as written by `--trace-out`).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| TraceEvent::from_json_line(l).map_err(|e| format!("line {}: {e:?}", i + 1)))
        .collect()
}

/// Span state while rebuilding one trace.
struct OpenSpan {
    node: SpanNode,
    parent: u64,
    end_seq: Option<u64>,
}

/// Rebuild one tree per trace and verify the causal invariants. Errors
/// name the trace and the violated invariant.
pub fn build_trees(events: &[TraceEvent]) -> Result<Vec<TraceTree>, String> {
    let mut by_trace: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        by_trace.entry(ev.trace).or_default().push(ev);
    }
    let mut out = Vec::new();
    for (trace, evs) in by_trace {
        out.push(build_one(trace, &evs)?);
    }
    Ok(out)
}

fn build_one(trace: u64, evs: &[&TraceEvent]) -> Result<TraceTree, String> {
    for (i, ev) in evs.iter().enumerate() {
        if ev.seq != i as u64 {
            return Err(format!(
                "trace {trace}: seq gap at position {i} (got {})",
                ev.seq
            ));
        }
    }
    // First pass: collect spans.
    let mut spans: BTreeMap<u64, OpenSpan> = BTreeMap::new();
    let mut root_order: Vec<u64> = Vec::new();
    let mut child_order: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for ev in evs {
        match &*ev.kind {
            "span_start" => {
                if spans.contains_key(&ev.span) {
                    return Err(format!("trace {trace}: span {} started twice", ev.span));
                }
                if ev.parent != 0 {
                    let parent = spans.get(&ev.parent).ok_or_else(|| {
                        format!(
                            "trace {trace}: span {} has unknown parent {}",
                            ev.span, ev.parent
                        )
                    })?;
                    if parent.end_seq.is_some() {
                        return Err(format!(
                            "trace {trace}: span {} starts under already-closed parent {}",
                            ev.span, ev.parent
                        ));
                    }
                    child_order.entry(ev.parent).or_default().push(ev.span);
                } else {
                    root_order.push(ev.span);
                }
                spans.insert(
                    ev.span,
                    OpenSpan {
                        node: SpanNode {
                            name: ev.name.to_string(),
                            span: ev.span,
                            start_us: ev.t_us,
                            end_us: ev.t_us,
                            dropped: false,
                            points: Vec::new(),
                            children: Vec::new(),
                        },
                        parent: ev.parent,
                        end_seq: None,
                    },
                );
            }
            "span_end" => {
                let open = spans.get_mut(&ev.span).ok_or_else(|| {
                    format!("trace {trace}: span_end for unknown span {}", ev.span)
                })?;
                if open.end_seq.is_some() {
                    return Err(format!("trace {trace}: span {} ended twice", ev.span));
                }
                if ev.t_us < open.node.start_us {
                    return Err(format!(
                        "trace {trace}: span {} ends before it starts",
                        ev.span
                    ));
                }
                open.node.end_us = ev.t_us;
                open.node.dropped = ev.detail == "dropped";
                open.end_seq = Some(ev.seq);
            }
            "point" => {
                let open = spans.get_mut(&ev.span).ok_or_else(|| {
                    format!(
                        "trace {trace}: point `{}` attached to unknown span {}",
                        ev.name, ev.span
                    )
                })?;
                if open.end_seq.is_some() {
                    return Err(format!(
                        "trace {trace}: point `{}` recorded after span {} closed",
                        ev.name, ev.span
                    ));
                }
                open.node.points.push((*ev).clone());
            }
            other => return Err(format!("trace {trace}: unknown event kind `{other}`")),
        }
    }
    // Every span must have closed, and parents must close after children.
    for (id, open) in &spans {
        let Some(end) = open.end_seq else {
            return Err(format!("trace {trace}: span {id} never closed"));
        };
        if open.parent != 0 {
            let parent = &spans[&open.parent];
            let parent_end = parent
                .end_seq
                .ok_or_else(|| format!("trace {trace}: span {} never closed", open.parent))?;
            if parent_end < end {
                return Err(format!(
                    "trace {trace}: parent {} closed before child {id}",
                    open.parent
                ));
            }
        }
    }
    // Assemble bottom-up: children attach in start order. Spans start in
    // seq order, so walking span ids in reverse start order guarantees a
    // child is complete before its parent consumes it.
    let start_order: Vec<u64> = evs
        .iter()
        .filter(|e| e.kind == "span_start")
        .map(|e| e.span)
        .collect();
    let mut done: BTreeMap<u64, SpanNode> = BTreeMap::new();
    for &id in start_order.iter().rev() {
        let open = spans.remove(&id).expect("collected above");
        let mut node = open.node;
        for child_id in child_order.remove(&id).unwrap_or_default() {
            node.children.push(
                done.remove(&child_id)
                    .expect("children start after their parent, so they were assembled first"),
            );
        }
        done.insert(id, node);
    }
    let roots = root_order
        .into_iter()
        .map(|id| done.remove(&id).expect("roots assembled"))
        .collect();
    Ok(TraceTree { trace, roots })
}

/// The critical path from `node` to its latest-ending leaf: `(name,
/// duration_us)` per hop, root first.
pub fn critical_path(node: &SpanNode) -> Vec<(String, u64)> {
    let mut path = vec![(node.name.clone(), node.duration_us())];
    let mut cur = node;
    while let Some(next) = cur.children.iter().max_by_key(|c| c.end_us) {
        path.push((next.name.clone(), next.duration_us()));
        cur = next;
    }
    path
}

/// Where a session's end-to-end virtual time went. All fields are µs and
/// sum exactly to `total_us`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitAttribution {
    /// End-to-end session duration.
    pub total_us: u64,
    /// Time inside negotiation attempts (submit → verdict).
    pub active_us: u64,
    /// Backoff waits not attributable to a single rejection cause.
    pub backoff_us: u64,
    /// Backoff waits caused by server admission rejection.
    pub admission_us: u64,
    /// Backoff waits caused by network reservation rejection.
    pub network_us: u64,
    /// The user confirmation (choicePeriod) window.
    pub confirmation_us: u64,
    /// Gap not covered by any child span (scheduling slack).
    pub other_us: u64,
}

impl WaitAttribution {
    /// Sum of all attributed parts (equals `total_us` by construction).
    pub fn attributed_us(&self) -> u64 {
        self.active_us
            + self.backoff_us
            + self.admission_us
            + self.network_us
            + self.confirmation_us
            + self.other_us
    }
}

/// Attribute a session root's duration to its phases. Direct children
/// are classified by name (`attempt` → active, `backoff` → by its
/// `backoff.reason{...}` point, `confirm` → confirmation, anything else →
/// active); the uncovered remainder is `other_us`.
pub fn attribute_wait(session: &SpanNode) -> WaitAttribution {
    let mut a = WaitAttribution {
        total_us: session.duration_us(),
        ..WaitAttribution::default()
    };
    for child in &session.children {
        let d = child.duration_us();
        match child.name.as_str() {
            "backoff" => {
                let reason = child
                    .points
                    .iter()
                    .find(|p| p.name.starts_with("backoff.reason{"))
                    .map(|p| &*p.name);
                match reason {
                    Some(r) if r.contains("reason=admission") => a.admission_us += d,
                    Some(r) if r.contains("reason=network") => a.network_us += d,
                    _ => a.backoff_us += d,
                }
            }
            "confirm" => a.confirmation_us += d,
            _ => a.active_us += d,
        }
    }
    let covered = a.active_us + a.backoff_us + a.admission_us + a.network_us + a.confirmation_us;
    a.other_us = a.total_us.saturating_sub(covered);
    a
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// Render a human-readable report over a validated forest: per-session
/// retry waterfalls with wait attribution, then a fleet summary with the
/// slowest session's critical path.
pub fn text_report(trees: &[TraceTree]) -> String {
    let mut out = String::new();
    out.push_str("=== trace report ===\n");
    let mut totals = WaitAttribution::default();
    let mut slowest: Option<(&TraceTree, &SpanNode)> = None;
    for tree in trees {
        for root in &tree.roots {
            let session = if root.name == "session" {
                root
            } else {
                match root.find("session") {
                    Some(s) => s,
                    None => root,
                }
            };
            let a = attribute_wait(session);
            let mut attempts = Vec::new();
            session.find_all("attempt", &mut attempts);
            out.push_str(&format!(
                "trace {:>3} `{}`: total {:>9}  attempts {:>2}  active {} ({:.0}%)  backoff {} adm {} net {}  confirm {}  other {}\n",
                tree.trace,
                session.name,
                fmt_us(a.total_us),
                attempts.len(),
                fmt_us(a.active_us),
                pct(a.active_us, a.total_us),
                fmt_us(a.backoff_us),
                fmt_us(a.admission_us),
                fmt_us(a.network_us),
                fmt_us(a.confirmation_us),
                fmt_us(a.other_us),
            ));
            // Retry waterfall: one line per attempt, offset from session
            // start, with the verdict points seen inside it.
            for (i, at) in attempts.iter().enumerate() {
                let verdicts: Vec<&str> = at
                    .points
                    .iter()
                    .map(|p| &*p.name)
                    .chain(
                        at.children
                            .iter()
                            .flat_map(|c| c.points.iter().map(|p| &*p.name)),
                    )
                    .collect();
                out.push_str(&format!(
                    "    attempt {:>2} @+{:>9}  {}\n",
                    i + 1,
                    fmt_us(at.start_us.saturating_sub(session.start_us)),
                    verdicts.join(" ")
                ));
            }
            totals.total_us += a.total_us;
            totals.active_us += a.active_us;
            totals.backoff_us += a.backoff_us;
            totals.admission_us += a.admission_us;
            totals.network_us += a.network_us;
            totals.confirmation_us += a.confirmation_us;
            totals.other_us += a.other_us;
            if slowest
                .as_ref()
                .map(|(_, s)| session.duration_us() > s.duration_us())
                .unwrap_or(true)
            {
                slowest = Some((tree, session));
            }
        }
    }
    out.push_str(&format!(
        "--- fleet: {} sessions, total {}  active {:.1}%  backoff {:.1}%  admission {:.1}%  network {:.1}%  confirmation {:.1}%  other {:.1}%\n",
        trees.iter().map(|t| t.roots.len()).sum::<usize>(),
        fmt_us(totals.total_us),
        pct(totals.active_us, totals.total_us),
        pct(totals.backoff_us, totals.total_us),
        pct(totals.admission_us, totals.total_us),
        pct(totals.network_us, totals.total_us),
        pct(totals.confirmation_us, totals.total_us),
        pct(totals.other_us, totals.total_us),
    ));
    if let Some((tree, session)) = slowest {
        out.push_str(&format!(
            "--- slowest: trace {} ({}); critical path: {}\n",
            tree.trace,
            fmt_us(session.duration_us()),
            critical_path(session)
                .iter()
                .map(|(n, d)| format!("{n}({})", fmt_us(*d)))
                .collect::<Vec<_>>()
                .join(" → ")
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Export events as Chrome `trace_event` JSON (load in `chrome://tracing`
/// or Perfetto). Spans become complete (`"X"`) events with the trace id
/// as `tid`, points become instant (`"i"`) events.
pub fn chrome_trace_json(trees: &[TraceTree]) -> String {
    fn emit(out: &mut Vec<String>, tid: u64, node: &SpanNode) {
        out.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"cat\":\"span\"{}}}",
            json_escape(&node.name),
            node.start_us,
            node.duration_us(),
            tid,
            if node.dropped {
                ",\"args\":{\"dropped\":\"true\"}"
            } else {
                ""
            }
        ));
        for p in &node.points {
            out.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"cat\":\"point\"}}",
                json_escape(&p.name),
                p.t_us,
                tid
            ));
        }
        for c in &node.children {
            emit(out, tid, c);
        }
    }
    let mut items = Vec::new();
    for tree in trees {
        for root in &tree.roots {
            emit(&mut items, tree.trace, root);
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", items.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    /// Drive a tracer through a two-attempt session with an admission
    /// backoff and a confirmation window.
    fn sample_events() -> Vec<TraceEvent> {
        let t = Tracer::new();
        t.resume(41);
        t.span_start(1_000, "session", 1, 0);
        t.span_start(1_000, "attempt", 2, 0);
        t.point(
            1_000,
            || "cmfs.admission{result=disk,server=s0}".to_string(),
            None,
        );
        t.span_end(1_000, "attempt", 2, 0, 0.0, false, 41);
        t.span_start(1_000, "backoff", 3, 0);
        t.point(
            1_000,
            || "backoff.reason{reason=admission}".to_string(),
            None,
        );
        t.span_end(51_000, "backoff", 3, 0, 50.0, false, 41);
        t.span_start(51_000, "attempt", 4, 0);
        t.span_end(53_000, "attempt", 4, 0, 2.0, false, 41);
        t.span_start(53_000, "confirm", 5, 0);
        t.span_end(83_000, "confirm", 5, 0, 30.0, false, 41);
        t.span_end(90_000, "session", 1, 0, 89.0, false, 41);
        t.drain()
    }

    #[test]
    fn builds_a_valid_tree() {
        let events = sample_events();
        let trees = build_trees(&events).unwrap();
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace, 41);
        assert_eq!(tree.roots.len(), 1);
        let session = &tree.roots[0];
        assert_eq!(session.name, "session");
        assert_eq!(
            session
                .children
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["attempt", "backoff", "attempt", "confirm"]
        );
        assert_eq!(session.children[0].points.len(), 1);
    }

    #[test]
    fn attribution_sums_exactly() {
        let events = sample_events();
        let trees = build_trees(&events).unwrap();
        let a = attribute_wait(&trees[0].roots[0]);
        assert_eq!(a.total_us, 89_000);
        assert_eq!(a.active_us, 2_000);
        assert_eq!(a.admission_us, 50_000);
        assert_eq!(a.network_us, 0);
        assert_eq!(a.confirmation_us, 30_000);
        assert_eq!(a.other_us, 7_000);
        assert_eq!(a.attributed_us(), a.total_us);
    }

    #[test]
    fn critical_path_follows_latest_end() {
        let events = sample_events();
        let trees = build_trees(&events).unwrap();
        let path = critical_path(&trees[0].roots[0]);
        assert_eq!(path[0].0, "session");
        assert_eq!(path[1].0, "confirm");
    }

    #[test]
    fn integrity_violations_are_named() {
        let mut events = sample_events();
        // Unclosed span: drop the session's end event.
        let cut: Vec<TraceEvent> = events[..events.len() - 1].to_vec();
        let err = build_trees(&cut).unwrap_err();
        assert!(
            err.contains("seq gap") || err.contains("never closed"),
            "{err}"
        );

        // Orphan point: unknown span id.
        let mut orphan = sample_events();
        orphan[2].span = 999;
        let err = build_trees(&orphan).unwrap_err();
        assert!(err.contains("unknown span"), "{err}");

        // Seq gap.
        events[3].seq = 42;
        let err = build_trees(&events).unwrap_err();
        assert!(err.contains("seq gap"), "{err}");
    }

    #[test]
    fn shapes_ignore_span_ids() {
        let a = build_trees(&sample_events()).unwrap();
        // Same structure, shifted span ids.
        let shifted: Vec<TraceEvent> = sample_events()
            .into_iter()
            .map(|mut e| {
                if e.kind != "point" || e.span != 0 {
                    e.span += 100;
                }
                if e.parent != 0 {
                    e.parent += 100;
                }
                e
            })
            .collect();
        let b = build_trees(&shifted).unwrap();
        assert_eq!(a[0].shape(), b[0].shape());
    }

    #[test]
    fn report_and_chrome_export_smoke() {
        let trees = build_trees(&sample_events()).unwrap();
        let report = text_report(&trees);
        assert!(report.contains("trace  41"), "{report}");
        assert!(report.contains("attempts  2"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        let chrome = chrome_trace_json(&trees);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"tid\":41"));
    }

    #[test]
    fn jsonl_round_trip() {
        let events = sample_events();
        let mut text = String::new();
        for e in &events {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        assert_eq!(parse_jsonl(&text).unwrap(), events);
        assert!(parse_jsonl("not json\n").is_err());
    }
}
