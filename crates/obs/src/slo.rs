//! Service-level objectives over virtual-time windows, with burn alerts.
//!
//! An [`SloMonitor`] evaluates a set of [`SloSpec`]s — objectives declared
//! in code over the three fleet health signals the broker already
//! produces: admission latency, session failure ratio, and retry-budget
//! consumption. Evaluation is windowed on the *virtual* clock (tumbling
//! windows of `window_ms`), so a seeded run burns, alerts and recovers at
//! exactly the same virtual instants on every replay and at every thread
//! count — the monitor is fed from the broker's deterministic per-session
//! close-out, never from wall time.
//!
//! When an objective stays out of bounds for `burn_windows` consecutive
//! windows the monitor emits an [`SloAlert`]: a `slo.alert{slo=...}`
//! counter into the recorder, and — on the first alert of the run — a
//! flight-recorder dump ([`crate::Tracer::trigger_flight_dump`]), so the
//! last trace events leading into the burn survive for inspection.

use crate::hist::LogHistogram;
use crate::Recorder;

/// What an SLO bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// The `q`-quantile of admission latency must stay ≤ `max_ms`.
    AdmissionLatencyQuantile {
        /// Quantile in `[0, 1]`, e.g. 0.99.
        q: f64,
        /// Latency bound in milliseconds.
        max_ms: f64,
    },
    /// The fraction of sessions ending in failure must stay ≤ `max_ratio`.
    FailureRatio {
        /// Bound in `[0, 1]`.
        max_ratio: f64,
    },
    /// Mean negotiation attempts consumed per session must stay ≤
    /// `max_attempts_per_session` (retry-budget consumption).
    RetryBudget {
        /// Bound, e.g. 4.0 attempts per session.
        max_attempts_per_session: f64,
    },
}

impl Objective {
    /// The objective's bound, for reporting.
    pub fn threshold(&self) -> f64 {
        match *self {
            Objective::AdmissionLatencyQuantile { max_ms, .. } => max_ms,
            Objective::FailureRatio { max_ratio } => max_ratio,
            Objective::RetryBudget {
                max_attempts_per_session,
            } => max_attempts_per_session,
        }
    }
}

/// One service-level objective: a named [`Objective`] evaluated over
/// tumbling virtual-time windows, alerting after a burn streak.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Name, used as the `slo` label on emitted metrics.
    pub name: &'static str,
    /// What is bounded.
    pub objective: Objective,
    /// Tumbling window length in virtual milliseconds.
    pub window_ms: u64,
    /// Consecutive out-of-bounds windows before an alert fires.
    pub burn_windows: u32,
}

/// An SLO that burned: `burn_windows` consecutive windows out of bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// The burning SLO's name.
    pub slo: &'static str,
    /// Virtual end of the window that completed the streak (ms).
    pub window_end_ms: u64,
    /// The observed value in that window.
    pub observed: f64,
    /// The objective's bound.
    pub threshold: f64,
    /// Length of the streak when the alert fired.
    pub burning_windows: u32,
}

/// A reasonable default fleet SLO set for contended broker runs.
pub fn default_fleet_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "admission-latency-p99",
            objective: Objective::AdmissionLatencyQuantile {
                q: 0.99,
                max_ms: 5_000.0,
            },
            window_ms: 5_000,
            burn_windows: 2,
        },
        SloSpec {
            name: "session-failure-ratio",
            objective: Objective::FailureRatio { max_ratio: 0.5 },
            window_ms: 5_000,
            burn_windows: 2,
        },
        SloSpec {
            name: "retry-budget",
            objective: Objective::RetryBudget {
                max_attempts_per_session: 4.0,
            },
            window_ms: 5_000,
            burn_windows: 2,
        },
    ]
}

/// Per-spec window accumulator and burn streak.
#[derive(Debug, Default)]
struct SpecState {
    /// Index of the currently accumulating window.
    window_idx: u64,
    latencies: LogHistogram,
    sessions: u64,
    failed: u64,
    attempts: u64,
    streak: u32,
}

/// Evaluates [`SloSpec`]s over the virtual clock as the broker reports
/// session ends; see the module docs.
#[derive(Debug)]
pub struct SloMonitor {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
    alerts: Vec<SloAlert>,
    dumped: bool,
}

impl SloMonitor {
    /// A monitor over `specs` (an empty set is a no-op monitor).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = specs.iter().map(|_| SpecState::default()).collect();
        SloMonitor {
            specs,
            states,
            alerts: Vec::new(),
            dumped: false,
        }
    }

    /// Are any SLOs configured?
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Alerts fired so far.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Report one session's terminal outcome at virtual time `now_ms`:
    /// `latency_ms` is the admission latency when the session was admitted,
    /// `failed` marks terminal failures, `attempts` the negotiation
    /// attempts it consumed. Windows that ended before `now_ms` are closed
    /// (and evaluated) first.
    pub fn on_session(
        &mut self,
        rec: Option<&Recorder>,
        now_ms: u64,
        latency_ms: Option<f64>,
        failed: bool,
        attempts: u64,
    ) {
        self.advance(rec, now_ms);
        for st in &mut self.states {
            if let Some(l) = latency_ms {
                if l.is_finite() {
                    st.latencies.record(l);
                }
            }
            st.sessions += 1;
            st.failed += u64::from(failed);
            st.attempts += attempts;
        }
    }

    /// Close every window that ends at or before `now_ms`.
    pub fn advance(&mut self, rec: Option<&Recorder>, now_ms: u64) {
        for i in 0..self.specs.len() {
            let spec = self.specs[i].clone();
            let target_idx = now_ms / spec.window_ms.max(1);
            while self.states[i].window_idx < target_idx {
                self.close_window(rec, i, &spec);
            }
        }
    }

    /// Close out the run: evaluate the final partial windows and return
    /// every alert fired.
    pub fn finish(&mut self, rec: Option<&Recorder>, now_ms: u64) -> &[SloAlert] {
        self.advance(rec, now_ms);
        for i in 0..self.specs.len() {
            let spec = self.specs[i].clone();
            if self.states[i].sessions > 0 {
                self.close_window(rec, i, &spec);
            }
        }
        &self.alerts
    }

    /// Evaluate and reset spec `i`'s current window, advancing its index.
    fn close_window(&mut self, rec: Option<&Recorder>, i: usize, spec: &SloSpec) {
        let st = &mut self.states[i];
        let window_end_ms = (st.window_idx + 1) * spec.window_ms.max(1);
        let observed = match spec.objective {
            Objective::AdmissionLatencyQuantile { q, .. } => {
                (st.latencies.count() > 0).then(|| st.latencies.quantile(q))
            }
            Objective::FailureRatio { .. } => {
                (st.sessions > 0).then(|| st.failed as f64 / st.sessions as f64)
            }
            Objective::RetryBudget { .. } => {
                (st.sessions > 0).then(|| st.attempts as f64 / st.sessions as f64)
            }
        };
        st.latencies = LogHistogram::new();
        st.sessions = 0;
        st.failed = 0;
        st.attempts = 0;
        st.window_idx += 1;

        // An empty window has no evidence either way: it ends the streak.
        let Some(observed) = observed else {
            st.streak = 0;
            return;
        };
        if observed <= spec.objective.threshold() {
            st.streak = 0;
            return;
        }
        st.streak += 1;
        let streak = st.streak;
        if let Some(rec) = rec {
            rec.counter_with("slo.window.burning", &[("slo", spec.name)], 1);
        }
        if streak == spec.burn_windows.max(1) {
            self.alerts.push(SloAlert {
                slo: spec.name,
                window_end_ms,
                observed,
                threshold: spec.objective.threshold(),
                burning_windows: streak,
            });
            if let Some(rec) = rec {
                rec.counter_with("slo.alert", &[("slo", spec.name)], 1);
                if !self.dumped {
                    if let Some(tracer) = rec.tracer() {
                        self.dumped = true;
                        tracer.trigger_flight_dump(&format!("slo_burn:{}", spec.name));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn latency_slo(window_ms: u64, burn: u32, max_ms: f64) -> SloSpec {
        SloSpec {
            name: "lat-p99",
            objective: Objective::AdmissionLatencyQuantile { q: 0.99, max_ms },
            window_ms,
            burn_windows: burn,
        }
    }

    #[test]
    fn alert_fires_after_burn_streak_and_not_before() {
        let mut m = SloMonitor::new(vec![latency_slo(1_000, 2, 100.0)]);
        // Window 0: hot. Window 1: hot → alert at its close. Window 2: ok.
        for t in [100u64, 500] {
            m.on_session(None, t, Some(500.0), false, 1);
        }
        for t in [1_100u64, 1_500] {
            m.on_session(None, t, Some(500.0), false, 1);
        }
        assert!(m.alerts().is_empty(), "streak not complete yet");
        m.on_session(None, 2_100, Some(10.0), false, 1);
        assert_eq!(m.alerts().len(), 1, "two hot windows closed");
        let a = &m.alerts()[0];
        assert_eq!(a.slo, "lat-p99");
        assert_eq!(a.window_end_ms, 2_000);
        assert_eq!(a.burning_windows, 2);
        assert!(a.observed > a.threshold);
        // The final cool window resets the streak: no further alert.
        let alerts = m.finish(None, 3_000).to_vec();
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn empty_windows_reset_the_streak() {
        let mut m = SloMonitor::new(vec![latency_slo(1_000, 2, 100.0)]);
        m.on_session(None, 100, Some(500.0), false, 1);
        // Windows 1..4 are empty; the next hot session lands in window 5.
        m.on_session(None, 5_100, Some(500.0), false, 1);
        m.finish(None, 6_000);
        assert!(
            m.alerts().is_empty(),
            "non-consecutive hot windows must not alert"
        );
    }

    #[test]
    fn failure_ratio_and_retry_budget_objectives() {
        let specs = vec![
            SloSpec {
                name: "fail",
                objective: Objective::FailureRatio { max_ratio: 0.25 },
                window_ms: 1_000,
                burn_windows: 1,
            },
            SloSpec {
                name: "retries",
                objective: Objective::RetryBudget {
                    max_attempts_per_session: 2.0,
                },
                window_ms: 1_000,
                burn_windows: 1,
            },
        ];
        let mut m = SloMonitor::new(specs);
        for i in 0..4u64 {
            m.on_session(None, 100 + i, None, i % 2 == 0, 5);
        }
        m.finish(None, 1_000);
        let names: Vec<&str> = m.alerts().iter().map(|a| a.slo).collect();
        assert_eq!(names, vec!["fail", "retries"]);
        assert_eq!(m.alerts()[0].observed, 0.5);
        assert_eq!(m.alerts()[1].observed, 5.0);
    }

    #[test]
    fn alerts_emit_counters_and_dump_the_flight_recorder_once() {
        let rec = Recorder::new();
        let tracer = Tracer::new();
        rec.set_tracer(tracer.clone());
        rec.set_sim_time_us(0);
        // Put something in the flight ring so the dump is non-trivial.
        tracer.resume(0);
        tracer.span_start(1, "session", 1, 0);
        tracer.span_end(2, "session", 1, 0, 0.001, false, 0);
        tracer.suspend();

        let mut m = SloMonitor::new(vec![latency_slo(1_000, 1, 100.0)]);
        m.on_session(Some(&rec), 500, Some(900.0), false, 1);
        m.on_session(Some(&rec), 1_500, Some(900.0), false, 1);
        m.finish(Some(&rec), 2_000);
        // One alert when the streak first reaches burn_windows; the streak
        // continuing does not re-alert, but every burning window counts.
        assert_eq!(m.alerts().len(), 1);

        let snap = rec.snapshot();
        assert_eq!(snap.counter("slo.window.burning{slo=lat-p99}"), 2);
        assert_eq!(snap.counter("slo.alert{slo=lat-p99}"), 1);
        let dump = tracer.take_flight_dump().expect("first alert dumps");
        assert_eq!(dump.reason, "slo_burn:lat-p99");
        assert!(!dump.events.is_empty());
    }

    #[test]
    fn default_fleet_slos_are_well_formed() {
        let specs = default_fleet_slos();
        assert_eq!(specs.len(), 3);
        let mut m = SloMonitor::new(specs);
        assert!(!m.is_empty());
        m.on_session(None, 10, Some(50.0), false, 1);
        assert!(m.finish(None, 10_000).is_empty(), "healthy run: no alerts");
    }
}
