//! Mergeable log-bucketed value histograms.
//!
//! Replaces the earlier reservoir-sampled percentiles: a sample `x` lands
//! in bucket `ceil(log_γ |x|)` with `γ = (1+α)/(1−α)`, which bounds the
//! relative error of any reported quantile by `α` (1%) regardless of how
//! many samples stream through — and, unlike a reservoir, two histograms
//! merge *exactly* by adding bucket counts, so sharded or multi-phase
//! snapshots report the same quantiles the union stream would have.
//! Negative values get their own mirrored bucket region and near-zero
//! values a dedicated zero bucket, so signed metrics (deltas, slacks)
//! summarize correctly.
//!
//! Storage is a sparse `BTreeMap<i64, u64>` per sign: a latency
//! distribution spanning 1 µs – 100 s touches ~900 buckets worst case,
//! typically far fewer.

use std::collections::BTreeMap;

use nod_simcore::json_struct;
use nod_simcore::OnlineStats;

use crate::snapshot::HistogramSnapshot;

/// Relative accuracy bound α of every reported quantile.
pub const RELATIVE_ERROR: f64 = 0.01;

/// |x| below this is counted in the zero bucket (log-buckets cannot hold
/// 0, and values this small are noise for every metric we keep).
const ZERO_EPSILON: f64 = 1e-12;

fn gamma() -> f64 {
    (1.0 + RELATIVE_ERROR) / (1.0 - RELATIVE_ERROR)
}

/// The serialized form of a [`LogHistogram`]: sparse `(index, count)`
/// pairs per sign region, ascending by index. Bucket `i` covers
/// magnitudes `(γ^(i-1), γ^i]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogBuckets {
    /// Samples with `|x| < 1e-12`.
    pub zero: u64,
    /// Positive-value buckets.
    pub pos: Vec<(i64, u64)>,
    /// Negative-value buckets (indexed by magnitude).
    pub neg: Vec<(i64, u64)>,
}

json_struct!(LogBuckets { zero, pos, neg });

/// A log-bucketed histogram with bounded relative error and exact merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    zero: u64,
    pos: BTreeMap<i64, u64>,
    neg: BTreeMap<i64, u64>,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn index(magnitude: f64) -> i64 {
        (magnitude.ln() / gamma().ln()).ceil() as i64
    }

    /// The representative value of bucket `i` (the geometric midpoint of
    /// its range, which is what bounds the relative error by α).
    fn bucket_value(i: i64) -> f64 {
        let g = gamma();
        2.0 * g.powi(i as i32) / (g + 1.0)
    }

    /// Record one finite sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "caller filters non-finite samples");
        if x.abs() < ZERO_EPSILON {
            self.zero += 1;
        } else if x > 0.0 {
            *self.pos.entry(Self::index(x)).or_insert(0) += 1;
        } else {
            *self.neg.entry(Self::index(-x)).or_insert(0) += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.zero + self.pos.values().sum::<u64>() + self.neg.values().sum::<u64>()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with relative error ≤
    /// [`RELATIVE_ERROR`]; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // 0-based rank of the requested order statistic.
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        // Ascending value order: most-negative first (largest magnitude),
        // then zero, then positives.
        for (&i, &n) in self.neg.iter().rev() {
            seen += n;
            if seen > rank {
                return -Self::bucket_value(i);
            }
        }
        seen += self.zero;
        if seen > rank {
            return 0.0;
        }
        for (&i, &n) in self.pos.iter() {
            seen += n;
            if seen > rank {
                return Self::bucket_value(i);
            }
        }
        // Unreachable when counts are consistent; fall back to the top.
        self.pos
            .keys()
            .next_back()
            .map(|&i| Self::bucket_value(i))
            .unwrap_or(0.0)
    }

    /// Add `other`'s buckets into `self` — the exact merge: quantiles of
    /// the merged histogram equal quantiles of the union stream.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.zero += other.zero;
        for (&i, &n) in &other.pos {
            *self.pos.entry(i).or_insert(0) += n;
        }
        for (&i, &n) in &other.neg {
            *self.neg.entry(i).or_insert(0) += n;
        }
    }

    /// Export the sparse buckets (for snapshots).
    pub fn to_buckets(&self) -> LogBuckets {
        LogBuckets {
            zero: self.zero,
            pos: self.pos.iter().map(|(&i, &n)| (i, n)).collect(),
            neg: self.neg.iter().map(|(&i, &n)| (i, n)).collect(),
        }
    }

    /// Rebuild from exported buckets.
    pub fn from_buckets(b: &LogBuckets) -> Self {
        LogHistogram {
            zero: b.zero,
            pos: b.pos.iter().copied().collect(),
            neg: b.neg.iter().copied().collect(),
        }
    }
}

/// Exact moments (Welford) plus log-bucketed quantiles — the full state
/// behind every recorder histogram, also usable standalone (the broker
/// tracks session latency with one).
#[derive(Debug, Clone)]
pub struct ValueHistogram {
    stats: OnlineStats,
    log: LogHistogram,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        ValueHistogram::new()
    }
}

impl ValueHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        ValueHistogram {
            // Not the derived default: OnlineStats::new() seeds min/max
            // with the infinities so the first sample wins.
            stats: OnlineStats::new(),
            log: LogHistogram::new(),
        }
    }

    /// Record one finite sample (callers filter non-finite input).
    pub fn record(&mut self, x: f64) {
        self.stats.push(x);
        self.log.record(x);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Summarize: exact count/mean/m2/min/max, log-bucketed quantiles
    /// clamped into `[min, max]`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let n = self.stats.count();
        let m2 = if n < 2 {
            0.0
        } else {
            self.stats.variance() * (n - 1) as f64
        };
        let min = self.stats.min().unwrap_or(0.0);
        let max = self.stats.max().unwrap_or(0.0);
        let q = |p: f64| {
            if n == 0 {
                0.0
            } else {
                self.log.quantile(p).clamp(min, max)
            }
        };
        HistogramSnapshot {
            count: n,
            mean: self.stats.mean(),
            m2,
            min,
            max,
            p50: q(0.50),
            p90: q(0.90),
            p95: q(0.95),
            p99: q(0.99),
            buckets: self.log.to_buckets(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHistogram::new();
        for x in 1..=10_000 {
            h.record(x as f64);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel <= 2.0 * RELATIVE_ERROR, "q{q}: {got} vs {expect}");
        }
    }

    #[test]
    fn signed_and_zero_samples_order_correctly() {
        let mut h = LogHistogram::new();
        for x in [-100.0, -10.0, 0.0, 10.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.0) < -98.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.quantile(1.0) > 98.0);
    }

    #[test]
    fn merge_equals_union_exactly() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for i in 0..1_000 {
            let x = (i as f64) * 1.7 - 300.0;
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            union.record(x);
        }
        a.merge(&b);
        assert_eq!(a, union, "bucket-level merge is exact");
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), union.quantile(q));
        }
    }

    #[test]
    fn buckets_round_trip() {
        let mut h = LogHistogram::new();
        for x in [-5.0, 0.0, 1.0, 2.0, 1e9] {
            h.record(x);
        }
        let b = h.to_buckets();
        assert_eq!(LogHistogram::from_buckets(&b), h);
    }
}
