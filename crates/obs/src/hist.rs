//! Mergeable log-bucketed value histograms.
//!
//! Replaces the earlier reservoir-sampled percentiles: a sample `x` lands
//! in bucket `ceil(log_γ |x|)` with `γ = (1+α)/(1−α)`, which bounds the
//! relative error of any reported quantile by `α` (1%) regardless of how
//! many samples stream through — and, unlike a reservoir, two histograms
//! merge *exactly* by adding bucket counts, so sharded or multi-phase
//! snapshots report the same quantiles the union stream would have.
//! Negative values get their own mirrored bucket region and near-zero
//! values a dedicated zero bucket, so signed metrics (deltas, slacks)
//! summarize correctly.
//!
//! Storage is a sparse `BTreeMap<i64, u64>` per sign: a latency
//! distribution spanning 1 µs – 100 s touches ~900 buckets worst case,
//! typically far fewer.

use std::collections::BTreeMap;

use nod_simcore::json_struct;
use nod_simcore::OnlineStats;

use crate::snapshot::HistogramSnapshot;

/// Relative accuracy bound α of every reported quantile.
pub const RELATIVE_ERROR: f64 = 0.01;

/// |x| below this is counted in the zero bucket (log-buckets cannot hold
/// 0, and values this small are noise for every metric we keep).
const ZERO_EPSILON: f64 = 1e-12;

fn gamma() -> f64 {
    (1.0 + RELATIVE_ERROR) / (1.0 - RELATIVE_ERROR)
}

/// The serialized form of a [`LogHistogram`]: sparse `(index, count)`
/// pairs per sign region, ascending by index. Bucket `i` covers
/// magnitudes `(γ^(i-1), γ^i]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogBuckets {
    /// Samples with `|x| < 1e-12`.
    pub zero: u64,
    /// Positive-value buckets.
    pub pos: Vec<(i64, u64)>,
    /// Negative-value buckets (indexed by magnitude).
    pub neg: Vec<(i64, u64)>,
}

json_struct!(LogBuckets { zero, pos, neg });

/// A log-bucketed histogram with bounded relative error and exact merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    zero: u64,
    pos: BTreeMap<i64, u64>,
    neg: BTreeMap<i64, u64>,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn index(magnitude: f64) -> i64 {
        (magnitude.ln() / gamma().ln()).ceil() as i64
    }

    /// The representative value of bucket `i` (the geometric midpoint of
    /// its range, which is what bounds the relative error by α).
    fn bucket_value(i: i64) -> f64 {
        let g = gamma();
        2.0 * g.powi(i as i32) / (g + 1.0)
    }

    /// Record one finite sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "caller filters non-finite samples");
        if x.abs() < ZERO_EPSILON {
            self.zero += 1;
        } else if x > 0.0 {
            *self.pos.entry(Self::index(x)).or_insert(0) += 1;
        } else {
            *self.neg.entry(Self::index(-x)).or_insert(0) += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.zero + self.pos.values().sum::<u64>() + self.neg.values().sum::<u64>()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with relative error ≤
    /// [`RELATIVE_ERROR`]; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        // 0-based rank of the requested order statistic.
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        // Ascending value order: most-negative first (largest magnitude),
        // then zero, then positives.
        for (&i, &n) in self.neg.iter().rev() {
            seen += n;
            if seen > rank {
                return -Self::bucket_value(i);
            }
        }
        seen += self.zero;
        if seen > rank {
            return 0.0;
        }
        for (&i, &n) in self.pos.iter() {
            seen += n;
            if seen > rank {
                return Self::bucket_value(i);
            }
        }
        // Unreachable when counts are consistent; fall back to the top.
        self.pos
            .keys()
            .next_back()
            .map(|&i| Self::bucket_value(i))
            .unwrap_or(0.0)
    }

    /// Add `other`'s buckets into `self` — the exact merge: quantiles of
    /// the merged histogram equal quantiles of the union stream.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.zero += other.zero;
        for (&i, &n) in &other.pos {
            *self.pos.entry(i).or_insert(0) += n;
        }
        for (&i, &n) in &other.neg {
            *self.neg.entry(i).or_insert(0) += n;
        }
    }

    /// Mean and second central moment computed from the bucket
    /// representatives, walked in one canonical order (most-negative
    /// magnitude down, zero, then positives ascending). Both figures carry
    /// the buckets' ≤ [`RELATIVE_ERROR`] relative error, but — unlike
    /// Welford moments combined with Chan's update — they depend only on
    /// the bucket *multiset*, so any partition of a sample stream across
    /// shards reproduces them bit for bit.
    pub fn bucket_moments(&self) -> (f64, f64) {
        let n = self.count();
        if n == 0 {
            return (0.0, 0.0);
        }
        let mut sum = 0.0f64;
        for (&i, &c) in self.neg.iter().rev() {
            sum += c as f64 * -Self::bucket_value(i);
        }
        for (&i, &c) in self.pos.iter() {
            sum += c as f64 * Self::bucket_value(i);
        }
        let mean = sum / n as f64;
        let mut m2 = self.zero as f64 * mean * mean;
        for (&i, &c) in self.neg.iter().rev() {
            let d = -Self::bucket_value(i) - mean;
            m2 += c as f64 * d * d;
        }
        for (&i, &c) in self.pos.iter() {
            let d = Self::bucket_value(i) - mean;
            m2 += c as f64 * d * d;
        }
        (mean, m2)
    }

    /// Export the sparse buckets (for snapshots).
    pub fn to_buckets(&self) -> LogBuckets {
        LogBuckets {
            zero: self.zero,
            pos: self.pos.iter().map(|(&i, &n)| (i, n)).collect(),
            neg: self.neg.iter().map(|(&i, &n)| (i, n)).collect(),
        }
    }

    /// Rebuild from exported buckets.
    pub fn from_buckets(b: &LogBuckets) -> Self {
        LogHistogram {
            zero: b.zero,
            pos: b.pos.iter().copied().collect(),
            neg: b.neg.iter().copied().collect(),
        }
    }
}

/// Exact moments (Welford) plus log-bucketed quantiles — the full state
/// behind every recorder histogram, also usable standalone (the broker
/// tracks session latency with one).
#[derive(Debug, Clone)]
pub struct ValueHistogram {
    stats: OnlineStats,
    log: LogHistogram,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        ValueHistogram::new()
    }
}

impl ValueHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        ValueHistogram {
            // Not the derived default: OnlineStats::new() seeds min/max
            // with the infinities so the first sample wins.
            stats: OnlineStats::new(),
            log: LogHistogram::new(),
        }
    }

    /// Record one finite sample (callers filter non-finite input).
    pub fn record(&mut self, x: f64) {
        self.stats.push(x);
        self.log.record(x);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.stats.min()
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.stats.max()
    }

    /// The log-bucket sketch (for order-independent shard merges).
    pub fn log(&self) -> &LogHistogram {
        &self.log
    }

    /// Summarize: exact count/mean/m2/min/max, log-bucketed quantiles
    /// clamped into `[min, max]`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let n = self.stats.count();
        let m2 = if n < 2 {
            0.0
        } else {
            self.stats.variance() * (n - 1) as f64
        };
        let min = self.stats.min().unwrap_or(0.0);
        let max = self.stats.max().unwrap_or(0.0);
        let q = |p: f64| {
            if n == 0 {
                0.0
            } else {
                self.log.quantile(p).clamp(min, max)
            }
        };
        HistogramSnapshot {
            count: n,
            mean: self.stats.mean(),
            m2,
            min,
            max,
            p50: q(0.50),
            p90: q(0.90),
            p95: q(0.95),
            p99: q(0.99),
            buckets: self.log.to_buckets(),
        }
    }
}

/// Order-independent accumulator over per-shard [`ValueHistogram`]s.
///
/// The sharded recorder cannot use Welford/Chan moment merging: the result
/// depends on how samples were partitioned across shards, which depends on
/// thread count. This accumulator keeps only partition-independent pieces —
/// count (exact sum), min/max (exact fold), and the log buckets (exact
/// union) — and derives mean/m2 from the merged buckets
/// ([`LogHistogram::bucket_moments`]), so the finished summary is
/// bit-identical no matter how the sample stream was split. The price is
/// that mean/m2 carry the buckets' ≤ [`RELATIVE_ERROR`] relative error
/// instead of being exact.
#[derive(Debug, Clone, Default)]
pub struct HistogramShardAcc {
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
    log: LogHistogram,
}

impl HistogramShardAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        HistogramShardAcc::default()
    }

    /// Fold one shard's histogram in (any order, any grouping).
    pub fn add(&mut self, h: &ValueHistogram) {
        self.count += h.count();
        if let Some(m) = h.min() {
            self.min = Some(self.min.map_or(m, |cur| cur.min(m)));
        }
        if let Some(m) = h.max() {
            self.max = Some(self.max.map_or(m, |cur| cur.max(m)));
        }
        self.log.merge(h.log());
    }

    /// The merged summary: exact count/min/max, bucket-derived mean/m2,
    /// quantiles from the merged buckets clamped into `[min, max]`.
    pub fn finish(&self) -> HistogramSnapshot {
        let min = self.min.unwrap_or(0.0);
        let max = self.max.unwrap_or(0.0);
        let (mean, m2) = self.log.bucket_moments();
        let q = |p: f64| {
            if self.count == 0 {
                0.0
            } else {
                self.log.quantile(p).clamp(min, max)
            }
        };
        HistogramSnapshot {
            count: self.count,
            mean,
            m2,
            min,
            max,
            p50: q(0.50),
            p90: q(0.90),
            p95: q(0.95),
            p99: q(0.99),
            buckets: self.log.to_buckets(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHistogram::new();
        for x in 1..=10_000 {
            h.record(x as f64);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel <= 2.0 * RELATIVE_ERROR, "q{q}: {got} vs {expect}");
        }
    }

    #[test]
    fn signed_and_zero_samples_order_correctly() {
        let mut h = LogHistogram::new();
        for x in [-100.0, -10.0, 0.0, 10.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.0) < -98.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.quantile(1.0) > 98.0);
    }

    #[test]
    fn merge_equals_union_exactly() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut union = LogHistogram::new();
        for i in 0..1_000 {
            let x = (i as f64) * 1.7 - 300.0;
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            union.record(x);
        }
        a.merge(&b);
        assert_eq!(a, union, "bucket-level merge is exact");
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), union.quantile(q));
        }
    }

    #[test]
    fn buckets_round_trip() {
        let mut h = LogHistogram::new();
        for x in [-5.0, 0.0, 1.0, 2.0, 1e9] {
            h.record(x);
        }
        let b = h.to_buckets();
        assert_eq!(LogHistogram::from_buckets(&b), h);
    }

    use nod_simcore::StreamRng;

    /// A random histogram: signed magnitudes over ~9 decades plus zeros.
    fn random_hist(rng: &mut StreamRng, samples: u64) -> LogHistogram {
        let mut h = LogHistogram::new();
        for _ in 0..samples {
            if rng.chance(0.05) {
                h.record(0.0);
            } else {
                let mag = 10f64.powf(rng.range_f64(-4.0, 5.0));
                h.record(if rng.chance(0.3) { -mag } else { mag });
            }
        }
        h
    }

    #[test]
    fn merge_is_commutative() {
        for case in 0..32u64 {
            let mut rng = StreamRng::new(0xC0_44 ^ case);
            let na = rng.range_u64(0, 400);
            let a = random_hist(&mut rng, na);
            let nb = rng.range_u64(0, 400);
            let b = random_hist(&mut rng, nb);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "case {case}: merge must be commutative");
        }
    }

    #[test]
    fn merge_is_associative() {
        for case in 0..32u64 {
            let mut rng = StreamRng::new(0xA5_50 ^ case);
            let na = rng.range_u64(0, 300);
            let a = random_hist(&mut rng, na);
            let nb = rng.range_u64(0, 300);
            let b = random_hist(&mut rng, nb);
            let nc = rng.range_u64(0, 300);
            let c = random_hist(&mut rng, nc);
            // (a ∪ b) ∪ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ∪ (b ∪ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "case {case}: merge must be associative");
        }
    }

    /// The sharded recorder's correctness keystone: accumulating any
    /// partition of a sample stream shard-by-shard yields the exact same
    /// summary — and it matches a single unsharded histogram on every
    /// partition-independent field.
    #[test]
    fn shard_accumulation_equals_single_recorder() {
        for case in 0..32u64 {
            let mut rng = StreamRng::new(0x5A_4D ^ case);
            let n = rng.range_u64(1, 600);
            let samples: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.chance(0.05) {
                        0.0
                    } else {
                        let mag = 10f64.powf(rng.range_f64(-3.0, 4.0));
                        if rng.chance(0.5) {
                            -mag
                        } else {
                            mag
                        }
                    }
                })
                .collect();

            let mut single = ValueHistogram::new();
            for &x in &samples {
                single.record(x);
            }
            let single_snap = single.snapshot();

            // Two different partitions of the same stream (2 and 7 shards,
            // assigned round-robin vs randomly).
            let partition = |k: usize, rng: &mut StreamRng, random: bool| {
                let mut shards = vec![ValueHistogram::new(); k];
                for (i, &x) in samples.iter().enumerate() {
                    let s = if random {
                        rng.below(k as u64) as usize
                    } else {
                        i % k
                    };
                    shards[s].record(x);
                }
                let mut acc = HistogramShardAcc::new();
                for h in &shards {
                    acc.add(h);
                }
                acc.finish()
            };
            let two = partition(2, &mut rng, false);
            let seven = partition(7, &mut rng, true);
            assert_eq!(two, seven, "case {case}: partition must not matter");

            // Exact fields agree with the single recorder bit for bit…
            assert_eq!(two.count, single_snap.count, "case {case}");
            assert_eq!(two.min, single_snap.min, "case {case}");
            assert_eq!(two.max, single_snap.max, "case {case}");
            assert_eq!(two.buckets, single_snap.buckets, "case {case}");
            for (a, b) in [
                (two.p50, single_snap.p50),
                (two.p90, single_snap.p90),
                (two.p95, single_snap.p95),
                (two.p99, single_snap.p99),
            ] {
                assert_eq!(a, b, "case {case}: quantiles are bucket-exact");
            }
            // …and the bucket-derived moments track the exact ones within
            // the advertised relative error.
            let tol = 3.0 * RELATIVE_ERROR * single_snap.max.abs().max(single_snap.min.abs());
            assert!(
                (two.mean - single_snap.mean).abs() <= tol.max(1e-9),
                "case {case}: mean {} vs {}",
                two.mean,
                single_snap.mean
            );
        }
    }
}
