//! Causal tracing: per-session event trees over the virtual clock.
//!
//! A [`Tracer`] partitions everything the instrumented pipeline emits into
//! *traces* — one per negotiation session, keyed by a caller-chosen
//! [`TraceId`] (the broker uses the session index). Drivers bracket each
//! slice of per-session work with [`Tracer::resume`] / [`Tracer::suspend`];
//! in between, every [`Span`](crate::Span) opened through the owning
//! [`Recorder`](crate::Recorder) and every
//! [`Recorder::trace_point`](crate::Recorder::trace_point) lands in that
//! session's trace, parented by the ambient span stack. This is how one
//! `TraceId` propagates from broker dispatch through `Session::submit`,
//! the negotiation stages, and down into cmfs admission verdicts and
//! netsim reservation attempts without threading a context argument
//! through every call.
//!
//! Mechanics, chosen for the two execution modes the broker has:
//!
//! - Events are buffered on a **per-thread** active-trace buffer (a
//!   thread-local `Vec`), so emission takes no lock. The shared per-trace
//!   store is only touched at `resume`/`suspend` boundaries — once per
//!   broker event, not once per trace event. The same protocol works when
//!   `Broker::drive` shards prepare work across OS threads, because a
//!   session's trace is owned by exactly one thread at a time.
//! - Sequence numbers are assigned per trace at flush time, so a trace's
//!   events totally order even though sessions interleave. A deterministic
//!   run (same seed, specs, faults) therefore serializes to a
//!   byte-identical JSONL log.
//! - Every flushed event also feeds a bounded ring buffer — the **flight
//!   recorder** — which [`Tracer::trigger_flight_dump`] snapshots (and
//!   prints to stderr) when an invariant breaks, e.g. the broker's
//!   capacity audit detecting a leaked reservation. The dump holds the
//!   last N events before the failure, which is usually exactly the
//!   window that explains it.
//!
//! Events emitted while *no* trace is resumed on the current thread are
//! dropped: every recorded event belongs to exactly one session tree,
//! which is what makes [`crate::analyze`]'s reconstruction total.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use nod_simcore::json::{from_str, to_string, FromJson, Json, JsonError, ToJson};
use nod_simcore::sync::Mutex;

/// Identifies one trace (the broker uses the session index).
pub type TraceId = u64;

/// Default flight-recorder capacity, in events.
pub const FLIGHT_CAPACITY: usize = 256;

/// One causal trace event, serializable as a single JSON line.
///
/// `kind` is `span_start`, `span_end` or `point`. For span events `span`
/// and `parent` are the span ids (`parent` 0 = trace root); `span_end`
/// carries the elapsed milliseconds in `value` and `detail = "dropped"`
/// when the span was dropped without an explicit end. For points, `span`
/// is the enclosing span and `name` is a flattened metric-style key (e.g.
/// `cmfs.admission{result=disk,server=s0}`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: u64,
    /// Position within the trace (contiguous from 0).
    pub seq: u64,
    /// Timestamp in microseconds (virtual time under a simulation driver).
    pub t_us: u64,
    /// `span_start`, `span_end` or `point`. `Cow` so the emission hot
    /// path writes a static literal without allocating.
    pub kind: Cow<'static, str>,
    /// Span name or point key. Span names are static literals — only
    /// point keys (flattened metric-style) are owned.
    pub name: Cow<'static, str>,
    /// Span id (for points: the enclosing span).
    pub span: u64,
    /// Parent span id, 0 = root (span events only).
    pub parent: u64,
    /// Annotation; `"dropped"` on a `span_end` reached via drop.
    pub detail: Cow<'static, str>,
    /// Elapsed milliseconds for `span_end`, free value for points.
    pub value: Option<f64>,
}

// Hand-written (rather than `json_struct!`) because the `Cow` fields fall
// outside the macro; the encoding is the identical field-keyed object.
impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("trace".to_string(), self.trace.to_json()),
            ("seq".to_string(), self.seq.to_json()),
            ("t_us".to_string(), self.t_us.to_json()),
            (
                "kind".to_string(),
                Json::Str(self.kind.clone().into_owned()),
            ),
            (
                "name".to_string(),
                Json::Str(self.name.clone().into_owned()),
            ),
            ("span".to_string(), self.span.to_json()),
            ("parent".to_string(), self.parent.to_json()),
            (
                "detail".to_string(),
                Json::Str(self.detail.clone().into_owned()),
            ),
            ("value".to_string(), self.value.to_json()),
        ])
    }
}

impl FromJson for TraceEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
            T::from_json(v.field(name)?)
                .map_err(|e| JsonError(format!("TraceEvent.{name}: {}", e.0)))
        }
        Ok(TraceEvent {
            trace: field(v, "trace")?,
            seq: field(v, "seq")?,
            t_us: field(v, "t_us")?,
            kind: Cow::Owned(field::<String>(v, "kind")?),
            name: Cow::Owned(field::<String>(v, "name")?),
            span: field(v, "span")?,
            parent: field(v, "parent")?,
            detail: Cow::Owned(field::<String>(v, "detail")?),
            value: field(v, "value")?,
        })
    }
}

impl TraceEvent {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        to_string(self)
    }

    /// Parse one JSON line.
    pub fn from_json_line(line: &str) -> Result<Self, JsonError> {
        from_str(line)
    }
}

/// What the flight recorder held when an invariant broke.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Why the dump was triggered (e.g. `leaked_reservation_audit`).
    pub reason: String,
    /// The last events before the trigger, oldest first.
    pub events: Vec<TraceEvent>,
}

impl FlightDump {
    /// The dump as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Per-trace state while its session is suspended.
#[derive(Debug, Default)]
struct TraceState {
    events: Vec<TraceEvent>,
    next_seq: u64,
    /// Seqs handed out before the last [`Tracer::drain`]; event `seq`
    /// lives at `events[seq - drained]`.
    drained: u64,
    /// Ambient span stack, saved across suspensions.
    stack: Vec<u64>,
}

/// The flight ring holds `(trace, seq)` keys, not events: recording stays
/// allocation- and copy-free, and the dump (cold path) resolves the keys
/// against the per-trace stores.
struct Flight {
    /// Contiguous `(trace, seq range)` segments, oldest first. Storing
    /// ranges instead of individual seqs makes the hot-path feed O(1)
    /// per flush; only the dump (cold path) expands them.
    ring: VecDeque<(u64, std::ops::Range<u64>)>,
    /// Total events across all segments, kept `<= capacity`.
    len: usize,
    capacity: usize,
    dump: Option<FlightDump>,
}

impl Flight {
    /// Record that `seqs` of `trace` were flushed, trimming the oldest
    /// entries past capacity.
    fn push_range(&mut self, trace: u64, seqs: std::ops::Range<u64>) {
        let n = (seqs.end - seqs.start) as usize;
        if n == 0 {
            return;
        }
        match self.ring.back_mut() {
            Some((t, r)) if *t == trace && r.end == seqs.start => r.end = seqs.end,
            _ => self.ring.push_back((trace, seqs)),
        }
        self.len += n;
        while self.len > self.capacity {
            let excess = (self.len - self.capacity) as u64;
            let front = self.ring.front_mut().expect("len > 0 implies a segment");
            if front.1.end - front.1.start <= excess {
                self.len -= (front.1.end - front.1.start) as usize;
                self.ring.pop_front();
            } else {
                front.1.start += excess;
                self.len -= excess as usize;
            }
        }
    }
}

/// Which finished sessions keep their traces under tail-based sampling.
///
/// The decision is made per session *at session end* (tail-based: the
/// whole trace was buffered, so retained sessions are complete), and it is
/// deterministic — a function of the session's outcome, duration, trace id
/// and the policy seed, never of thread scheduling:
///
/// - every **failed** session is retained (100% of the interesting tail);
/// - the **`top_k` slowest** sessions by duration are retained, with ties
///   broken by trace id, so the retained set is the k largest elements of
///   a total order — independent of finish order;
/// - a seeded **hash sample** keeps ~1/`sample_every` of the remainder as
///   an unbiased baseline.
///
/// Everything else is dropped at session end, making trace memory
/// O(retained + in-flight), not O(total sessions). In-flight buffering is
/// bounded too: a trace stops accepting events past
/// `max_events_per_trace` (the overflow is counted, not kept).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionPolicy {
    /// How many of the slowest sessions to retain.
    pub top_k: usize,
    /// Keep ~1 in `sample_every` sessions as a baseline (0 disables).
    pub sample_every: u64,
    /// Seed for the baseline hash sample.
    pub seed: u64,
    /// Per-trace buffered-event cap while a session is in flight.
    pub max_events_per_trace: usize,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            top_k: 16,
            sample_every: 64,
            seed: 0,
            max_events_per_trace: 4_096,
        }
    }
}

/// Running totals of the tail sampler's decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetentionStats {
    /// Sessions whose end was reported via [`Tracer::finish_session`].
    pub finished: u64,
    /// Sessions retained because they failed.
    pub kept_failed: u64,
    /// Sessions retained by the baseline hash sample (and not failed).
    pub kept_head: u64,
    /// Sessions currently retained as top-k slowest (≤ `top_k`).
    pub kept_slow: usize,
    /// Finished sessions whose traces were dropped.
    pub dropped: u64,
    /// Events discarded by the in-flight per-trace buffer cap.
    pub truncated_events: u64,
}

nod_simcore::json_struct!(RetentionStats {
    finished,
    kept_failed,
    kept_head,
    kept_slow,
    dropped,
    truncated_events,
});

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tail-sampling state: which traces are pinned (failed / baseline), the
/// current top-k slow set, and the decision totals.
#[derive(Default)]
struct SamplingState {
    /// Traces retained unconditionally (failed or baseline-sampled).
    pinned: std::collections::BTreeSet<u64>,
    /// `(duration_us, trace)` of the current top-k slowest — a total
    /// order, so the retained set is finish-order-independent.
    slow: std::collections::BTreeSet<(u64, u64)>,
    stats: RetentionStats,
}

struct Sampling {
    policy: RetentionPolicy,
    state: Mutex<SamplingState>,
}

struct TracerShared {
    traces: Mutex<BTreeMap<u64, TraceState>>,
    flight: Mutex<Flight>,
    /// Tail-based retention; `None` (the default) retains everything.
    sampling: Option<Sampling>,
}

/// The active trace of the current thread: events buffer here lock-free
/// until the next `suspend`.
struct ActiveTrace {
    /// Identity of the owning tracer (`Arc` pointer), so two tracers in
    /// one process never cross-contaminate.
    tracer: usize,
    trace: u64,
    stack: Vec<u64>,
    buf: Vec<TraceEvent>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    /// Emptied buffer kept from the last suspend so steady-state
    /// resume/suspend cycles do not allocate.
    static SPARE_BUF: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
}

/// A shared handle to the per-session trace store and flight recorder.
///
/// Attach one to a [`Recorder`](crate::Recorder) with
/// [`Recorder::set_tracer`](crate::Recorder::set_tracer); drivers then
/// call [`Tracer::resume`]/[`Tracer::suspend`] around per-session work and
/// [`Tracer::drain`] (or [`Tracer::to_jsonl`]) at the end of the run.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default flight-recorder capacity.
    pub fn new() -> Self {
        Tracer::with_flight_capacity(FLIGHT_CAPACITY)
    }

    /// A tracer whose flight recorder keeps the last `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Tracer::build(capacity, None)
    }

    /// A tracer with tail-based sampling: every session is traced into a
    /// bounded buffer, and [`Tracer::finish_session`] decides per session
    /// whether the trace is retained or dropped (see [`RetentionPolicy`]).
    pub fn with_sampling(policy: RetentionPolicy) -> Self {
        Tracer::build(FLIGHT_CAPACITY, Some(policy))
    }

    fn build(flight_capacity: usize, sampling: Option<RetentionPolicy>) -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                traces: Mutex::new(BTreeMap::new()),
                flight: Mutex::new(Flight {
                    ring: VecDeque::new(),
                    len: 0,
                    capacity: flight_capacity.max(1),
                    dump: None,
                }),
                sampling: sampling.map(|policy| Sampling {
                    policy,
                    state: Mutex::new(SamplingState::default()),
                }),
            }),
        }
    }

    /// The tail-sampling policy, when this tracer samples.
    pub fn sampling_policy(&self) -> Option<RetentionPolicy> {
        self.shared.sampling.as_ref().map(|s| s.policy)
    }

    /// The tail sampler's decision totals (`None` without sampling).
    pub fn retention_stats(&self) -> Option<RetentionStats> {
        let s = self.shared.sampling.as_ref()?;
        let state = s.state.lock();
        let mut stats = state.stats;
        stats.kept_slow = state.slow.len();
        Some(stats)
    }

    fn id(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// Make `trace` the active trace of the current thread, restoring its
    /// span stack. Any previously active trace is suspended first.
    pub fn resume(&self, trace: TraceId) {
        self.suspend();
        let stack = std::mem::take(&mut self.shared.traces.lock().entry(trace).or_default().stack);
        let buf = SPARE_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()));
        ACTIVE.with(|a| {
            *a.borrow_mut() = Some(ActiveTrace {
                tracer: self.id(),
                trace,
                stack,
                buf,
            });
        });
    }

    /// Deactivate the current thread's trace (if it belongs to this
    /// tracer): flush its buffered events to the shared store — assigning
    /// sequence numbers and feeding the flight recorder — and save its
    /// span stack. No-op when nothing is active.
    pub fn suspend(&self) {
        let active = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            match &*slot {
                Some(at) if at.tracer == self.id() => slot.take(),
                _ => None,
            }
        });
        let Some(active) = active else { return };
        let mut buf = active.buf;
        {
            let mut traces = self.shared.traces.lock();
            let st = traces.entry(active.trace).or_default();
            st.stack = active.stack;
            // Under tail sampling the in-flight buffer is bounded: events
            // past the per-trace cap are counted and discarded (seqs stay
            // contiguous because they are assigned only to kept events).
            if let Some(s) = &self.shared.sampling {
                let allowed = s
                    .policy
                    .max_events_per_trace
                    .saturating_sub(st.events.len());
                if buf.len() > allowed {
                    let overflow = (buf.len() - allowed) as u64;
                    buf.truncate(allowed);
                    s.state.lock().stats.truncated_events += overflow;
                }
            }
            if !buf.is_empty() {
                let trace = active.trace;
                let first_seq = st.next_seq;
                for (i, ev) in buf.iter_mut().enumerate() {
                    ev.seq = first_seq + i as u64;
                }
                st.next_seq = first_seq + buf.len() as u64;
                st.events.append(&mut buf);
                self.shared
                    .flight
                    .lock()
                    .push_range(trace, first_seq..st.next_seq);
            }
        }
        // `append` left the buffer empty with its capacity intact — keep
        // it for the next resume on this thread.
        SPARE_BUF.with(|b| {
            let mut spare = b.borrow_mut();
            if buf.capacity() > spare.capacity() {
                *spare = buf;
            }
        });
    }

    /// Report a session's end to the tail sampler: `trace` is retained or
    /// dropped per the [`RetentionPolicy`] (failed sessions always kept,
    /// top-k slowest by `duration_us` kept, baseline hash sample kept,
    /// rest dropped now — possibly evicting a previously slow trace that
    /// `duration_us` just outranked). A no-op without sampling, so default
    /// tracers retain every event exactly as before. Flushes the calling
    /// thread's buffer first, so the decision covers the whole session.
    pub fn finish_session(&self, trace: TraceId, failed: bool, duration_us: u64) {
        let Some(s) = &self.shared.sampling else {
            return;
        };
        self.suspend();
        let mut traces = self.shared.traces.lock();
        let mut state = s.state.lock();
        state.stats.finished += 1;
        let head = s.policy.sample_every > 0
            && splitmix64(trace ^ s.policy.seed).is_multiple_of(s.policy.sample_every);
        if failed {
            state.stats.kept_failed += 1;
        } else if head {
            state.stats.kept_head += 1;
        }
        if failed || head {
            state.pinned.insert(trace);
        }
        // Top-k candidacy: insert, then evict the smallest past k. The set
        // is ordered by `(duration, trace)`, so the survivors are the k
        // largest of a total order regardless of finish order.
        let evicted = if s.policy.top_k > 0 {
            state.slow.insert((duration_us, trace));
            if state.slow.len() > s.policy.top_k {
                state.slow.pop_first()
            } else {
                None
            }
        } else {
            Some((duration_us, trace))
        };
        if let Some((_, t)) = evicted {
            if !state.pinned.contains(&t) {
                state.stats.dropped += 1;
                traces.remove(&t);
            }
        }
    }

    /// The trace active on the current thread, if it belongs to this
    /// tracer.
    pub fn active(&self) -> Option<TraceId> {
        ACTIVE.with(|a| match &*a.borrow() {
            Some(at) if at.tracer == self.id() => Some(at.trace),
            _ => None,
        })
    }

    /// The innermost open span of the active trace (0 = none).
    pub fn current_span(&self) -> u64 {
        ACTIVE.with(|a| match &*a.borrow() {
            Some(at) if at.tracer == self.id() => at.stack.last().copied().unwrap_or(0),
            _ => 0,
        })
    }

    /// Record a span start into the active trace. Returns the trace id
    /// when recorded (the span remembers it so its end lands in the same
    /// trace). A zero `parent` is resolved against the ambient stack.
    pub(crate) fn span_start(
        &self,
        t_us: u64,
        name: &'static str,
        span: u64,
        parent: u64,
    ) -> Option<TraceId> {
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let at = match &mut *slot {
                Some(at) if at.tracer == self.id() => at,
                _ => return None,
            };
            let parent = if parent != 0 {
                parent
            } else {
                at.stack.last().copied().unwrap_or(0)
            };
            at.buf.push(TraceEvent {
                trace: at.trace,
                seq: 0,
                t_us,
                kind: Cow::Borrowed("span_start"),
                name: Cow::Borrowed(name),
                span,
                parent,
                detail: Cow::Borrowed(""),
                value: None,
            });
            at.stack.push(span);
            Some(at.trace)
        })
    }

    /// Record a span end. When the span's trace is not the one active on
    /// this thread (a handle that outlived its resume window), the event
    /// is appended to the owning trace directly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn span_end(
        &self,
        t_us: u64,
        name: &'static str,
        span: u64,
        parent: u64,
        ms: f64,
        dropped: bool,
        trace: TraceId,
    ) {
        let make = || TraceEvent {
            trace,
            seq: 0,
            t_us,
            kind: Cow::Borrowed("span_end"),
            name: Cow::Borrowed(name),
            span,
            parent,
            detail: if dropped {
                Cow::Borrowed("dropped")
            } else {
                Cow::Borrowed("")
            },
            value: Some(ms),
        };
        let buffered = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            match &mut *slot {
                Some(at) if at.tracer == self.id() && at.trace == trace => {
                    at.stack.retain(|&s| s != span);
                    at.buf.push(make());
                    true
                }
                _ => false,
            }
        });
        if buffered {
            return;
        }
        // Out-of-window end: append straight to the owning trace.
        let mut traces = self.shared.traces.lock();
        let st = traces.entry(trace).or_default();
        st.stack.retain(|&s| s != span);
        let mut ev = make();
        ev.seq = st.next_seq;
        st.next_seq += 1;
        self.shared
            .flight
            .lock()
            .push_range(ev.trace, ev.seq..ev.seq + 1);
        st.events.push(ev);
    }

    /// Record a point under the innermost open span of the active trace.
    /// Dropped when no trace is active or no span is open (a point must
    /// belong to a tree). The name is built lazily so inactive threads pay
    /// one thread-local check and nothing else.
    pub(crate) fn point<N: Into<Cow<'static, str>>>(
        &self,
        t_us: u64,
        name: impl FnOnce() -> N,
        value: Option<f64>,
    ) {
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let at = match &mut *slot {
                Some(at) if at.tracer == self.id() => at,
                _ => return,
            };
            let Some(&enclosing) = at.stack.last() else {
                return;
            };
            at.buf.push(TraceEvent {
                trace: at.trace,
                seq: 0,
                t_us,
                kind: Cow::Borrowed("point"),
                name: name().into(),
                span: enclosing,
                parent: 0,
                detail: Cow::Borrowed(""),
                value,
            });
        });
    }

    /// Snapshot the flight-recorder ring (the last N flushed events) under
    /// `reason`, keep it for [`Tracer::take_flight_dump`], and print it to
    /// stderr — callers trigger this right *before* a `debug_assert` so
    /// the evidence survives the panic. The current thread's active buffer
    /// is flushed first so the freshest events are included. Only the
    /// first trigger is kept (the first failure is the informative one).
    pub fn trigger_flight_dump(&self, reason: &str) {
        self.suspend();
        let traces = self.shared.traces.lock();
        let mut flight = self.shared.flight.lock();
        if flight.dump.is_some() {
            return;
        }
        let dump = FlightDump {
            reason: reason.to_string(),
            events: flight
                .ring
                .iter()
                .flat_map(|(trace, seqs)| seqs.clone().map(move |seq| (*trace, seq)))
                .filter_map(|(trace, seq)| {
                    let st = traces.get(&trace)?;
                    st.events
                        .get(usize::try_from(seq.checked_sub(st.drained)?).ok()?)
                })
                .cloned()
                .collect(),
        };
        eprintln!(
            "nod-obs flight recorder: dumping last {} trace events (reason: {reason})",
            dump.events.len()
        );
        for ev in &dump.events {
            eprintln!("{}", ev.to_json_line());
        }
        flight.dump = Some(dump);
    }

    /// Take the flight dump captured by the first
    /// [`Tracer::trigger_flight_dump`], if any.
    pub fn take_flight_dump(&self) -> Option<FlightDump> {
        self.shared.flight.lock().dump.take()
    }

    /// All recorded events, ordered by `(trace, seq)` — the canonical log
    /// order, byte-stable for deterministic runs. Flushes the current
    /// thread's active trace first; other threads must have suspended.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.suspend();
        let mut traces = self.shared.traces.lock();
        let mut out = Vec::new();
        for st in traces.values_mut() {
            st.drained = st.next_seq;
            out.append(&mut st.events);
        }
        out
    }

    /// [`Tracer::drain`] serialized as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.drain() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Write [`Tracer::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, name: &str) -> TraceEvent {
        TraceEvent {
            trace,
            seq: 0,
            t_us: 7,
            kind: "point".into(),
            name: name.to_string().into(),
            span: 1,
            parent: 0,
            detail: "".into(),
            value: None,
        }
    }

    #[test]
    fn event_json_round_trip() {
        let e = TraceEvent {
            trace: 3,
            seq: 9,
            t_us: 1_000,
            kind: "span_end".into(),
            name: "attempt".into(),
            span: 12,
            parent: 4,
            detail: "dropped".into(),
            value: Some(2.5),
        };
        let line = e.to_json_line();
        assert_eq!(TraceEvent::from_json_line(&line).unwrap(), e);
    }

    #[test]
    fn resume_suspend_partitions_events_and_numbers_them() {
        let t = Tracer::new();
        t.resume(0);
        assert_eq!(t.active(), Some(0));
        t.span_start(1, "session", 10, 0);
        t.point(2, || "a".to_string(), None);
        t.resume(1); // implicit suspend of 0
        t.span_start(3, "session", 11, 0);
        t.resume(0); // back to 0: stack restored
        assert_eq!(t.current_span(), 10);
        t.span_end(4, "session", 10, 0, 0.003, false, 0);
        t.suspend();
        t.resume(1);
        t.span_end(5, "session", 11, 0, 0.002, false, 1);
        let events = t.drain();
        let t0: Vec<&TraceEvent> = events.iter().filter(|e| e.trace == 0).collect();
        let t1: Vec<&TraceEvent> = events.iter().filter(|e| e.trace == 1).collect();
        assert_eq!(t0.len(), 3);
        assert_eq!(t1.len(), 2);
        assert_eq!(
            t0.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "per-trace seqs are contiguous"
        );
        assert_eq!(t1.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn events_without_active_trace_are_dropped() {
        let t = Tracer::new();
        t.point(1, || "orphan".to_string(), None);
        assert!(t.span_start(1, "s", 1, 0).is_none());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn points_need_an_enclosing_span() {
        let t = Tracer::new();
        t.resume(0);
        t.point(1, || "orphan".to_string(), None);
        t.span_start(2, "root", 1, 0);
        t.point(3, || "kept".to_string(), None);
        t.span_end(4, "root", 1, 0, 0.002, false, 0);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].name, "kept");
        assert_eq!(events[1].span, 1);
    }

    #[test]
    fn flight_recorder_keeps_last_n_and_dumps_once() {
        let t = Tracer::with_flight_capacity(4);
        t.resume(0);
        t.span_start(0, "root", 1, 0);
        for i in 0..10 {
            t.point(i, || format!("p{i}"), None);
        }
        t.trigger_flight_dump("leaked_reservation_audit");
        t.trigger_flight_dump("second trigger must not overwrite");
        let dump = t.take_flight_dump().expect("dump captured");
        assert_eq!(dump.reason, "leaked_reservation_audit");
        assert_eq!(dump.events.len(), 4);
        assert_eq!(dump.events.last().unwrap().name, "p9");
        assert!(dump.to_jsonl().lines().count() == 4);
        assert!(t.take_flight_dump().is_none(), "take drains the dump");
        let _ = ev(0, "unused-helper");
    }

    /// Run one synthetic session: a root span with `points` points, then
    /// report its end to the sampler.
    fn session(t: &Tracer, trace: u64, points: u64, failed: bool, duration_us: u64) {
        t.resume(trace);
        t.span_start(0, "session", trace * 100 + 1, 0);
        for i in 0..points {
            t.point(i, || format!("p{i}"), None);
        }
        t.span_end(
            duration_us,
            "session",
            trace * 100 + 1,
            0,
            0.0,
            false,
            trace,
        );
        t.suspend();
        t.finish_session(trace, failed, duration_us);
    }

    #[test]
    fn tail_sampler_keeps_failures_topk_and_baseline_only() {
        let policy = RetentionPolicy {
            top_k: 3,
            sample_every: 10,
            seed: 42,
            max_events_per_trace: 4_096,
        };
        let t = Tracer::with_sampling(policy);
        let failed: Vec<u64> = vec![5, 17];
        for i in 0..50u64 {
            // Duration grows with the trace id, so the top-3 slowest are
            // traces 47, 48, 49.
            session(&t, i, 2, failed.contains(&i), 1_000 + i * 10);
        }
        let stats = t.retention_stats().unwrap();
        assert_eq!(stats.finished, 50);
        assert_eq!(stats.kept_failed, 2, "every failed session retained");
        assert_eq!(stats.kept_slow, 3, "exactly top_k slow sessions");
        let events = t.drain();
        let mut retained: Vec<u64> = events.iter().map(|e| e.trace).collect();
        retained.sort_unstable();
        retained.dedup();
        for f in &failed {
            assert!(retained.contains(f), "failed trace {f} must survive");
        }
        for slow in [47, 48, 49] {
            assert!(retained.contains(&slow), "slow trace {slow} must survive");
        }
        // Retention is bounded: failures + top_k + baseline sample.
        let baseline = stats.kept_head as usize;
        assert!(
            retained.len() <= failed.len() + 3 + baseline,
            "retained {retained:?}"
        );
        assert_eq!(
            stats.dropped as usize + retained.len(),
            50,
            "every session either retained or counted dropped"
        );
    }

    #[test]
    fn tail_sampler_retained_set_is_finish_order_independent() {
        let policy = RetentionPolicy {
            top_k: 4,
            sample_every: 8,
            seed: 7,
            max_events_per_trace: 4_096,
        };
        let run = |order: &[u64]| -> Vec<String> {
            let t = Tracer::with_sampling(policy);
            for &i in order {
                session(&t, i, 1, i % 9 == 0, 500 + (i * 37) % 400);
            }
            t.drain().iter().map(|e| e.to_json_line()).collect()
        };
        let fwd: Vec<u64> = (0..40).collect();
        let rev: Vec<u64> = (0..40).rev().collect();
        let mut a = run(&fwd);
        let mut b = run(&rev);
        // Same retained traces and same per-trace bytes; drain order is by
        // trace id, so after sorting lines the logs are identical.
        a.sort();
        b.sort();
        assert_eq!(a, b, "retention must not depend on finish order");
    }

    #[test]
    fn in_flight_buffer_is_capped_per_trace() {
        let policy = RetentionPolicy {
            top_k: 1,
            sample_every: 0,
            seed: 0,
            max_events_per_trace: 10,
        };
        let t = Tracer::with_sampling(policy);
        session(&t, 0, 100, false, 1_000);
        let stats = t.retention_stats().unwrap();
        assert!(stats.truncated_events >= 90, "{stats:?}");
        let events = t.drain();
        assert_eq!(events.len(), 10, "cap bounds the buffered trace");
        // Seqs stay contiguous despite the truncation.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn default_tracer_retains_everything_and_ignores_finish() {
        let t = Tracer::new();
        assert!(t.sampling_policy().is_none());
        assert!(t.retention_stats().is_none());
        session(&t, 0, 5, false, 1);
        session(&t, 1, 5, false, 2);
        assert_eq!(t.drain().len(), 14, "finish_session must be a no-op");
    }

    #[test]
    fn two_tracers_do_not_cross_contaminate() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.resume(0);
        a.span_start(0, "root", 1, 0);
        b.point(1, || "lost".to_string(), None);
        assert_eq!(b.active(), None);
        a.point(1, || "kept".to_string(), None);
        assert_eq!(a.drain().len(), 2);
        assert!(b.drain().is_empty());
    }
}
