//! Point-in-time export of the recorder state.

use std::collections::BTreeMap;

use nod_simcore::json::{from_str, to_string_pretty, JsonError};
use nod_simcore::json_struct;

use crate::hist::{LogBuckets, LogHistogram};

/// Summary of one value/latency histogram.
///
/// Moments (`count`, `mean`, `m2`, `min`, `max`) are exact over the full
/// sample stream; percentiles come from the log-bucketed sketch
/// (`buckets`) and carry at most [`crate::hist::RELATIVE_ERROR`] relative
/// error — at any stream length, unlike the sampled reservoir this
/// replaced. Because the buckets travel with the snapshot, two snapshots
/// merge *exactly*: merged percentiles equal those of the union stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Welford second central moment (Σ(x−mean)²); kept so snapshots merge
    /// exactly.
    pub m2: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// The sparse log buckets the percentiles derive from.
    pub buckets: LogBuckets,
}

json_struct!(HistogramSnapshot {
    count,
    mean,
    m2,
    min,
    max,
    p50,
    p90,
    p95,
    p99,
    buckets
});

impl HistogramSnapshot {
    /// Sample standard deviation (unbiased).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Merge `other` into `self`: moments by Chan's parallel update,
    /// buckets by exact addition, percentiles recomputed from the merged
    /// buckets — so the result is what a single snapshot over the union
    /// stream would report.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut log = LogHistogram::from_buckets(&self.buckets);
        log.merge(&LogHistogram::from_buckets(&other.buckets));
        self.p50 = log.quantile(0.50).clamp(self.min, self.max);
        self.p90 = log.quantile(0.90).clamp(self.min, self.max);
        self.p95 = log.quantile(0.95).clamp(self.min, self.max);
        self.p99 = log.quantile(0.99).clamp(self.min, self.max);
        self.buckets = log.to_buckets();
    }
}

/// The full state of a [`crate::Recorder`] at one instant, as plain data.
///
/// Snapshots serialize to JSON ([`Snapshot::to_json_pretty`]) so experiment
/// runs can persist their metrics next to their tables, and two snapshots
/// can be diffed ([`Snapshot::counter_deltas`]) or merged
/// ([`Snapshot::merge`], e.g. across parallel shards).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone counters keyed by flattened metric name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

json_struct!(Snapshot {
    counters,
    gauges,
    histograms
});

impl Snapshot {
    /// Value of a counter, 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters whose key starts with `prefix` — e.g.
    /// `negotiation.outcome{` sums over every status label.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Serialize with indentation.
    pub fn to_json_pretty(&self) -> String {
        to_string_pretty(self)
    }

    /// Parse a snapshot serialized by [`Snapshot::to_json_pretty`].
    pub fn from_json_str(s: &str) -> Result<Self, JsonError> {
        from_str(s)
    }

    /// Merge `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge by [`HistogramSnapshot::merge`].
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// Per-counter difference `self - other` (signed), for run-to-run
    /// comparisons. Keys present in either side appear in the result.
    ///
    /// Computed in `i128` so the difference is exact for the full `u64`
    /// counter range — the earlier `as i64` casts silently wrapped once a
    /// counter crossed `i64::MAX`.
    pub fn counter_deltas(&self, other: &Snapshot) -> BTreeMap<String, i128> {
        let mut keys: Vec<&String> = self.counters.keys().collect();
        keys.extend(other.counters.keys());
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .map(|k| {
                let d = self.counter(k) as i128 - other.counter(k) as i128;
                (k.clone(), d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use nod_simcore::{Json, StreamRng};

    #[test]
    fn snapshot_json_round_trip() {
        let rec = Recorder::new();
        rec.counter_with("negotiation.outcome", &[("status", "SUCCEEDED")], 4);
        rec.gauge("load", 0.75);
        for x in [1.0, 2.0, 3.0] {
            rec.observe("span.enumerate.ms", x);
        }
        let snap = rec.snapshot();
        let text = snap.to_json_pretty();
        let back = Snapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_json_shape() {
        let rec = Recorder::new();
        rec.counter("c", 1);
        rec.observe("h", 2.0);
        let json: Json = nod_simcore::json::parse(&rec.snapshot().to_json_pretty()).unwrap();
        assert_eq!(
            json.field("counters").unwrap().field("c").unwrap(),
            &Json::Num(nod_simcore::json::Num::U(1))
        );
        let h = json.field("histograms").unwrap().field("h").unwrap();
        for key in [
            "count", "mean", "min", "max", "p50", "p90", "p95", "p99", "buckets",
        ] {
            assert!(h.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn counter_sum_over_labels() {
        let rec = Recorder::new();
        rec.counter_with("o", &[("status", "A")], 2);
        rec.counter_with("o", &[("status", "B")], 3);
        rec.counter("other", 9);
        assert_eq!(rec.snapshot().counter_sum("o{"), 5);
    }

    #[test]
    fn counter_deltas_signed() {
        let rec_a = Recorder::new();
        rec_a.counter("x", 5);
        rec_a.counter("only_a", 1);
        let rec_b = Recorder::new();
        rec_b.counter("x", 2);
        rec_b.counter("only_b", 4);
        let d = rec_a.snapshot().counter_deltas(&rec_b.snapshot());
        assert_eq!(d["x"], 3);
        assert_eq!(d["only_a"], 1);
        assert_eq!(d["only_b"], -4);
    }

    #[test]
    fn counter_deltas_exact_near_u64_max() {
        let rec_a = Recorder::new();
        rec_a.counter("huge", u64::MAX);
        let rec_b = Recorder::new();
        rec_b.counter("huge", 1);
        let a = rec_a.snapshot();
        let b = rec_b.snapshot();
        let d = a.counter_deltas(&b);
        assert_eq!(d["huge"], u64::MAX as i128 - 1, "no silent wrap");
        let d_rev = b.counter_deltas(&a);
        assert_eq!(d_rev["huge"], -(u64::MAX as i128 - 1));
        // The whole u64 range survives against an absent key too.
        let d_abs = a.counter_deltas(&Snapshot::default());
        assert_eq!(d_abs["huge"], u64::MAX as i128);
    }

    /// Randomized merge property: merging two snapshots matches recording
    /// the union of samples — counters and bucket quantiles exactly,
    /// histogram moments to float tolerance. Originally a proptest; now
    /// driven by seeded StreamRng.
    #[test]
    fn merge_equals_union() {
        for case in 0..64u64 {
            let mut rng = StreamRng::new(0xD1FF ^ case);
            let rec_a = Recorder::new();
            let rec_b = Recorder::new();
            let rec_union = Recorder::new();
            let names = ["lat", "sns", "slack"];
            for _ in 0..rng.range_u64(1, 200) {
                let name = names[rng.below(names.len() as u64) as usize];
                let to_a = rng.chance(0.5);
                let x = rng.range_f64(-100.0, 100.0);
                if rng.chance(0.3) {
                    let side = if to_a { &rec_a } else { &rec_b };
                    side.counter(name, 1);
                    rec_union.counter(name, 1);
                } else {
                    let side = if to_a { &rec_a } else { &rec_b };
                    side.observe(name, x);
                    rec_union.observe(name, x);
                }
            }
            let mut merged = rec_a.snapshot();
            merged.merge(&rec_b.snapshot());
            let union = rec_union.snapshot();
            assert_eq!(merged.counters, union.counters, "case {case}");
            assert_eq!(
                merged.histograms.keys().collect::<Vec<_>>(),
                union.histograms.keys().collect::<Vec<_>>(),
                "case {case}"
            );
            for (k, m) in &merged.histograms {
                let u = &union.histograms[k];
                assert_eq!(m.count, u.count, "case {case} {k}");
                assert!((m.mean - u.mean).abs() < 1e-9, "case {case} {k}");
                assert!((m.m2 - u.m2).abs() < 1e-6, "case {case} {k}");
                assert_eq!(m.min, u.min, "case {case} {k}");
                assert_eq!(m.max, u.max, "case {case} {k}");
                // The log buckets make the merge exact, not approximate:
                assert_eq!(m.buckets, u.buckets, "case {case} {k}");
                for (p_m, p_u) in [
                    (m.p50, u.p50),
                    (m.p90, u.p90),
                    (m.p95, u.p95),
                    (m.p99, u.p99),
                ] {
                    assert_eq!(p_m, p_u, "case {case} {k}");
                }
            }
        }
    }
}
