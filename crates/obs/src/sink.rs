//! Structured event sinks (JSON lines).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use nod_simcore::json::{from_str, to_string, JsonError};
use nod_simcore::json_struct;
use nod_simcore::sync::Mutex;

/// One observability event, serializable as a single JSON line.
///
/// `kind` is one of `counter`, `gauge`, `observe`, `span_start`,
/// `span_end`. `name` is the flattened metric key (labels inline, as
/// produced by [`crate::metric_key`]) or the span name. Span events carry
/// `span`/`parent` ids; `span_end` also carries the elapsed milliseconds
/// in `value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Timestamp in microseconds (sim or wall clock — see
    /// [`crate::Recorder::now_us`]).
    pub t_us: u64,
    /// Event kind.
    pub kind: String,
    /// Metric key or span name.
    pub name: String,
    /// Histogram/gauge value, or elapsed ms for `span_end`.
    pub value: Option<f64>,
    /// Counter increment.
    pub delta: Option<u64>,
    /// Span id for span events.
    pub span: Option<u64>,
    /// Parent span id (0 = root) for span events.
    pub parent: Option<u64>,
}

json_struct!(ObsEvent {
    t_us,
    kind,
    name,
    value,
    delta,
    span,
    parent
});

impl ObsEvent {
    pub(crate) fn counter(t_us: u64, name: String, delta: u64) -> Self {
        ObsEvent {
            t_us,
            kind: "counter".to_string(),
            name,
            value: None,
            delta: Some(delta),
            span: None,
            parent: None,
        }
    }

    pub(crate) fn gauge(t_us: u64, name: String, value: f64) -> Self {
        ObsEvent {
            t_us,
            kind: "gauge".to_string(),
            name,
            value: Some(value),
            delta: None,
            span: None,
            parent: None,
        }
    }

    pub(crate) fn observe(t_us: u64, name: String, value: f64) -> Self {
        ObsEvent {
            t_us,
            kind: "observe".to_string(),
            name,
            value: Some(value),
            delta: None,
            span: None,
            parent: None,
        }
    }

    pub(crate) fn span_start(t_us: u64, name: String, id: u64, parent: u64) -> Self {
        ObsEvent {
            t_us,
            kind: "span_start".to_string(),
            name,
            value: None,
            delta: None,
            span: Some(id),
            parent: Some(parent),
        }
    }

    pub(crate) fn span_end(t_us: u64, name: String, id: u64, parent: u64, ms: f64) -> Self {
        ObsEvent {
            t_us,
            kind: "span_end".to_string(),
            name,
            value: Some(ms),
            delta: None,
            span: Some(id),
            parent: Some(parent),
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        to_string(self)
    }

    /// Parse one JSON line.
    pub fn from_json_line(line: &str) -> Result<Self, JsonError> {
        from_str(line)
    }
}

/// A destination for observability events.
///
/// Implementations must be cheap and non-blocking in spirit: the recorder
/// calls `emit` while holding no internal lock, but from hot paths.
pub trait ObsSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, event: &ObsEvent);

    /// Flush buffered output (default no-op).
    fn flush(&self) {}
}

/// Collects events in memory; the test and integration workhorse.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<ObsEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of all events seen so far.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().clone()
    }

    /// Drain the collected events.
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl ObsSink for MemorySink {
    fn emit(&self, event: &ObsEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Writes one JSON line per event to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl ObsSink for StderrSink {
    fn emit(&self, event: &ObsEvent) {
        eprintln!("{}", event.to_json_line());
    }
}

/// Writes one JSON line per event to a file (buffered).
#[derive(Debug)]
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Create (truncate) `path` and write events to it, creating missing
    /// parent directories. Errors name the offending path.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!("creating parent of {}: {e}", path.display()),
                    )
                })?;
            }
        }
        let file = File::create(path).map_err(|e| {
            std::io::Error::new(e.kind(), format!("creating {}: {e}", path.display()))
        })?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl ObsSink for FileSink {
    fn emit(&self, event: &ObsEvent) {
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// Flush on drop — explicitly, not via `BufWriter`'s best-effort drop —
/// so a sink torn down by panic unwinding still lands its buffered lines
/// on disk (the panic-abort harness in `nod-bench` relies on this).
impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.writer.get_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_round_trip() {
        let events = vec![
            ObsEvent::counter(12, "a{k=v}".into(), 3),
            ObsEvent::observe(15, "lat".into(), 2.5),
            ObsEvent::span_start(20, "negotiate".into(), 1, 0),
            ObsEvent::span_end(40, "negotiate".into(), 1, 0, 0.02),
        ];
        for e in events {
            let line = e.to_json_line();
            assert_eq!(ObsEvent::from_json_line(&line).unwrap(), e, "{line}");
        }
    }

    #[test]
    fn memory_sink_collects_and_drains() {
        let sink = MemorySink::new();
        sink.emit(&ObsEvent::counter(0, "x".into(), 1));
        sink.emit(&ObsEvent::counter(1, "x".into(), 2));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join("nod_obs_file_sink_test.jsonl");
        let sink = FileSink::create(&path).unwrap();
        sink.emit(&ObsEvent::counter(0, "x".into(), 1));
        sink.emit(&ObsEvent::gauge(5, "g".into(), 1.5));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            ObsEvent::from_json_line(lines[1]).unwrap().name,
            "g".to_string()
        );
        let _ = std::fs::remove_file(&path);
    }
}
