//! Generic tail-based retention, shared with trace sampling.
//!
//! [`TailKeeper`] applies the exact retention decision of
//! [`Tracer::finish_session`] — keep 100% of failures, the top-k slowest
//! by a total `(duration, id)` order, and a seeded baseline hash sample —
//! to arbitrary per-session payloads (decision logs, today). Because the
//! decision is a pure function of `(policy, id, failed, duration)` and the
//! slow set is a total order, the retained set is **finish-order
//! independent**: the same sessions survive no matter how many workers
//! raced to produce them, which is what keeps `--explain-out` artifacts
//! byte-identical across worker counts.
//!
//! Memory is O(retained): non-retained payloads are dropped at the moment
//! their session finishes, not at drain time.
//!
//! [`Tracer::finish_session`]: crate::trace::Tracer::finish_session

use std::collections::{BTreeMap, BTreeSet};

use crate::trace::{splitmix64, RetentionPolicy, RetentionStats};

/// Tail-retains per-session payloads under a [`RetentionPolicy`].
#[derive(Debug)]
pub struct TailKeeper<T> {
    policy: RetentionPolicy,
    /// Retained payloads by session id (ordered, so [`TailKeeper::drain`]
    /// yields a deterministic sequence).
    items: BTreeMap<u64, T>,
    /// Sessions retained unconditionally (failed or baseline-sampled).
    pinned: BTreeSet<u64>,
    /// `(duration_us, id)` of the current top-k slowest.
    slow: BTreeSet<(u64, u64)>,
    stats: RetentionStats,
}

impl<T> TailKeeper<T> {
    /// An empty keeper under `policy`.
    pub fn new(policy: RetentionPolicy) -> Self {
        TailKeeper {
            policy,
            items: BTreeMap::new(),
            pinned: BTreeSet::new(),
            slow: BTreeSet::new(),
            stats: RetentionStats::default(),
        }
    }

    /// Report a finished session and its payload; the payload is retained
    /// or dropped now, per the policy. Mirrors
    /// [`Tracer::finish_session`](crate::trace::Tracer::finish_session)
    /// decision for decision, so a keeper fed the same `(id, failed,
    /// duration_us)` stream retains exactly the sessions the tracer does.
    pub fn finish(&mut self, id: u64, failed: bool, duration_us: u64, item: T) {
        self.finish_with(id, failed, duration_us, || item);
    }

    /// [`TailKeeper::finish`] with a lazily built payload: `make` runs
    /// only when the retention decision keeps the session, so on a fleet
    /// where most sessions are dropped the per-session cost is the
    /// decision itself, not payload construction.
    pub fn finish_with(
        &mut self,
        id: u64,
        failed: bool,
        duration_us: u64,
        make: impl FnOnce() -> T,
    ) {
        self.stats.finished += 1;
        let head = self.policy.sample_every > 0
            && splitmix64(id ^ self.policy.seed).is_multiple_of(self.policy.sample_every);
        if failed {
            self.stats.kept_failed += 1;
        } else if head {
            self.stats.kept_head += 1;
        }
        if failed || head {
            self.pinned.insert(id);
        }
        let evicted = if self.policy.top_k > 0 {
            self.slow.insert((duration_us, id));
            if self.slow.len() > self.policy.top_k {
                self.slow.pop_first()
            } else {
                None
            }
        } else {
            Some((duration_us, id))
        };
        // The session just reported survives iff it is pinned or still in
        // the slow set; only then is its payload built and stored.
        if self.pinned.contains(&id) || self.slow.contains(&(duration_us, id)) {
            self.items.insert(id, make());
        }
        if let Some((_, t)) = evicted {
            if !self.pinned.contains(&t) {
                self.stats.dropped += 1;
                self.items.remove(&t);
            }
        }
    }

    /// Retention totals so far (with `kept_slow` reflecting the current
    /// slow set, as [`Tracer::retention_stats`] reports it).
    ///
    /// [`Tracer::retention_stats`]: crate::trace::Tracer::retention_stats
    pub fn stats(&self) -> RetentionStats {
        let mut stats = self.stats;
        stats.kept_slow = self.slow.len();
        stats
    }

    /// Consume the keeper: retained payloads ascending by session id, plus
    /// the final totals.
    pub fn drain(self) -> (Vec<(u64, T)>, RetentionStats) {
        let mut stats = self.stats;
        stats.kept_slow = self.slow.len();
        (self.items.into_iter().collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(top_k: usize, sample_every: u64) -> RetentionPolicy {
        RetentionPolicy {
            top_k,
            sample_every,
            seed: 0,
            max_events_per_trace: 4_096,
        }
    }

    #[test]
    fn failures_always_survive() {
        let mut k = TailKeeper::new(policy(2, 0));
        for id in 0..100u64 {
            k.finish(id, id == 37, 100 - id, id);
        }
        let (items, stats) = k.drain();
        let ids: Vec<u64> = items.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&37), "failed session dropped: {ids:?}");
        // Top-2 slowest are the two smallest ids (duration = 100 - id).
        assert!(ids.contains(&0) && ids.contains(&1));
        assert_eq!(stats.finished, 100);
        assert_eq!(stats.kept_failed, 1);
        assert_eq!(stats.kept_slow, 2);
        assert_eq!(stats.dropped as usize, 100 - ids.len());
    }

    #[test]
    fn head_sample_matches_the_tracer_hash() {
        let every = 8u64;
        let mut k = TailKeeper::new(policy(0, every));
        for id in 0..512u64 {
            k.finish(id, false, 0, ());
        }
        let (items, stats) = k.drain();
        for &(id, _) in &items {
            assert!(splitmix64(id).is_multiple_of(every));
        }
        assert_eq!(stats.kept_head as usize, items.len());
        assert!(!items.is_empty());
    }

    #[test]
    fn retained_set_is_finish_order_independent() {
        let run = |ids: &[u64]| {
            let mut k = TailKeeper::new(policy(4, 16));
            for &id in ids {
                k.finish(id, id % 10 == 3, id * 7 % 101, id);
            }
            k.drain()
        };
        let forward: Vec<u64> = (0..200).collect();
        let mut shuffled = forward.clone();
        shuffled.reverse();
        shuffled.rotate_left(17);
        let (a, sa) = run(&forward);
        let (b, sb) = run(&shuffled);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn memory_stays_bounded_by_retained() {
        let mut k = TailKeeper::new(policy(4, 0));
        for id in 0..10_000u64 {
            k.finish(id, false, id, vec![0u8; 64]);
        }
        // Only the slow set should be resident mid-run.
        assert_eq!(k.items.len(), 4);
    }
}
