//! Release-on-failure auditing.
//!
//! The paper's commitment step is all-or-nothing: a refused offer must
//! leave no residue on any server or link it touched. The broker extends
//! that invariant across a whole run — after every admitted session has
//! departed, farm and network capacity must equal what a pristine world
//! holds. A [`CapacitySnapshot`] captures both sides; comparing the
//! before/after pair catches leaked reservations from *any* layer
//! (negotiation commit, broker bookkeeping, fault-window races).

use nod_cmfs::{FarmUsage, ServerFarm};
use nod_netsim::Network;

/// Committed capacity across the farm and the network at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CapacitySnapshot {
    /// Farm-side usage (streams, disk round time, interface bandwidth).
    pub farm: FarmUsage,
    /// Live network path reservations.
    pub net_reservations: usize,
    /// Total reserved link bandwidth, bps.
    pub net_reserved_bps: u64,
}

impl CapacitySnapshot {
    /// Capture current usage.
    pub fn capture(farm: &ServerFarm, network: &Network) -> Self {
        CapacitySnapshot {
            farm: farm.usage(),
            net_reservations: network.active_reservations(),
            net_reserved_bps: network.total_reserved_bps(),
        }
    }

    /// Resources held in `after` but not in `self` — the leak, if any.
    /// Saturating: a release *below* the baseline also shows up (as zero
    /// here, but `self != after` still holds).
    pub fn leaked_streams(&self, after: &CapacitySnapshot) -> usize {
        (after.farm.streams + after.net_reservations)
            .saturating_sub(self.farm.streams + self.net_reservations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_cmfs::{Guarantee, ServerConfig, StreamRequirement};
    use nod_mmdoc::{ServerId, VariantId};
    use nod_netsim::Topology;

    #[test]
    fn snapshot_sees_and_forgets_a_reservation() {
        let farm = ServerFarm::uniform(1, ServerConfig::era_default());
        let network = Network::new(Topology::dumbbell(1, 1, 25_000_000, 155_000_000));
        let before = CapacitySnapshot::capture(&farm, &network);
        assert_eq!(before, CapacitySnapshot::default());

        let id = farm
            .try_reserve(
                ServerId(0),
                StreamRequirement {
                    variant: VariantId(1),
                    max_bit_rate: 15_000 * 8 * 25,
                    avg_bit_rate: 6_000 * 8 * 25,
                    max_block_bytes: 15_000,
                    avg_block_bytes: 6_000,
                    blocks_per_second: 25,
                    guarantee: Guarantee::Guaranteed,
                },
            )
            .unwrap();
        let during = CapacitySnapshot::capture(&farm, &network);
        assert_eq!(before.leaked_streams(&during), 1);
        assert_ne!(before, during);

        farm.release(ServerId(0), id);
        let after = CapacitySnapshot::capture(&farm, &network);
        assert_eq!(before, after);
        assert_eq!(before.leaked_streams(&after), 0);
    }
}
