//! Concurrent negotiation broker for the news-on-demand reproduction.
//!
//! The paper evaluates its negotiation procedure one session at a time;
//! a real news-on-demand service fields many concurrent requests whose
//! commitments race for the same servers and links. This crate closes
//! that gap:
//!
//! - [`Broker::drive`] runs a [`FleetSpec`]'s sessions — from a handful
//!   to a million — against one shared farm + network on a deterministic
//!   virtual-time event loop, interpreting each request's
//!   [`RetryPolicy`](nod_qosneg::RetryPolicy) — FAILEDTRYLATER refusals
//!   whose commit failures are load-dependent
//!   ([`CommitFailure::transient`](nod_qosneg::CommitFailure::transient))
//!   back off exponentially with seeded jitter and try again; admitted
//!   sessions hold resources for their document's duration and release
//!   them on departure, which is exactly what lets later retries succeed.
//!   With [`FleetSpec::workers`] > 1 the load-independent prepare stage
//!   (negotiation steps 1–4) is sharded across worker threads while
//!   commits stay in exact event order — same seed, same outcome log, at
//!   every worker count. Live state sits in a recycled [`Slab`] arena
//!   sized by *peak concurrency*, not total volume, and
//!   [`EventRetention`] bounds what the report keeps at fleet scale.
//! - [`FaultPlan`] injects replayable degradations — server crashes,
//!   admission brownouts, link blackouts and capacity drops — over timed
//!   windows.
//! - [`Journal`] is a CRC-framed write-ahead log of session transitions
//!   appended from the drive loop ([`FleetSpec::journal`]), with periodic
//!   engine snapshots and log compaction; [`Broker::recover`] rebuilds
//!   the slab, ledgers, pending confirmations and retry queues from it
//!   and resumes driving with a byte-identical outcome log.
//! - [`CapacitySnapshot`] audits release-on-failure end to end: after a
//!   run drains, farm and network capacity must equal the pristine
//!   baseline, else `broker.leaked_reservations` fires (and a debug
//!   assertion trips).
//!
//! Observability flows through the context's
//! [`Recorder`](nod_obs::Recorder): `broker.retries`,
//! `broker.backoff_ms`, `broker.faults.injected`,
//! `broker.sessions.starved`, `broker.leaked_reservations` counters and
//! the `broker.admission_ratio` / `broker.peak_live_sessions` gauges.

mod audit;
mod broker;
mod fault;
mod fleet;
mod journal;
mod slab;
mod windows;

pub use audit::CapacitySnapshot;
pub use broker::{
    Broker, BrokerConfig, BrokerReport, OutcomeEvent, OutcomeKind, RecoveryReport, SessionFate,
    SessionResult, SessionSpec,
};
pub use fault::{Fault, FaultPlan, FaultWindow};
pub use fleet::{EventRetention, FleetSpec};
pub use journal::{crc32, Journal, JournalConfig, JournalError, JournalStats, CRASH_EXIT_CODE};
pub use slab::Slab;
pub use windows::{fleet_windows, FleetWindow, WindowAccumulator};
