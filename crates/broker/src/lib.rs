//! Concurrent negotiation broker for the news-on-demand reproduction.
//!
//! The paper evaluates its negotiation procedure one session at a time;
//! a real news-on-demand service fields many concurrent requests whose
//! commitments race for the same servers and links. This crate closes
//! that gap:
//!
//! - [`Broker`] runs N sessions against one shared farm + network on a
//!   deterministic virtual-time event loop, interpreting each request's
//!   [`RetryPolicy`](nod_qosneg::RetryPolicy) — FAILEDTRYLATER refusals
//!   whose commit failures are load-dependent
//!   ([`CommitFailure::transient`](nod_qosneg::CommitFailure::transient))
//!   back off exponentially with seeded jitter and try again; admitted
//!   sessions hold resources for their document's duration and release
//!   them on departure, which is exactly what lets later retries succeed.
//! - [`FaultPlan`] injects replayable degradations — server crashes,
//!   admission brownouts, link blackouts and capacity drops — over timed
//!   windows.
//! - [`CapacitySnapshot`] audits release-on-failure end to end: after a
//!   run drains, farm and network capacity must equal the pristine
//!   baseline, else `broker.leaked_reservations` fires (and a debug
//!   assertion trips).
//!
//! Observability flows through the context's
//! [`Recorder`](nod_obs::Recorder): `broker.retries`,
//! `broker.backoff_ms`, `broker.faults.injected`,
//! `broker.sessions.starved`, `broker.leaked_reservations` counters and
//! the `broker.admission_ratio` gauge.

mod audit;
mod broker;
mod fault;
mod windows;

pub use audit::CapacitySnapshot;
pub use broker::{
    Broker, BrokerConfig, BrokerReport, OutcomeEvent, OutcomeKind, SessionFate, SessionResult,
    SessionSpec,
};
pub use fault::{Fault, FaultPlan, FaultWindow};
pub use windows::{fleet_windows, FleetWindow};
