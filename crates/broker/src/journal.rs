//! Write-ahead journal of session transitions — crash-safe negotiation.
//!
//! The paper's procedure holds resources across long-lived protocol
//! states (a reservation through *choicePeriod*, a pending confirmation,
//! a retry backoff), and the broker's outcome log is already bit-exact
//! for a given (seed, specs, faults) triple. This module makes that
//! determinism durable: with [`FleetSpec::journal`](crate::FleetSpec)
//! set, [`Broker::drive`](crate::Broker::drive) appends every outcome —
//! admissions, retries, confirmations, departures, fault edges — to a
//! CRC-framed [`Journal`] as it happens, cuts a full engine snapshot
//! every [`JournalConfig::snapshot_every_events`] events, and (by
//! default) compacts the log past the snapshot horizon.
//!
//! # Record framing
//!
//! Every record is `[len: u32][crc32: u32][payload: len bytes]`, all
//! little-endian; the CRC (IEEE, as in gzip) covers the payload only.
//! The payload's first byte is the record type:
//!
//! | type | record    | payload |
//! |------|-----------|---------|
//! | 1    | header    | magic `NODJ`, version, seed, session count, spec hash |
//! | 2    | event     | `at_ms`, session, outcome kind + fields |
//! | 3    | snapshot  | tick, global event count, counters, finished results, live sessions (RNG state, attempts, held streams), pending event queue |
//!
//! A torn tail — a partial record from a crash mid-write, or any CRC
//! mismatch — truncates the journal at the last whole record; everything
//! before it is trusted, everything after is discarded.
//!
//! # Recovery
//!
//! [`Broker::recover`](crate::Broker::recover) validates the header
//! against the fleet it is given (same seed, same specs, same fault plan
//! — the spec hash catches a mismatched recovery attempt), rebuilds the
//! engine at the last complete snapshot (re-reserving every held stream
//! against the fresh farm/network at nominal health, then reapplying the
//! fault state for the snapshot tick), and **re-drives deterministically**:
//! each regenerated outcome is asserted byte-equal to the journaled
//! suffix and suppressed from the new report, and once the journal is
//! exhausted the engine simply goes live. The resumed run's outcome log
//! is therefore byte-identical to the uninterrupted run's tail — the
//! invariant the crash-recovery chaos harness gates on.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use nod_cmfs::{Guarantee, StreamRequirement};
use nod_mmdoc::VariantId;
use nod_qosneg::NegotiationStatus;

use crate::broker::{OutcomeEvent, OutcomeKind};

/// Journal format version; bumped on any incompatible framing change.
const VERSION: u32 = 1;
const MAGIC: [u8; 4] = *b"NODJ";

const REC_HEADER: u8 = 1;
const REC_EVENT: u8 = 2;
const REC_SNAPSHOT: u8 = 3;

/// Exit code of the deliberate mid-run crash hook
/// ([`JournalConfig::crash_after_events`]) — distinguishable from a real
/// panic in the kill-and-recover CI smoke.
pub const CRASH_EXIT_CODE: i32 = 86;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, as used by gzip/zip) — hand-rolled, the
// workspace is dependency-free by design.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (IEEE polynomial, reflected, init/xorout `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// FNV-1a over a byte stream — the spec-hash accumulator the header uses
/// to refuse recovery against a different fleet.
pub(crate) struct SpecHasher(u64);

impl SpecHasher {
    pub(crate) fn new() -> Self {
        SpecHasher(0xcbf2_9ce4_8422_2325)
    }
    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Little-endian encode/decode helpers.
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Take<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Take<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Take { bytes, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, JournalError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(JournalError::Malformed("record payload short"))?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, JournalError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(JournalError::Malformed("record payload short"))?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, JournalError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or(JournalError::Malformed("record payload short"))?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(JournalError::Malformed("record payload short"))?;
        self.pos += n;
        Ok(s)
    }
    fn done(&self) -> Result<(), JournalError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(JournalError::Malformed("record payload long"))
        }
    }
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Why a journal could not be written, parsed or recovered from.
#[derive(Debug)]
pub enum JournalError {
    /// The backing file failed.
    Io(std::io::Error),
    /// The journal holds no complete header record — nothing to recover.
    NoHeader,
    /// The first record is not a `NODJ` header.
    BadMagic,
    /// The journal was written by an incompatible format version.
    BadVersion(u32),
    /// The journal was written for a different fleet (seed, specs,
    /// config or fault plan differ) — recovering against it would replay
    /// garbage.
    SpecMismatch {
        /// Hash stored in the journal header.
        journal: u64,
        /// Hash of the fleet recovery was asked to resume.
        fleet: u64,
    },
    /// A structurally invalid record inside the valid-CRC prefix.
    Malformed(&'static str),
    /// Recovery was invoked without a journal attached to the fleet.
    NoJournal,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::NoHeader => write!(f, "journal holds no complete header record"),
            JournalError::BadMagic => write!(f, "not a NODJ journal"),
            JournalError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            JournalError::SpecMismatch { journal, fleet } => write!(
                f,
                "journal was written for a different fleet \
                 (journal spec hash {journal:#x}, fleet {fleet:#x})"
            ),
            JournalError::Malformed(what) => write!(f, "malformed journal record: {what}"),
            JournalError::NoJournal => {
                write!(f, "recover needs FleetSpec::journal to point at a journal")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Record payloads.
// ---------------------------------------------------------------------

/// The header record: enough identity to refuse a mismatched recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeaderRecord {
    pub seed: u64,
    pub sessions: u64,
    pub spec_hash: u64,
}

impl HeaderRecord {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(33);
        put_u8(&mut p, REC_HEADER);
        p.extend_from_slice(&MAGIC);
        put_u32(&mut p, VERSION);
        put_u64(&mut p, self.seed);
        put_u64(&mut p, self.sessions);
        put_u64(&mut p, self.spec_hash);
        p
    }

    fn decode(t: &mut Take<'_>) -> Result<Self, JournalError> {
        if t.bytes(4)? != MAGIC {
            return Err(JournalError::BadMagic);
        }
        let version = t.u32()?;
        if version != VERSION {
            return Err(JournalError::BadVersion(version));
        }
        let h = HeaderRecord {
            seed: t.u64()?,
            sessions: t.u64()?,
            spec_hash: t.u64()?,
        };
        t.done()?;
        Ok(h)
    }
}

fn encode_status(status: NegotiationStatus) -> u8 {
    match status {
        NegotiationStatus::Succeeded => 0,
        NegotiationStatus::FailedWithOffer => 1,
        NegotiationStatus::FailedTryLater => 2,
        NegotiationStatus::FailedWithoutOffer => 3,
        NegotiationStatus::FailedWithLocalOffer => 4,
        // `NegotiationStatus` is non_exhaustive; a new status must get a
        // tag here before it can be journaled.
        _ => unreachable!("unjournalable negotiation status {status:?}"),
    }
}

fn decode_status(tag: u8) -> Result<NegotiationStatus, JournalError> {
    Ok(match tag {
        0 => NegotiationStatus::Succeeded,
        1 => NegotiationStatus::FailedWithOffer,
        2 => NegotiationStatus::FailedTryLater,
        3 => NegotiationStatus::FailedWithoutOffer,
        4 => NegotiationStatus::FailedWithLocalOffer,
        _ => return Err(JournalError::Malformed("unknown negotiation status")),
    })
}

fn encode_event(payload: &mut Vec<u8>, at_ms: u64, session: usize, kind: &OutcomeKind) {
    put_u8(payload, REC_EVENT);
    put_u64(payload, at_ms);
    put_u64(payload, session as u64);
    match kind {
        OutcomeKind::Admitted { degraded, attempt } => {
            put_u8(payload, 0);
            put_u8(payload, *degraded as u8);
            put_u32(payload, *attempt);
        }
        OutcomeKind::RetryScheduled { at_ms, attempt } => {
            put_u8(payload, 1);
            put_u64(payload, *at_ms);
            put_u32(payload, *attempt);
        }
        OutcomeKind::Starved { attempts } => {
            put_u8(payload, 2);
            put_u32(payload, *attempts);
        }
        OutcomeKind::Rejected { status } => {
            put_u8(payload, 3);
            put_u8(payload, encode_status(*status));
        }
        OutcomeKind::Errored { error } => {
            put_u8(payload, 4);
            put_u32(payload, error.len() as u32);
            payload.extend_from_slice(error.as_bytes());
        }
        OutcomeKind::Confirmed => put_u8(payload, 5),
        OutcomeKind::Departed => put_u8(payload, 6),
        OutcomeKind::FaultEdge => put_u8(payload, 7),
    }
}

fn decode_event(t: &mut Take<'_>) -> Result<OutcomeEvent, JournalError> {
    let at_ms = t.u64()?;
    let session = t.u64()? as usize;
    let kind = match t.u8()? {
        0 => OutcomeKind::Admitted {
            degraded: t.u8()? != 0,
            attempt: t.u32()?,
        },
        1 => OutcomeKind::RetryScheduled {
            at_ms: t.u64()?,
            attempt: t.u32()?,
        },
        2 => OutcomeKind::Starved { attempts: t.u32()? },
        3 => OutcomeKind::Rejected {
            status: decode_status(t.u8()?)?,
        },
        4 => {
            let len = t.u32()? as usize;
            let bytes = t.bytes(len)?;
            OutcomeKind::Errored {
                error: String::from_utf8(bytes.to_vec())
                    .map_err(|_| JournalError::Malformed("error text not UTF-8"))?,
            }
        }
        5 => OutcomeKind::Confirmed,
        6 => OutcomeKind::Departed,
        7 => OutcomeKind::FaultEdge,
        _ => return Err(JournalError::Malformed("unknown outcome kind")),
    };
    t.done()?;
    Ok(OutcomeEvent {
        at_ms,
        session,
        kind,
    })
}

/// One held stream of a live session: enough to re-reserve it against a
/// fresh farm/network on recovery. Captured at commit time, only when a
/// journal is attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SnapHold {
    pub server: u64,
    pub req: StreamRequirement,
    /// Steady-state network bandwidth reserved along the client↔server
    /// route; `None` for discrete media (delivered ahead of playout).
    pub net_bps: Option<u64>,
}

/// A finished session inside a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SnapResult {
    pub session: u64,
    /// 0 admitted, 1 admitted degraded, 2 starved, 3 rejected, 4 errored.
    pub fate: u8,
    pub attempts: u32,
    /// `u64::MAX` = never admitted.
    pub admitted_at_ms: u64,
}

/// A live (slab-resident) session inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapSession {
    pub session: u64,
    pub attempts: u32,
    /// Saved per-session RNG `(state, gamma)`.
    pub rng: (u64, u64),
    /// 0 = none, 1 = pending non-degraded admit, 2 = pending degraded.
    pub pending_admit: u8,
    pub closed: bool,
    /// A reservation is held (possibly over zero streams).
    pub reserved: bool,
    pub holds: Vec<SnapHold>,
}

/// A pending dynamic-queue entry: `(at_us, kind, session)`, where kind
/// is 0 retry, 1 confirm, 2 departure, 3 inject-leak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SnapEvent {
    pub at_us: u64,
    pub kind: u8,
    pub session: u64,
}

/// A complete engine checkpoint, cut at a tick boundary: every event at
/// `tick ≤ at_ms` is fully processed, every pending event is strictly
/// later.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SnapshotState {
    pub at_ms: u64,
    /// Events journaled before this snapshot — the global log position
    /// the post-snapshot suffix starts at.
    pub events_logged: u64,
    pub retries: u64,
    pub backoff_ms_total: u64,
    pub faults_injected: u64,
    pub peak_live: u64,
    pub results: Vec<SnapResult>,
    /// Live sessions in spec-index order.
    pub live: Vec<SnapSession>,
    /// Pending dynamic events in delivery `(at, seq)` order.
    pub dynq: Vec<SnapEvent>,
}

impl SnapshotState {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(64 + 32 * (self.results.len() + self.live.len()));
        put_u8(&mut p, REC_SNAPSHOT);
        put_u64(&mut p, self.at_ms);
        put_u64(&mut p, self.events_logged);
        put_u64(&mut p, self.retries);
        put_u64(&mut p, self.backoff_ms_total);
        put_u64(&mut p, self.faults_injected);
        put_u64(&mut p, self.peak_live);
        put_u32(&mut p, self.results.len() as u32);
        for r in &self.results {
            put_u64(&mut p, r.session);
            put_u8(&mut p, r.fate);
            put_u32(&mut p, r.attempts);
            put_u64(&mut p, r.admitted_at_ms);
        }
        put_u32(&mut p, self.live.len() as u32);
        for s in &self.live {
            put_u64(&mut p, s.session);
            put_u32(&mut p, s.attempts);
            put_u64(&mut p, s.rng.0);
            put_u64(&mut p, s.rng.1);
            put_u8(&mut p, s.pending_admit);
            put_u8(&mut p, s.closed as u8);
            put_u8(&mut p, s.reserved as u8);
            put_u32(&mut p, s.holds.len() as u32);
            for h in &s.holds {
                put_u64(&mut p, h.server);
                put_u64(&mut p, h.req.variant.0);
                put_u64(&mut p, h.req.max_bit_rate);
                put_u64(&mut p, h.req.avg_bit_rate);
                put_u64(&mut p, h.req.max_block_bytes);
                put_u64(&mut p, h.req.avg_block_bytes);
                put_u32(&mut p, h.req.blocks_per_second);
                put_u8(
                    &mut p,
                    match h.req.guarantee {
                        Guarantee::Guaranteed => 0,
                        Guarantee::BestEffort => 1,
                    },
                );
                match h.net_bps {
                    Some(bps) => {
                        put_u8(&mut p, 1);
                        put_u64(&mut p, bps);
                    }
                    None => put_u8(&mut p, 0),
                }
            }
        }
        put_u32(&mut p, self.dynq.len() as u32);
        for e in &self.dynq {
            put_u64(&mut p, e.at_us);
            put_u8(&mut p, e.kind);
            put_u64(&mut p, e.session);
        }
        p
    }

    fn decode(t: &mut Take<'_>) -> Result<Self, JournalError> {
        let mut snap = SnapshotState {
            at_ms: t.u64()?,
            events_logged: t.u64()?,
            retries: t.u64()?,
            backoff_ms_total: t.u64()?,
            faults_injected: t.u64()?,
            peak_live: t.u64()?,
            ..SnapshotState::default()
        };
        let results = t.u32()? as usize;
        snap.results.reserve(results);
        for _ in 0..results {
            snap.results.push(SnapResult {
                session: t.u64()?,
                fate: t.u8()?,
                attempts: t.u32()?,
                admitted_at_ms: t.u64()?,
            });
        }
        let live = t.u32()? as usize;
        snap.live.reserve(live);
        for _ in 0..live {
            let session = t.u64()?;
            let attempts = t.u32()?;
            let rng = (t.u64()?, t.u64()?);
            let pending_admit = t.u8()?;
            let closed = t.u8()? != 0;
            let reserved = t.u8()? != 0;
            let nholds = t.u32()? as usize;
            let mut holds = Vec::with_capacity(nholds);
            for _ in 0..nholds {
                let server = t.u64()?;
                let req = StreamRequirement {
                    variant: VariantId(t.u64()?),
                    max_bit_rate: t.u64()?,
                    avg_bit_rate: t.u64()?,
                    max_block_bytes: t.u64()?,
                    avg_block_bytes: t.u64()?,
                    blocks_per_second: t.u32()?,
                    guarantee: match t.u8()? {
                        0 => Guarantee::Guaranteed,
                        1 => Guarantee::BestEffort,
                        _ => return Err(JournalError::Malformed("unknown guarantee")),
                    },
                };
                let net_bps = match t.u8()? {
                    0 => None,
                    _ => Some(t.u64()?),
                };
                holds.push(SnapHold {
                    server,
                    req,
                    net_bps,
                });
            }
            snap.live.push(SnapSession {
                session,
                attempts,
                rng,
                pending_admit,
                closed,
                reserved,
                holds,
            });
        }
        let dynq = t.u32()? as usize;
        snap.dynq.reserve(dynq);
        for _ in 0..dynq {
            snap.dynq.push(SnapEvent {
                at_us: t.u64()?,
                kind: t.u8()?,
                session: t.u64()?,
            });
        }
        t.done()?;
        Ok(snap)
    }
}

// ---------------------------------------------------------------------
// The journal itself.
// ---------------------------------------------------------------------

/// Journal policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Cut a full engine snapshot after this many journaled events
    /// (0 = never snapshot; recovery then replays from the beginning).
    pub snapshot_every_events: u64,
    /// Drop everything before the newest snapshot when it is cut — the
    /// journal stays bounded by one snapshot interval instead of growing
    /// with the run.
    pub compact: bool,
    /// Chaos hook: flush and `std::process::exit(`[`CRASH_EXIT_CODE`]`)`
    /// immediately after journaling the N-th event — a deliberate,
    /// deterministic mid-run crash for the kill-and-recover smoke. Never
    /// set outside tests and the `run_contended --kill-at-event` flag.
    pub crash_after_events: Option<u64>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            snapshot_every_events: 4_096,
            compact: true,
            crash_after_events: None,
        }
    }
}

/// Counters describing a journal's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Event records appended by this process.
    pub events_appended: u64,
    /// Snapshot records cut.
    pub snapshots: u64,
    /// Compactions performed (each rewrote the log to header + snapshot).
    pub compactions: u64,
    /// Current size of the journal, bytes.
    pub bytes: usize,
}

struct Inner {
    cfg: JournalConfig,
    /// The full current journal contents. Kept in memory so parsing,
    /// compaction and the chaos harness's byte-level truncation need no
    /// re-reads; compaction keeps it bounded by one snapshot interval.
    buf: Vec<u8>,
    /// Backing file, when the journal is durable. Appends are buffered;
    /// flushed at snapshots, compactions, crash hooks and [`Journal::sync`].
    file: Option<(PathBuf, BufWriter<File>)>,
    /// Frame bytes of the header record — re-emitted on compaction.
    header_frame: Vec<u8>,
    /// Events journaled since the last snapshot (or ever, before one).
    events_since_snapshot: u64,
    /// Events ever journaled, including compacted-away ones — the global
    /// log position of the next event.
    events_total: u64,
    stats: JournalStats,
}

/// A write-ahead journal of broker session transitions.
///
/// Attach one to a [`FleetSpec`](crate::FleetSpec::journal) to make
/// [`Broker::drive`](crate::Broker::drive) durable, and hand the same
/// (reopened) journal to [`Broker::recover`](crate::Broker::recover)
/// after a crash. Interior-mutable so the borrowed `FleetSpec` stays
/// `Clone`; the broker only ever appends from the coordinator thread.
pub struct Journal {
    inner: Mutex<Inner>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("Journal")
            .field("bytes", &inner.buf.len())
            .field("events_total", &inner.events_total)
            .field("durable", &inner.file.is_some())
            .finish()
    }
}

impl Journal {
    /// An in-memory journal (tests, benches, the chaos harness).
    pub fn in_memory(cfg: JournalConfig) -> Self {
        Journal::from_bytes(Vec::new(), cfg)
    }

    /// An in-memory journal over existing bytes — how the chaos harness
    /// replays a truncated (crashed) journal without touching disk.
    pub fn from_bytes(bytes: Vec<u8>, cfg: JournalConfig) -> Self {
        Journal {
            inner: Mutex::new(Inner {
                cfg,
                buf: bytes,
                file: None,
                header_frame: Vec::new(),
                events_since_snapshot: 0,
                events_total: 0,
                stats: JournalStats::default(),
            }),
        }
    }

    /// Create (truncating) a durable journal at `path`.
    pub fn create(path: impl AsRef<Path>, cfg: JournalConfig) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let journal = Journal::from_bytes(Vec::new(), cfg);
        journal.lock().file = Some((path, BufWriter::new(file)));
        Ok(journal)
    }

    /// Open an existing durable journal at `path` for recovery; appends
    /// after recovery continue into the same file.
    pub fn open(path: impl AsRef<Path>, cfg: JournalConfig) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let journal = Journal::from_bytes(bytes, cfg);
        journal.lock().file = Some((path, BufWriter::new(file)));
        Ok(journal)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A copy of the journal's current contents.
    pub fn bytes(&self) -> Vec<u8> {
        self.lock().buf.clone()
    }

    /// True when nothing has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.lock().buf.is_empty()
    }

    /// Life-so-far counters (events, snapshots, compactions, size).
    pub fn stats(&self) -> JournalStats {
        let inner = self.lock();
        let mut s = inner.stats;
        s.bytes = inner.buf.len();
        s
    }

    /// Events ever journaled, including compacted-away history — the
    /// global log position the next appended event will take.
    pub(crate) fn events_total(&self) -> u64 {
        self.lock().events_total
    }

    /// Flush buffered appends to the backing file, if any.
    pub fn sync(&self) -> Result<(), JournalError> {
        let mut inner = self.lock();
        if let Some((_, w)) = inner.file.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Byte offsets just past each **event** record, in journal order —
    /// the chaos harness's menu of whole-record crash points. (Offsets
    /// past a compaction horizon index the *current* buffer.)
    pub fn event_record_ends(&self) -> Vec<usize> {
        let inner = self.lock();
        let mut ends = Vec::new();
        let mut pos = 0usize;
        while let Some((payload, next)) = next_frame(&inner.buf, pos) {
            if payload.first() == Some(&REC_EVENT) {
                ends.push(next);
            }
            pos = next;
        }
        ends
    }

    fn append_frame(inner: &mut Inner, payload: &[u8]) {
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(payload));
        frame.extend_from_slice(payload);
        inner.buf.extend_from_slice(&frame);
        if let Some((path, w)) = inner.file.as_mut() {
            w.write_all(&frame)
                .unwrap_or_else(|e| panic!("journal append to {} failed: {e}", path.display()));
        }
    }

    /// Start a fresh journal: write the header record.
    ///
    /// # Panics
    /// Panics if the journal already has contents — resuming an existing
    /// journal goes through [`Broker::recover`](crate::Broker::recover).
    pub(crate) fn begin(&self, header: HeaderRecord) {
        let mut inner = self.lock();
        assert!(
            inner.buf.is_empty(),
            "Journal::begin on a non-empty journal; use Broker::recover to resume"
        );
        let payload = header.encode();
        Self::append_frame(&mut inner, &payload);
        inner.header_frame = inner.buf.clone();
    }

    /// Append one outcome event. Returns `true` when the snapshot
    /// cadence says the drive loop should cut a checkpoint at the next
    /// tick boundary.
    pub(crate) fn append_event(&self, at_ms: u64, session: usize, kind: &OutcomeKind) -> bool {
        let mut inner = self.lock();
        let mut payload = Vec::with_capacity(32);
        encode_event(&mut payload, at_ms, session, kind);
        Self::append_frame(&mut inner, &payload);
        inner.events_since_snapshot += 1;
        inner.events_total += 1;
        inner.stats.events_appended += 1;
        if inner.cfg.crash_after_events == Some(inner.stats.events_appended) {
            // The deliberate crash: leave whatever the OS has as the
            // journal (the buffered writer is flushed so the cut is at a
            // record boundary — torn writes are exercised separately by
            // byte-level truncation in the chaos harness).
            if let Some((_, w)) = inner.file.as_mut() {
                let _ = w.flush();
            }
            std::process::exit(CRASH_EXIT_CODE);
        }
        inner.cfg.snapshot_every_events > 0
            && inner.events_since_snapshot >= inner.cfg.snapshot_every_events
    }

    /// Append a snapshot record; with [`JournalConfig::compact`] the log
    /// is rewritten to `header + snapshot` (atomically, via temp file +
    /// rename, when durable).
    pub(crate) fn append_snapshot(&self, snap: &SnapshotState) {
        let mut inner = self.lock();
        let payload = snap.encode();
        if inner.cfg.compact {
            let mut frame = Vec::with_capacity(8 + payload.len());
            put_u32(&mut frame, payload.len() as u32);
            put_u32(&mut frame, crc32(&payload));
            frame.extend_from_slice(&payload);
            let mut compacted = inner.header_frame.clone();
            compacted.extend_from_slice(&frame);
            inner.buf = compacted;
            if let Some((path, w)) = inner.file.take() {
                drop(w); // discard buffered appends now folded into `buf`
                let rewrite = || -> std::io::Result<BufWriter<File>> {
                    let tmp = path.with_extension("journal.tmp");
                    std::fs::write(&tmp, &inner.buf)?;
                    std::fs::rename(&tmp, &path)?;
                    Ok(BufWriter::new(OpenOptions::new().append(true).open(&path)?))
                };
                let w = rewrite().unwrap_or_else(|e| {
                    panic!("journal compact at {} failed: {e}", path.display())
                });
                inner.file = Some((path, w));
            }
            inner.stats.compactions += 1;
        } else {
            Self::append_frame(&mut inner, &payload);
            if let Some((path, w)) = inner.file.as_mut() {
                w.flush()
                    .unwrap_or_else(|e| panic!("journal flush to {} failed: {e}", path.display()));
            }
        }
        inner.events_since_snapshot = 0;
        inner.stats.snapshots += 1;
    }

    /// Parse for recovery: validate the header against `expect`, find the
    /// last complete snapshot and the event suffix after it, truncate any
    /// torn tail (in memory and on disk), and prime the append counters
    /// so the resumed run continues the same log.
    pub(crate) fn recover_state(
        &self,
        expect: HeaderRecord,
    ) -> Result<ParsedJournal, JournalError> {
        let mut inner = self.lock();
        let mut pos = 0usize;
        // Header first — a journal whose header never made it to disk is
        // unrecoverable (but the run never had any effects either).
        let (payload, next) = next_frame(&inner.buf, pos).ok_or(JournalError::NoHeader)?;
        let mut t = Take::new(payload);
        if t.u8()? != REC_HEADER {
            return Err(JournalError::NoHeader);
        }
        let header = HeaderRecord::decode(&mut t)?;
        if header.spec_hash != expect.spec_hash
            || header.seed != expect.seed
            || header.sessions != expect.sessions
        {
            return Err(JournalError::SpecMismatch {
                journal: header.spec_hash,
                fleet: expect.spec_hash,
            });
        }
        inner.header_frame = inner.buf[..next].to_vec();
        pos = next;

        let mut snapshot: Option<SnapshotState> = None;
        let mut tail: Vec<OutcomeEvent> = Vec::new();
        while let Some((payload, next)) = next_frame(&inner.buf, pos) {
            let mut t = Take::new(payload);
            match t.u8()? {
                REC_EVENT => tail.push(decode_event(&mut t)?),
                REC_SNAPSHOT => {
                    snapshot = Some(SnapshotState::decode(&mut t)?);
                    tail.clear();
                }
                REC_HEADER => return Err(JournalError::Malformed("duplicate header")),
                _ => return Err(JournalError::Malformed("unknown record type")),
            }
            pos = next;
        }
        // Anything past `pos` is a torn write: a partial frame or a CRC
        // mismatch. Drop it — the crash interrupted that record.
        let torn_bytes = inner.buf.len() - pos;
        if torn_bytes > 0 {
            inner.buf.truncate(pos);
            if let Some((path, w)) = inner.file.as_mut() {
                w.flush()?;
                w.get_ref().set_len(pos as u64)?;
                let _ = path; // reopened handle not needed: append continues at the new end
            }
        }
        let events_before = snapshot.as_ref().map(|s| s.events_logged).unwrap_or(0);
        inner.events_total = events_before + tail.len() as u64;
        inner.events_since_snapshot = tail.len() as u64;
        Ok(ParsedJournal {
            snapshot,
            tail,
            events_before,
            torn_bytes,
        })
    }
}

/// What [`Journal::recover_state`] found: the newest complete snapshot,
/// the journaled events after it, and where in the global log they sit.
#[derive(Debug)]
pub(crate) struct ParsedJournal {
    pub snapshot: Option<SnapshotState>,
    pub tail: Vec<OutcomeEvent>,
    /// Global index of the first `tail` event.
    pub events_before: u64,
    /// Bytes dropped off the end as a torn write.
    pub torn_bytes: usize,
}

/// The next whole, CRC-valid frame at `pos`, or `None` at a torn tail or
/// the journal end. Returns `(payload, next_pos)`.
fn next_frame(buf: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let head = buf.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    let payload = buf.get(pos + 8..pos + 8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, pos + 8 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn header() -> HeaderRecord {
        HeaderRecord {
            seed: 42,
            sessions: 7,
            spec_hash: 0xDEAD_BEEF,
        }
    }

    fn event(at_ms: u64, session: usize, kind: OutcomeKind) -> OutcomeEvent {
        OutcomeEvent {
            at_ms,
            session,
            kind,
        }
    }

    fn sample_events() -> Vec<OutcomeEvent> {
        vec![
            event(
                5,
                0,
                OutcomeKind::Admitted {
                    degraded: false,
                    attempt: 1,
                },
            ),
            event(
                6,
                1,
                OutcomeKind::RetryScheduled {
                    at_ms: 1_006,
                    attempt: 1,
                },
            ),
            event(7, usize::MAX, OutcomeKind::FaultEdge),
            event(
                8,
                2,
                OutcomeKind::Rejected {
                    status: NegotiationStatus::FailedWithoutOffer,
                },
            ),
            event(
                9,
                3,
                OutcomeKind::Errored {
                    error: "unknown document 99".into(),
                },
            ),
            event(10, 1, OutcomeKind::Starved { attempts: 6 }),
            event(11, 0, OutcomeKind::Confirmed),
            event(12, 0, OutcomeKind::Departed),
        ]
    }

    #[test]
    fn events_round_trip_through_the_frame_format() {
        let j = Journal::in_memory(JournalConfig {
            snapshot_every_events: 0,
            ..JournalConfig::default()
        });
        j.begin(header());
        for e in sample_events() {
            j.append_event(e.at_ms, e.session, &e.kind);
        }
        let parsed = j.recover_state(header()).expect("parses");
        assert_eq!(parsed.tail, sample_events());
        assert_eq!(parsed.events_before, 0);
        assert_eq!(parsed.torn_bytes, 0);
        assert!(parsed.snapshot.is_none());
    }

    #[test]
    fn torn_tails_truncate_at_the_last_whole_record() {
        let j = Journal::in_memory(JournalConfig::default());
        j.begin(header());
        for e in sample_events() {
            j.append_event(e.at_ms, e.session, &e.kind);
        }
        let bytes = j.bytes();
        let ends = j.event_record_ends();
        assert_eq!(ends.len(), sample_events().len());
        // Cut mid-record: between the 3rd and 4th record boundaries.
        let cut = ends[2] + 3;
        assert!(cut < ends[3]);
        let torn = Journal::from_bytes(bytes[..cut].to_vec(), JournalConfig::default());
        let parsed = torn.recover_state(header()).expect("parses");
        assert_eq!(parsed.tail, sample_events()[..3]);
        assert_eq!(parsed.torn_bytes, 3);
        // The torn bytes are dropped from the journal itself, so resumed
        // appends extend the valid prefix.
        assert_eq!(torn.bytes().len(), ends[2]);
    }

    #[test]
    fn corrupt_bytes_inside_a_record_also_truncate() {
        let j = Journal::in_memory(JournalConfig::default());
        j.begin(header());
        for e in sample_events() {
            j.append_event(e.at_ms, e.session, &e.kind);
        }
        let mut bytes = j.bytes();
        let ends = j.event_record_ends();
        // Flip a payload byte of the 5th event record.
        bytes[ends[3] + 12] ^= 0xFF;
        let parsed = Journal::from_bytes(bytes, JournalConfig::default())
            .recover_state(header())
            .expect("parses");
        assert_eq!(parsed.tail, sample_events()[..4]);
        assert!(parsed.torn_bytes > 0);
    }

    #[test]
    fn recovery_against_a_different_fleet_is_refused() {
        let j = Journal::in_memory(JournalConfig::default());
        j.begin(header());
        let other = HeaderRecord {
            spec_hash: 1,
            ..header()
        };
        assert!(matches!(
            j.recover_state(other),
            Err(JournalError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn an_empty_or_headerless_journal_cannot_recover() {
        let j = Journal::in_memory(JournalConfig::default());
        assert!(matches!(
            j.recover_state(header()),
            Err(JournalError::NoHeader)
        ));
        // A few garbage bytes (shorter than a frame head) are torn, not a header.
        let j = Journal::from_bytes(vec![1, 2, 3], JournalConfig::default());
        assert!(matches!(
            j.recover_state(header()),
            Err(JournalError::NoHeader)
        ));
    }

    fn sample_snapshot(events_logged: u64) -> SnapshotState {
        SnapshotState {
            at_ms: 1_234,
            events_logged,
            retries: 3,
            backoff_ms_total: 4_500,
            faults_injected: 1,
            peak_live: 5,
            results: vec![SnapResult {
                session: 0,
                fate: 0,
                attempts: 1,
                admitted_at_ms: 5,
            }],
            live: vec![SnapSession {
                session: 1,
                attempts: 2,
                rng: (0x1111, 0x2222 | 1),
                pending_admit: 2,
                closed: false,
                reserved: true,
                holds: vec![SnapHold {
                    server: 0,
                    req: StreamRequirement {
                        variant: VariantId(9),
                        max_bit_rate: 1_200_000,
                        avg_bit_rate: 600_000,
                        max_block_bytes: 6_000,
                        avg_block_bytes: 3_000,
                        blocks_per_second: 25,
                        guarantee: Guarantee::Guaranteed,
                    },
                    net_bps: Some(1_200_000),
                }],
            }],
            dynq: vec![SnapEvent {
                at_us: 2_000_000,
                kind: 1,
                session: 1,
            }],
        }
    }

    #[test]
    fn snapshots_round_trip_and_bound_the_replay_suffix() {
        let j = Journal::in_memory(JournalConfig {
            compact: false,
            ..JournalConfig::default()
        });
        j.begin(header());
        let evs = sample_events();
        for e in &evs[..5] {
            j.append_event(e.at_ms, e.session, &e.kind);
        }
        j.append_snapshot(&sample_snapshot(5));
        for e in &evs[5..] {
            j.append_event(e.at_ms, e.session, &e.kind);
        }
        let parsed = j.recover_state(header()).expect("parses");
        assert_eq!(parsed.snapshot, Some(sample_snapshot(5)));
        assert_eq!(parsed.events_before, 5);
        assert_eq!(parsed.tail, evs[5..]);
    }

    #[test]
    fn compaction_drops_history_but_preserves_recovery() {
        let j = Journal::in_memory(JournalConfig {
            compact: true,
            ..JournalConfig::default()
        });
        j.begin(header());
        let evs = sample_events();
        // Enough history that the (larger) snapshot record still nets a
        // shrink when it replaces it.
        for _ in 0..20 {
            for e in &evs[..5] {
                j.append_event(e.at_ms, e.session, &e.kind);
            }
        }
        let before = j.bytes().len();
        j.append_snapshot(&sample_snapshot(100));
        assert!(
            j.bytes().len() < before,
            "compaction must shrink the journal"
        );
        for e in &evs[5..] {
            j.append_event(e.at_ms, e.session, &e.kind);
        }
        let parsed = j.recover_state(header()).expect("parses");
        assert_eq!(parsed.snapshot, Some(sample_snapshot(100)));
        assert_eq!(parsed.events_before, 100);
        assert_eq!(parsed.tail, evs[5..]);
        assert_eq!(j.stats().compactions, 1);
    }

    #[test]
    fn durable_journals_survive_a_reopen() {
        let dir = std::env::temp_dir().join(format!("nod_journal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("j.journal");
        {
            let j = Journal::create(
                &path,
                JournalConfig {
                    compact: false,
                    ..JournalConfig::default()
                },
            )
            .expect("create");
            j.begin(header());
            for e in sample_events() {
                j.append_event(e.at_ms, e.session, &e.kind);
            }
            j.sync().expect("sync");
        }
        let j = Journal::open(&path, JournalConfig::default()).expect("open");
        let parsed = j.recover_state(header()).expect("parses");
        assert_eq!(parsed.tail, sample_events());
        std::fs::remove_dir_all(&dir).ok();
    }
}
