//! The concurrent negotiation broker.
//!
//! [`Broker::drive`] is the engine: it drives a [`FleetSpec`]'s sessions
//! against one shared [`ServerFarm`](nod_cmfs::ServerFarm) +
//! [`Network`](nod_netsim::Network) on a deterministic virtual-time event
//! loop — arrivals, jittered retries of FAILEDTRYLATER refusals,
//! departures that release held resources, and [`FaultPlan`] window
//! edges. Per-session RNGs are pre-split from the config seed by session
//! index and live session state sits in a recycled [`Slab`](crate::Slab)
//! arena, so memory tracks the *peak concurrent* session count while the
//! same seed, specs and fault plan replay the identical [`OutcomeEvent`]
//! sequence bit for bit.
//!
//! Scale comes from the prepare/commit split: negotiation steps 1–4
//! ([`prepare`]) read only the catalog and static topology, so with
//! [`FleetSpec::workers`] > 1 they are prefetched by a pool of worker
//! shards (arrivals in arrival order ahead of the clock, same-tick
//! retries as a batch), while the step-5 commit walks — the only part
//! that touches live farm/network capacity — stay on the coordinator in
//! exact event order. Worker-side instrumentation is pinned to each
//! event's virtual time ([`Recorder::pin_sim_time_us`]), so the outcome
//! log is byte-identical at every worker count and a sharded
//! [`Recorder`](nod_obs::Recorder)'s merged snapshot doesn't depend on
//! the thread count either. The cost of uniformity: `drive` always takes
//! the eagerly-classified prepare path (never the lazy streaming
//! engine), trading some single-worker throughput for a counter stream
//! that cannot depend on how many workers ran.
//!
//! With [`FleetSpec::explain`] set, every negotiation additionally
//! records a [`DecisionLog`](nod_qosneg::DecisionLog); the broker keeps
//! the full capacity ledger (who held which streams, from when to when)
//! and tail-retains per-session explanations under the same policy trace
//! retention uses, so [`BrokerReport::explains`] — and any
//! `--explain-out` artifact written from it — is byte-identical at every
//! worker count.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

use nod_client::ClientMachine;
use nod_cmfs::{Guarantee, StreamRequirement};
use nod_mmdoc::{DocumentId, ServerId, VariantId};
use nod_obs::TailKeeper;
use nod_obs::{
    HistogramSnapshot, Recorder, SloAlert, SloMonitor, SloSpec, Span, Tracer, ValueHistogram,
};
use nod_qosneg::classify::ScoredOffer;
use nod_qosneg::explain::{
    AttemptExplain, DecisionLog, ExplainData, LedgerRow, SessionExplain, Settlement, StreamRow,
};
use nod_qosneg::mapping::charged_bit_rate;
use nod_qosneg::negotiate::{
    commit_prepared, prepare, CommitFailure, NegotiationContext, NegotiationTrace, Prepared,
    SessionReservation,
};
use nod_qosneg::{NegotiationStatus, QosError, RetryPolicy, Session, UserProfile};
use nod_simcore::{EventQueue, SimTime, StreamRng};

use crate::audit::CapacitySnapshot;
use crate::fault::{Fault, FaultPlan};
use crate::fleet::{EventRetention, FleetSpec};
use crate::journal::{
    HeaderRecord, Journal, JournalError, SnapEvent, SnapHold, SnapResult, SnapSession,
    SnapshotState, SpecHasher,
};
use crate::slab::Slab;
use crate::windows::{FleetWindow, WindowAccumulator};

/// Broker-level policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// Retry policy applied to FAILEDTRYLATER refusals.
    pub retry: RetryPolicy,
    /// Accept a FAILEDWITHOFFER (degraded but reserved) outcome? When
    /// `false` the broker releases the degraded reservation and counts
    /// the session rejected.
    pub accept_degraded: bool,
    /// Session hold time when neither the spec nor the document supplies
    /// one, ms.
    pub default_hold_ms: u64,
    /// Seed for the per-session RNG family (backoff jitter).
    pub seed: u64,
    /// Upper bound of the user's decision window (the paper's
    /// *choicePeriod*), ms. When non-zero, an admitted session keeps its
    /// reservation pending while the simulated user deliberates for a
    /// per-session random `1..=choice_period_ms`, then confirms
    /// ([`OutcomeKind::Confirmed`]) and starts its hold. Zero (the
    /// default) confirms instantly, preserving the original event logs.
    pub choice_period_ms: u64,
    /// Chaos hook: at this instant, deliberately reserve (and never
    /// release) one stream on the first server, so the end-of-run
    /// capacity audit must fire. Exercises the flight-recorder dump path;
    /// never set outside tests.
    pub inject_leak_at_ms: Option<u64>,
}

impl BrokerConfig {
    /// Plausible interactive defaults: era retry policy, degraded offers
    /// accepted, 30 s default hold.
    pub fn era_default() -> Self {
        BrokerConfig {
            retry: RetryPolicy::era_default(),
            accept_degraded: true,
            default_hold_ms: 30_000,
            seed: 0x6272_6f6b,
            choice_period_ms: 0,
            inject_leak_at_ms: None,
        }
    }
}

/// One session the broker must place: who, what, when, for how long.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec<'a> {
    /// The requesting client machine.
    pub client: &'a ClientMachine,
    /// The requested document.
    pub document: DocumentId,
    /// The user's profile.
    pub profile: &'a UserProfile,
    /// Arrival instant on the broker clock, ms.
    pub arrival_ms: u64,
    /// How long an admitted session holds its resources, ms. `None`
    /// falls back to the document's total duration, then to
    /// [`BrokerConfig::default_hold_ms`].
    pub hold_ms: Option<u64>,
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionFate {
    /// Resources committed (possibly below the requested QoS).
    Admitted {
        /// `true` when admission came from a FAILEDWITHOFFER outcome.
        degraded: bool,
    },
    /// FAILEDTRYLATER every time until the retry budget or deadline ran
    /// out — the contention casualty the paper's status is named for.
    Starved,
    /// A terminal refusal (FAILEDWITHOUTOFFER, FAILEDWITHLOCALOFFER, a
    /// non-transient FAILEDTRYLATER, or a declined degraded offer).
    Rejected,
    /// The negotiation itself failed (unknown document, invalid request).
    Errored,
}

/// Per-session summary, indexed like the input spec slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Index into the spec slice.
    pub session: usize,
    /// Terminal fate.
    pub fate: SessionFate,
    /// Attempts made (1 = admitted or refused on arrival).
    pub attempts: u32,
    /// Admission instant, ms — `None` unless admitted.
    pub admitted_at_ms: Option<u64>,
}

/// One entry in the chronological outcome log — the replay unit: two
/// runs with identical seed/specs/faults produce identical event vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeEvent {
    /// Broker virtual time, ms.
    pub at_ms: u64,
    /// Session index (`usize::MAX` for fault edges).
    pub session: usize,
    /// What happened.
    pub kind: OutcomeKind,
}

/// The event kinds of the outcome log.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeKind {
    /// Session admitted on attempt `attempt`.
    Admitted {
        /// `true` for a FAILEDWITHOFFER admission.
        degraded: bool,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// FAILEDTRYLATER; retry scheduled.
    RetryScheduled {
        /// When the retry fires, ms.
        at_ms: u64,
        /// The attempt that was just refused.
        attempt: u32,
    },
    /// Retry budget or deadline exhausted.
    Starved {
        /// Total attempts made.
        attempts: u32,
    },
    /// Terminal refusal.
    Rejected {
        /// The status that ended the session.
        status: NegotiationStatus,
    },
    /// Negotiation error (stringified [`nod_qosneg::QosError`]).
    Errored {
        /// The error display text.
        error: String,
    },
    /// The user confirmed a pending admission after the choicePeriod
    /// window ([`BrokerConfig::choice_period_ms`]).
    Confirmed,
    /// An admitted session released its resources.
    Departed,
    /// A fault window started or ended; target state recomputed.
    FaultEdge,
}

/// Aggregate result of a broker run.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerReport {
    /// Per-session results, in spec order.
    pub results: Vec<SessionResult>,
    /// Chronological outcome log (the replay unit). Empty when the
    /// [`FleetSpec`]'s retention policy drops it
    /// ([`EventRetention::WindowsOnly`] / [`EventRetention::CountsOnly`]).
    pub events: Vec<OutcomeEvent>,
    /// Tumbling fleet-window rows ([`FleetSpec::windows`]); empty when no
    /// window cadence was configured.
    pub windows: Vec<FleetWindow>,
    /// Sessions admitted (degraded included).
    pub admitted: usize,
    /// Admitted sessions that took a degraded offer.
    pub degraded: usize,
    /// Sessions starved out by contention.
    pub starved: usize,
    /// Sessions terminally refused.
    pub rejected: usize,
    /// Sessions that errored.
    pub errored: usize,
    /// Retries performed.
    pub retries: u64,
    /// Total virtual time spent backing off, ms.
    pub backoff_ms_total: u64,
    /// Fault windows whose start edge fired.
    pub faults_injected: u64,
    /// Streams (server or network side) still held after the run drained
    /// — must be 0; see [`CapacitySnapshot`].
    pub leaked_streams: usize,
    /// `admitted / sessions`.
    pub admission_ratio: f64,
    /// High-water mark of concurrently in-flight sessions — the slab
    /// arena's occupancy peak, which is what bounds live memory at fleet
    /// scale.
    pub peak_live_sessions: usize,
    /// End-to-end session latency (arrival → terminal event), ms. Exact
    /// moments; log-bucketed p50/p90/p95/p99 (≤1% relative error at any
    /// session count, and mergeable across runs).
    pub latency: HistogramSnapshot,
    /// SLO burn alerts fired during the run ([`FleetSpec::slos`] /
    /// [`Broker::with_slos`]); empty when no objectives were configured.
    pub slo_alerts: Vec<SloAlert>,
    /// Decision provenance ([`FleetSpec::explain`]): the capacity ledger,
    /// the tail-retained session explanations and the retention totals.
    /// `None` when provenance was not requested.
    pub explains: Option<ExplainData>,
}

/// What [`Broker::recover`] did: the resumed run's report plus where the
/// journal handed over to live execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The resumed run's report. `results` and the aggregate counts
    /// cover the **whole** run (pre-crash fates restored from the
    /// journal); `events`, `windows`, `latency` and SLO burn cover only
    /// the portion after the last snapshot.
    pub report: BrokerReport,
    /// Journaled post-snapshot events the engine regenerated and
    /// verified byte-for-byte before going live.
    pub replayed_events: u64,
    /// Tick of the snapshot recovery rebuilt from; `None` when the
    /// journal held no snapshot and the whole run was replayed.
    pub resumed_at_ms: Option<u64>,
    /// Global outcome-log index of the first event in `report.events`:
    /// the byte-identity contract is
    /// `full.events[suffix_starts_at_event..] == report.events` against
    /// an uninterrupted same-seed run.
    pub suffix_starts_at_event: u64,
    /// Bytes discarded off the journal's end as a torn (mid-record)
    /// crash write.
    pub torn_bytes: usize,
}

/// Journal replay state during recovery: the journaled post-snapshot
/// events the engine must regenerate — each asserted byte-equal and
/// suppressed from the new report — before the run goes live.
struct Replay {
    tail: Vec<OutcomeEvent>,
    cursor: usize,
}

/// What a resumed drive starts from ([`Broker::recover`]).
struct ResumeState {
    snapshot: Option<SnapshotState>,
    tail: Vec<OutcomeEvent>,
}

/// Runtime-scheduled events. Fault edges and arrivals are known up front
/// and merged in from sorted lists instead of occupying heap slots.
enum Ev {
    Retry(usize),
    Confirm(usize),
    Departure(usize),
    InjectLeak,
}

/// Live state of an in-flight session — slab-resident from first arrival
/// until its resources drain.
struct LiveSession {
    attempts: u32,
    rng: StreamRng,
    reservation: Option<SessionReservation>,
    /// Degraded flag of an admission awaiting user confirmation.
    pending_admit: Option<bool>,
    /// Latency recorded and session span closed.
    closed: bool,
    /// Open trace spans (only when a tracer is attached).
    session_span: Option<Span>,
    backoff_span: Option<Span>,
    confirm_span: Option<Span>,
    /// Accumulating decision provenance ([`FleetSpec::explain`]).
    explain: Option<SessionAcc>,
    /// Re-reservation rows for the held streams, captured at commit time
    /// — populated only when a journal is attached (empty `Vec`s never
    /// allocate, keeping the journal-disabled path allocation-free).
    holds: Vec<SnapHold>,
}

/// Per-session provenance accumulator, inline on the live session (an
/// empty vec and a `None`, so the disabled path costs no allocation).
#[derive(Default)]
struct SessionAcc {
    attempts: Vec<AttemptExplain>,
    settlement: Option<Settlement>,
}

/// A prepared negotiation, in the thread-portable shape the prefetch
/// pool hands back to the coordinator.
enum Prep {
    /// Steps 1–4 ended before step 5 (local failure / no feasible offer);
    /// the terminal status plus — with provenance on — the decision log.
    Early(NegotiationStatus, Option<Box<DecisionLog>>),
    /// The classified offer list, ready for a step-5 commit walk, with
    /// the prepare-stage decision log when provenance is on.
    Offers(Vec<ScoredOffer>, NegotiationTrace, Option<Box<DecisionLog>>),
    /// The negotiation itself failed (stringified [`QosError`], matching
    /// what [`Session::submit`] would have returned).
    Failed(String),
}

/// Run steps 1–4 for one spec. Reads only the catalog and static
/// topology, so the result is independent of in-flight commits — safe to
/// run on any thread, ahead of the virtual clock. With `explain` set the
/// returned decision log is a pure function of the spec, so it too is
/// independent of which worker ran the prepare.
fn prepare_session(ctx: &NegotiationContext<'_>, spec: &SessionSpec<'_>, explain: bool) -> Prep {
    let mut ctx = *ctx;
    ctx.explain = explain;
    match prepare(&ctx, spec.client, spec.document, spec.profile) {
        Err(err) => Prep::Failed(QosError::from(err).to_string()),
        Ok(Prepared::Early(out)) => Prep::Early(out.status, out.decisions),
        Ok(Prepared::Offers(ordered, trace, decisions)) => Prep::Offers(ordered, trace, decisions),
    }
}

/// Classify a FAILEDTRYLATER's commit failures by what the session will
/// be waiting *for* — the label wait-time attribution splits backoff by.
fn refusal_reason(failures: &[(usize, CommitFailure)]) -> &'static str {
    let mut server = false;
    let mut network = false;
    for (_, f) in failures {
        match f {
            CommitFailure::Server { .. } => server = true,
            CommitFailure::Network { .. } | CommitFailure::PathQos { .. } => network = true,
            CommitFailure::DecodeBudget | CommitFailure::Startup { .. } => {}
        }
    }
    match (server, network) {
        (true, false) => "admission",
        (false, true) => "network",
        (true, true) => "mixed",
        (false, false) => "other",
    }
}

fn fate_label(fate: SessionFate) -> &'static str {
    match fate {
        SessionFate::Admitted { degraded: false } => "admitted",
        SessionFate::Admitted { degraded: true } => "admitted_degraded",
        SessionFate::Starved => "starved",
        SessionFate::Rejected => "rejected",
        SessionFate::Errored => "errored",
    }
}

/// ms → µs on the virtual clock. A virtual time near `u64::MAX` ms has no
/// µs representation; silently clamping would collapse distinct later
/// instants onto one tick and reorder events, so debug builds panic at
/// the overflow edge while release builds keep the historical saturating
/// clamp.
fn ms_to_us(ms: u64) -> u64 {
    debug_assert!(
        ms <= u64::MAX / 1_000,
        "virtual time {ms} ms overflows the microsecond clock"
    );
    ms.saturating_mul(1_000)
}

/// How many arrivals each worker keeps prepared ahead of the clock.
const ARRIVAL_PREFETCH_PER_WORKER: usize = 32;

struct PrefetchJob {
    session: u32,
    /// The event's virtual instant, µs — what worker-side spans and sink
    /// events are stamped with ([`Recorder::pin_sim_time_us`]).
    at_us: u64,
}

#[derive(Default)]
struct PoolState {
    /// Cursor into the arrival order: jobs issued so far.
    next_arrival: usize,
    /// Same-tick retry re-prepares; serviced before arrivals so the
    /// coordinator never stalls behind the prefetch window.
    retries: VecDeque<PrefetchJob>,
    /// Finished prepares, keyed by session (at most one in flight per
    /// session at any instant).
    done: HashMap<u32, Prep>,
    /// Arrival jobs issued but not yet consumed by the coordinator —
    /// bounds the memory held in `done`.
    outstanding_arrivals: usize,
    shutdown: bool,
}

/// The worker-shard pool: prefetches [`prepare_session`] results while
/// the coordinator's event loop commits in exact event order.
///
/// Arrivals are issued in the same (arrival, index) order the event loop
/// consumes them, so the coordinator only ever waits on a job that has
/// already been issued — the handoff cannot deadlock. Workers never
/// resume traces (prepare-stage trace events are coordinator-only at
/// workers = 1); their counters and span histograms land in the
/// recorder with pinned virtual timestamps, keeping the merged snapshot
/// independent of the worker count.
struct PrefetchPool<'o> {
    /// `(session index, arrival_ms)` in consumption order.
    order: &'o [(u32, u64)],
    window: usize,
    /// Record a [`DecisionLog`] on every prepare.
    explain: bool,
    state: Mutex<PoolState>,
    /// Signalled when work appears (retry batch, freed window slot,
    /// shutdown).
    work: Condvar,
    /// Signalled when a prepare finishes.
    ready: Condvar,
}

impl<'o> PrefetchPool<'o> {
    fn new(order: &'o [(u32, u64)], workers: usize, explain: bool) -> Self {
        PrefetchPool {
            order,
            window: (workers * ARRIVAL_PREFETCH_PER_WORKER).clamp(workers, 1_024),
            explain,
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Lock the pool state, shrugging off poisoning: a panicking peer is
    /// already unwinding the run, and the state itself is always
    /// consistent between mutations.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Worker-shard loop: drain retry batches first, then prefetch
    /// arrivals up to the window, park when neither is available.
    fn work(&self, broker: &Broker<'_>, specs: &[SessionSpec<'_>]) {
        loop {
            let job = {
                let mut st = self.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(job) = st.retries.pop_front() {
                        break job;
                    }
                    if st.next_arrival < self.order.len() && st.outstanding_arrivals < self.window {
                        let (session, at_ms) = self.order[st.next_arrival];
                        st.next_arrival += 1;
                        st.outstanding_arrivals += 1;
                        break PrefetchJob {
                            session,
                            at_us: ms_to_us(at_ms),
                        };
                    }
                    st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            let spec = &specs[job.session as usize];
            let prep = {
                let _pin = broker.recorder.map(|r| r.pin_sim_time_us(job.at_us));
                prepare_session(broker.session.context(), spec, self.explain)
            };
            let mut st = self.lock();
            st.done.insert(job.session, prep);
            drop(st);
            self.ready.notify_all();
        }
    }

    /// Hand the pool one tick's worth of retry re-prepares.
    fn enqueue_retries(&self, jobs: &[(u32, u64)]) {
        if jobs.is_empty() {
            return;
        }
        let mut st = self.lock();
        for &(session, at_ms) in jobs {
            st.retries.push_back(PrefetchJob {
                session,
                at_us: ms_to_us(at_ms),
            });
        }
        drop(st);
        self.work.notify_all();
    }

    /// Block until `session`'s prepare is done and take it.
    fn take(&self, session: u32, arrival: bool) -> Prep {
        let mut st = self.lock();
        loop {
            if let Some(prep) = st.done.remove(&session) {
                if arrival {
                    st.outstanding_arrivals -= 1;
                    drop(st);
                    self.work.notify_all();
                }
                return prep;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }
}

/// The broker: a [`Session`] facade plus contention policy.
pub struct Broker<'a> {
    session: Session<'a>,
    config: BrokerConfig,
    recorder: Option<&'a Recorder>,
    slos: Vec<SloSpec>,
}

impl<'a> Broker<'a> {
    /// A broker over shared system state. The context's recorder (when
    /// present) also receives the broker's own counters and gauges.
    pub fn new(ctx: NegotiationContext<'a>, config: BrokerConfig) -> Self {
        Broker {
            recorder: ctx.recorder,
            session: Session::new(ctx),
            config,
            slos: Vec::new(),
        }
    }

    /// Monitor `slos` during [`Broker::drive`] (unless the
    /// [`FleetSpec`] carries its own): every terminal session feeds an
    /// [`SloMonitor`] on the virtual clock, burning windows and alerts
    /// land in the recorder (`slo.window.burning`, `slo.alert`), the
    /// first alert dumps the flight recorder, and every alert is
    /// returned in [`BrokerReport::slo_alerts`].
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// The underlying negotiation session facade.
    pub fn session(&self) -> &Session<'a> {
        &self.session
    }

    fn counter(&self, name: &str, delta: u64) {
        if let Some(rec) = self.recorder {
            rec.counter(name, delta);
        }
    }

    /// The attached tracer, if the recorder carries one.
    fn tracer(&self) -> Option<&'a Tracer> {
        self.recorder.and_then(|r| r.tracer())
    }

    fn hold_ms(&self, spec: &SessionSpec<'_>) -> u64 {
        spec.hold_ms.unwrap_or_else(|| {
            self.session
                .context()
                .catalog
                .document(spec.document)
                .and_then(|d| d.total_duration_ms().ok())
                .unwrap_or(self.config.default_hold_ms)
        })
    }

    /// Drive every session of `fleet` to a terminal fate on the virtual
    /// clock and return the full [`BrokerReport`].
    ///
    /// This is the engine behind both the old sequential `run` and the
    /// old threaded stress mode. Determinism contract: the outcome log
    /// replays bit for bit for a given (seed, specs, faults) triple **at
    /// every worker count** — [`FleetSpec::workers`] shards only the
    /// load-independent prepare stage, commits happen on the coordinator
    /// in exact event order, and each session draws jitter from its own
    /// pre-split RNG. With a sharded [`Recorder`](nod_obs::Recorder)
    /// attached, the merged metric snapshot is byte-identical at every
    /// worker count too.
    pub fn drive(&self, fleet: &FleetSpec<'_>) -> BrokerReport {
        if let Some(journal) = fleet.journal {
            journal.begin(HeaderRecord {
                seed: self.config.seed,
                sessions: fleet.sessions.len() as u64,
                spec_hash: self.spec_hash(fleet),
            });
        }
        self.drive_from(fleet, None)
    }

    /// The fleet-identity hash a journal header carries: seed, per-spec
    /// arrival/client/document/hold, the broker config's policy numbers
    /// and the fault plan. Recovery refuses a journal whose hash differs
    /// — a deterministic replay against a different fleet is garbage.
    fn spec_hash(&self, fleet: &FleetSpec<'_>) -> u64 {
        let mut h = SpecHasher::new();
        h.u64(self.config.seed);
        h.u64(fleet.sessions.len() as u64);
        for s in fleet.sessions {
            h.u64(s.arrival_ms);
            h.u64(s.client.id.0);
            h.u64(s.document.0);
            h.u64(s.hold_ms.unwrap_or(u64::MAX));
        }
        let r = &self.config.retry;
        h.u64(r.max_attempts as u64);
        h.u64(r.base_backoff_ms);
        h.u64(r.max_backoff_ms);
        h.f64(r.jitter);
        h.u64(r.deadline_ms.is_some() as u64);
        h.u64(r.deadline_ms.unwrap_or(0));
        h.u64(self.config.accept_degraded as u64);
        h.u64(self.config.default_hold_ms);
        h.u64(self.config.choice_period_ms);
        h.u64(self.config.inject_leak_at_ms.is_some() as u64);
        h.u64(self.config.inject_leak_at_ms.unwrap_or(0));
        if let Some(plan) = fleet.faults {
            for w in &plan.windows {
                h.u64(w.from_ms);
                h.u64(w.until_ms);
                match w.fault {
                    Fault::ServerCrash { server } => {
                        h.u64(0);
                        h.u64(server.0);
                    }
                    Fault::ServerSlowAdmission { server, factor } => {
                        h.u64(1);
                        h.u64(server.0);
                        h.f64(factor);
                    }
                    Fault::LinkBlackout { link } => {
                        h.u64(2);
                        h.u64(link.0);
                    }
                    Fault::LinkCapacityDrop { link, health } => {
                        h.u64(3);
                        h.u64(link.0);
                        h.f64(health);
                    }
                }
            }
        }
        h.finish()
    }

    /// Rebuild a crashed run from the journal attached to `fleet` and
    /// resume driving it to completion.
    ///
    /// The fleet must be identical to the one the journal was written
    /// under — same specs, same seed/config, same fault plan, and a
    /// **fresh** (pristine) farm + network exactly as at the original
    /// run's start; a mismatch is refused via the header's spec hash. A
    /// torn tail (a record cut mid-write by the crash) is discarded.
    ///
    /// Recovery rebuilds the engine at the journal's last complete
    /// snapshot — slab, held reservations, capacity ledgers, pending
    /// confirmations/choice-period timers and retry queues — then
    /// re-drives: every regenerated outcome is asserted byte-equal to
    /// the journaled suffix and suppressed, after which the run is live.
    /// The returned report's `events` therefore hold only the outcomes
    /// after the journal's end; see [`RecoveryReport`] for where they
    /// sit in the global log.
    pub fn recover(&self, fleet: &FleetSpec<'_>) -> Result<RecoveryReport, JournalError> {
        let journal = fleet.journal.ok_or(JournalError::NoJournal)?;
        let parsed = journal.recover_state(HeaderRecord {
            seed: self.config.seed,
            sessions: fleet.sessions.len() as u64,
            spec_hash: self.spec_hash(fleet),
        })?;
        let replayed_events = parsed.tail.len() as u64;
        let suffix_starts_at_event = parsed.events_before + replayed_events;
        let resumed_at_ms = parsed.snapshot.as_ref().map(|s| s.at_ms);
        let torn_bytes = parsed.torn_bytes;
        let span = self.recorder.map(|r| r.span("broker.recover"));
        if let Some(rec) = self.recorder {
            rec.counter("broker.recovery.replayed_events", replayed_events);
            if torn_bytes > 0 {
                rec.counter("broker.recovery.torn_bytes", torn_bytes as u64);
            }
        }
        let report = self.drive_from(
            fleet,
            Some(ResumeState {
                snapshot: parsed.snapshot,
                tail: parsed.tail,
            }),
        );
        if let Some(span) = span {
            span.end();
        }
        Ok(RecoveryReport {
            report,
            replayed_events,
            resumed_at_ms,
            suffix_starts_at_event,
            torn_bytes,
        })
    }

    /// Shared engine entry behind [`Broker::drive`] (fresh) and
    /// [`Broker::recover`] (resumed from a snapshot + replay tail).
    fn drive_from(&self, fleet: &FleetSpec<'_>, resume: Option<ResumeState>) -> BrokerReport {
        let specs = fleet.sessions;
        // Arrival consumption order: (arrival_ms, spec index) — exactly
        // how the legacy single queue broke ties. Shared with the
        // prefetch pool so issue order equals consumption order.
        let mut order: Vec<(u32, u64)> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.arrival_ms))
            .collect();
        order.sort_unstable_by_key(|&(i, at_ms)| (at_ms, i));

        // Arrivals at or before a resumed snapshot's tick were fully
        // processed before the snapshot was cut; both the loop and the
        // prefetch pool start past them (the pool would otherwise fill
        // its window with prepares the coordinator never consumes and
        // deadlock).
        let ai0 = match resume.as_ref().and_then(|r| r.snapshot.as_ref()) {
            Some(s) => order.partition_point(|&(_, at_ms)| at_ms <= s.at_ms),
            None => 0,
        };

        let workers = fleet.workers.max(1);
        if workers == 1 || specs.len() < 2 {
            return self.drive_loop(fleet, &order, ai0, None, resume);
        }
        let pool = PrefetchPool::new(&order[ai0..], workers, fleet.explain.is_some());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let pool = &pool;
                scope.spawn(move || pool.work(self, specs));
            }
            // Wake and stop the workers even if the event loop panics
            // (the end-of-run audit debug_asserts on leaked capacity) —
            // otherwise the scope would join forever.
            struct Shutdown<'p, 'o>(&'p PrefetchPool<'o>);
            impl Drop for Shutdown<'_, '_> {
                fn drop(&mut self) {
                    self.0.shutdown();
                }
            }
            let _guard = Shutdown(&pool);
            self.drive_loop(fleet, &order, ai0, Some(&pool), resume)
        })
    }

    /// The coordinator: one virtual-time event loop over three merged,
    /// individually-sorted event streams — fault edges, arrivals, and
    /// runtime-scheduled events — processing each tick as a batch.
    fn drive_loop(
        &self,
        fleet: &FleetSpec<'_>,
        order: &[(u32, u64)],
        ai0: usize,
        pool: Option<&PrefetchPool<'_>>,
        resume: Option<ResumeState>,
    ) -> BrokerReport {
        let specs = fleet.sessions;
        let ctx = self.session.context();
        // Captured before a resumed run re-reserves its held streams, so
        // the end-of-run audit still checks against the pristine world.
        let before = CapacitySnapshot::capture(ctx.farm, ctx.network);

        let none_plan;
        let faults = match fleet.faults {
            Some(plan) => plan,
            None => {
                none_plan = FaultPlan::none();
                &none_plan
            }
        };
        let fault_edges = faults.edges_ms();

        let (snap, tail) = match resume {
            Some(r) => (r.snapshot, r.tail),
            None => (None, Vec::new()),
        };

        let mut dynq: EventQueue<Ev> = EventQueue::new();
        if snap.is_none() {
            if let Some(at_ms) = self.config.inject_leak_at_ms {
                // Scheduled first: the lowest sequence number in the
                // dynamic queue, so at its tick it pops ahead of
                // same-tick retries — the same order the legacy single
                // queue produced. On a snapshot resume the pending
                // InjectLeak (if any) lives in the snapshot's queue.
                dynq.schedule(SimTime::from_millis(at_ms), Ev::InjectLeak);
            }
        }

        let mut master = StreamRng::new(self.config.seed);
        // Per-session splits happen in spec order unconditionally, so a
        // resumed run's post-snapshot arrivals draw the very streams the
        // uninterrupted run would have; sessions already arrived by the
        // snapshot carry their RNG state inside it instead.
        let rngs: Vec<Option<StreamRng>> = match &snap {
            None => specs.iter().map(|_| Some(master.split())).collect(),
            Some(s) => specs
                .iter()
                .map(|sp| {
                    let split = master.split();
                    (sp.arrival_ms > s.at_ms).then_some(split)
                })
                .collect(),
        };

        let slos = if fleet.slos.is_empty() {
            self.slos.clone()
        } else {
            fleet.slos.clone()
        };
        let window_ms = fleet.effective_window_ms();
        let tracer = self.tracer();
        let mut state = DriveLoop {
            broker: self,
            specs,
            pool,
            tracer,
            retention: fleet.retention,
            dynq,
            rngs,
            live: Slab::new(),
            slots: vec![u32::MAX; specs.len()],
            results: vec![None; specs.len()],
            peak_live: 0,
            events: Vec::new(),
            win_acc: (window_ms > 0).then(|| WindowAccumulator::new(window_ms)),
            latency: ValueHistogram::new(),
            slo: SloMonitor::new(slos),
            retries: 0,
            backoff_ms_total: 0,
            faults_injected: 0,
            retry_prep: BinaryHeap::new(),
            keeper: fleet.explain.map(TailKeeper::new),
            ledger: Vec::new(),
            ledger_ix: vec![u32::MAX; specs.len()],
            journal: fleet.journal,
            snapshot_due: false,
            replay: (!tail.is_empty()).then_some(Replay { tail, cursor: 0 }),
        };

        let mut fi = 0usize; // next fault edge
        let mut ai = ai0; // next arrival (index into `order`)
        if let Some(s) = &snap {
            // Fault edges at or before the snapshot tick are folded into
            // the restored fault state; the loop resumes past them.
            fi = fault_edges.partition_point(|&e| e <= s.at_ms);
            state.restore(s, faults);
        }
        let mut retry_batch: Vec<(u32, u64)> = Vec::new();
        let mut end_ms = 0u64;
        loop {
            // The next tick: the earliest head of the three streams.
            let mut t = u64::MAX;
            if let Some(&edge) = fault_edges.get(fi) {
                t = t.min(edge);
            }
            if let Some(&(_, at_ms)) = order.get(ai) {
                t = t.min(at_ms);
            }
            if let Some(at) = state.dynq.peek_time() {
                t = t.min(at.as_millis());
            }
            if t == u64::MAX {
                break;
            }
            end_ms = end_ms.max(t);
            if let Some(rec) = self.recorder {
                // One clock store per tick — every event in the batch
                // shares the instant.
                rec.set_sim_time_us(ms_to_us(t));
            }
            // Hand this tick's retry re-prepares to the pool as one
            // batch, so worker shards chew them in parallel while the
            // coordinator commits in order.
            if let Some(pool) = pool {
                retry_batch.clear();
                while let Some(&Reverse((fire_ms, session))) = state.retry_prep.peek() {
                    if fire_ms > t {
                        break;
                    }
                    state.retry_prep.pop();
                    retry_batch.push((session, fire_ms));
                }
                pool.enqueue_retries(&retry_batch);
            }
            // Tick order replicates the legacy single queue's tie-break:
            // fault edges (scheduled first), then arrivals in spec order,
            // then runtime-scheduled events in schedule order. Handlers
            // only ever schedule strictly-future events, so the batch
            // bounds are stable.
            while fault_edges.get(fi) == Some(&t) {
                fi += 1;
                state.fault_edge(faults, t);
            }
            while let Some(&(i, at_ms)) = order.get(ai) {
                if at_ms != t {
                    break;
                }
                ai += 1;
                let i = i as usize;
                if let Some(tr) = tracer {
                    tr.resume(i as u64);
                }
                state.attempt(i, t, true);
                if let Some(tr) = tracer {
                    tr.suspend();
                }
            }
            while state.dynq.peek_time().map(SimTime::as_millis) == Some(t) {
                let (_, ev) = state.dynq.pop().expect("peeked event");
                match ev {
                    Ev::Retry(i) => {
                        if let Some(tr) = tracer {
                            tr.resume(i as u64);
                        }
                        state.attempt(i, t, false);
                        if let Some(tr) = tracer {
                            tr.suspend();
                        }
                    }
                    Ev::Confirm(i) => {
                        if let Some(tr) = tracer {
                            tr.resume(i as u64);
                        }
                        state.confirm(i, t);
                        if let Some(tr) = tracer {
                            tr.suspend();
                        }
                    }
                    Ev::Departure(i) => state.departure(i, t),
                    Ev::InjectLeak => state.inject_leak(),
                }
            }
            // A journal snapshot is cut at the tick boundary: every
            // event at `t` above is processed and journaled, every
            // pending event is strictly later — exactly the state
            // `restore` rebuilds.
            if state.snapshot_due {
                state.snapshot_due = false;
                state.write_snapshot(t);
            }
        }
        assert!(
            state.replay.is_none(),
            "recovery replay ended with journaled events unconsumed — \
             the journal holds more events than the resumed run produced"
        );
        if let Some(journal) = state.journal {
            journal
                .sync()
                .unwrap_or_else(|e| panic!("journal sync at run end failed: {e}"));
            if let Some(rec) = self.recorder {
                rec.gauge("broker.journal.bytes", journal.stats().bytes as f64);
            }
        }

        let after = CapacitySnapshot::capture(ctx.farm, ctx.network);
        let leaked_streams = before.leaked_streams(&after);
        if before != after {
            self.counter("broker.leaked_reservations", leaked_streams.max(1) as u64);
            // Dump the flight recorder *before* the assert so the last
            // trace events survive the panic.
            if let Some(t) = tracer {
                t.trigger_flight_dump("leaked_reservation_audit");
            }
            debug_assert_eq!(
                before, after,
                "broker run leaked reservations: {before:?} -> {after:?}"
            );
        }

        let results: Vec<SessionResult> = state
            .results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| unreachable!("session {i} never reached a terminal fate"))
            })
            .collect();
        let admitted = results
            .iter()
            .filter(|r| matches!(r.fate, SessionFate::Admitted { .. }))
            .count();
        let degraded = results
            .iter()
            .filter(|r| matches!(r.fate, SessionFate::Admitted { degraded: true }))
            .count();
        let starved = results
            .iter()
            .filter(|r| r.fate == SessionFate::Starved)
            .count();
        let rejected = results
            .iter()
            .filter(|r| r.fate == SessionFate::Rejected)
            .count();
        let errored = results
            .iter()
            .filter(|r| r.fate == SessionFate::Errored)
            .count();
        let admission_ratio = if specs.is_empty() {
            0.0
        } else {
            admitted as f64 / specs.len() as f64
        };
        if let Some(rec) = self.recorder {
            rec.counter("broker.retries", state.retries);
            rec.counter("broker.backoff_ms", state.backoff_ms_total);
            rec.counter("broker.sessions.starved", starved as u64);
            rec.gauge("broker.admission_ratio", admission_ratio);
            rec.gauge("broker.peak_live_sessions", state.peak_live as f64);
        }
        let slo_alerts = state.slo.finish(self.recorder, end_ms).to_vec();
        let explains = state.keeper.map(|keeper| {
            let (items, stats) = keeper.drain();
            ExplainData {
                ledger: state.ledger,
                sessions: items.into_iter().map(|(_, s)| s).collect(),
                stats,
            }
        });
        BrokerReport {
            results,
            events: state.events,
            windows: state
                .win_acc
                .map(WindowAccumulator::finish)
                .unwrap_or_default(),
            admitted,
            degraded,
            starved,
            rejected,
            errored,
            retries: state.retries,
            backoff_ms_total: state.backoff_ms_total,
            faults_injected: state.faults_injected,
            leaked_streams,
            admission_ratio,
            peak_live_sessions: state.peak_live,
            latency: latency_snapshot(state.latency),
            slo_alerts,
            explains,
        }
    }
}

fn latency_snapshot(latency: ValueHistogram) -> HistogramSnapshot {
    latency.snapshot()
}

/// The event loop's mutable state, split out so handlers can borrow
/// disjoint fields (the slab entry and the event queue, say) at once.
struct DriveLoop<'e, 'a> {
    broker: &'e Broker<'a>,
    specs: &'e [SessionSpec<'e>],
    pool: Option<&'e PrefetchPool<'e>>,
    tracer: Option<&'a Tracer>,
    retention: EventRetention,
    dynq: EventQueue<Ev>,
    /// Pre-split per-session RNGs, taken into the slab at first arrival.
    rngs: Vec<Option<StreamRng>>,
    live: Slab<LiveSession>,
    /// Spec index → slab slot (`u32::MAX` when not in flight).
    slots: Vec<u32>,
    results: Vec<Option<SessionResult>>,
    peak_live: usize,
    events: Vec<OutcomeEvent>,
    win_acc: Option<WindowAccumulator>,
    latency: ValueHistogram,
    slo: SloMonitor,
    retries: u64,
    backoff_ms_total: u64,
    faults_injected: u64,
    /// Scheduled retries awaiting hand-off to the prefetch pool at their
    /// tick, `(fire_ms, session)`.
    retry_prep: BinaryHeap<Reverse<(u64, u32)>>,
    /// Tail-retained session explanations ([`FleetSpec::explain`]).
    keeper: Option<TailKeeper<SessionExplain>>,
    /// Capacity ledger, one row per admission, in commit order.
    ledger: Vec<LedgerRow>,
    /// Spec index → ledger row (`u32::MAX` when never admitted), so the
    /// departure handler can stamp `depart_ms`.
    ledger_ix: Vec<u32>,
    /// The write-ahead journal ([`FleetSpec::journal`]), when attached.
    journal: Option<&'e Journal>,
    /// The journal's snapshot cadence fired; cut one at this tick's end.
    snapshot_due: bool,
    /// Journaled post-snapshot events still being replay-verified; `None`
    /// once the run is live.
    replay: Option<Replay>,
}

impl DriveLoop<'_, '_> {
    /// Fold one outcome into the log, the window accumulator and — for a
    /// scheduled retry — the pool hand-off heap.
    fn record(&mut self, at_ms: u64, session: usize, kind: OutcomeKind) {
        if self.pool.is_some() {
            if let OutcomeKind::RetryScheduled { at_ms: fire_ms, .. } = kind {
                self.retry_prep.push(Reverse((fire_ms, session as u32)));
            }
        }
        // Recovery replay: the engine regenerates the journaled suffix.
        // Each regenerated outcome must match the journal exactly (the
        // determinism contract recovery rests on) and is suppressed — it
        // was already journaled, windowed and reported by the crashed
        // run. Past the journal's end the run is live again.
        if let Some(rp) = self.replay.as_mut() {
            let expect = &rp.tail[rp.cursor];
            assert!(
                expect.at_ms == at_ms && expect.session == session && expect.kind == kind,
                "recovery replay diverged at journaled event {}: journal has {:?}, \
                 engine produced {:?} for session {} at {} ms",
                rp.cursor,
                expect,
                kind,
                session,
                at_ms,
            );
            rp.cursor += 1;
            if rp.cursor == rp.tail.len() {
                self.replay = None;
            }
            return;
        }
        if let Some(journal) = self.journal {
            if journal.append_event(at_ms, session, &kind) {
                self.snapshot_due = true;
            }
            self.broker.counter("broker.journal.records", 1);
        }
        if let Some(acc) = &mut self.win_acc {
            acc.push(at_ms, &kind);
        }
        if self.retention == EventRetention::Full {
            self.events.push(OutcomeEvent {
                at_ms,
                session,
                kind,
            });
        }
    }

    /// Rebuild the engine at a journal snapshot: finished results, the
    /// live slab (with every held stream re-reserved against the fresh
    /// world), pending events and counters. Re-reservation happens at
    /// nominal health — live holds passed a commit-time capacity check,
    /// so on a pristine world they always fit — and the fault state in
    /// force at the snapshot tick is applied afterwards. No fault edge
    /// lies strictly between the last edge ≤ tick and the tick itself,
    /// so reset-then-reapply recomputes exactly the state the crashed
    /// run held, even when a window closed on the snapshot tick.
    fn restore(&mut self, snap: &SnapshotState, faults: &FaultPlan) {
        let broker = self.broker;
        let ctx = broker.session.context();
        for r in &snap.results {
            let i = r.session as usize;
            let fate = match r.fate {
                0 => SessionFate::Admitted { degraded: false },
                1 => SessionFate::Admitted { degraded: true },
                2 => SessionFate::Starved,
                3 => SessionFate::Rejected,
                _ => SessionFate::Errored,
            };
            self.results[i] = Some(SessionResult {
                session: i,
                fate,
                attempts: r.attempts,
                admitted_at_ms: (r.admitted_at_ms != u64::MAX).then_some(r.admitted_at_ms),
            });
        }
        for s in &snap.live {
            let i = s.session as usize;
            let reservation = s.reserved.then(|| {
                let mut res = SessionReservation {
                    servers: Vec::with_capacity(s.holds.len()),
                    network: Vec::new(),
                };
                for h in &s.holds {
                    let server = ServerId(h.server);
                    let rid = ctx.farm.try_reserve(server, h.req).unwrap_or_else(|e| {
                        panic!("recovery re-reserve of session {i} on {server} failed: {e:?}")
                    });
                    res.servers.push((server, rid));
                    if let Some(bps) = h.net_bps {
                        let nid = ctx
                            .network
                            .try_reserve(self.specs[i].client.id, server, bps)
                            .unwrap_or_else(|e| {
                                panic!("recovery net re-reserve of session {i} failed: {e:?}")
                            });
                        res.network.push(nid);
                    }
                }
                res
            });
            let slot = self.live.insert(LiveSession {
                attempts: s.attempts,
                rng: StreamRng::from_state_parts(s.rng.0, s.rng.1),
                reservation,
                pending_admit: match s.pending_admit {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                },
                closed: s.closed,
                session_span: None,
                backoff_span: None,
                confirm_span: None,
                explain: self.keeper.is_some().then(SessionAcc::default),
                holds: s.holds.clone(),
            });
            self.slots[i] = slot;
        }
        faults.apply_state_at(ctx.farm, ctx.network, snap.at_ms);
        // Pending events, rescheduled in delivery order: fresh sequence
        // numbers assigned in `(at, seq)` order reproduce the same-tick
        // FIFO tie-break exactly.
        for e in &snap.dynq {
            let ev = match e.kind {
                0 => Ev::Retry(e.session as usize),
                1 => Ev::Confirm(e.session as usize),
                2 => Ev::Departure(e.session as usize),
                _ => Ev::InjectLeak,
            };
            self.dynq.schedule(SimTime::from_micros(e.at_us), ev);
            if self.pool.is_some() && e.kind == 0 {
                self.retry_prep
                    .push(Reverse((e.at_us / 1_000, e.session as u32)));
            }
        }
        self.peak_live = snap.peak_live as usize;
        self.retries = snap.retries;
        self.backoff_ms_total = snap.backoff_ms_total;
        self.faults_injected = snap.faults_injected;
    }

    /// Cut a checkpoint at the end of tick `at_ms` and append it to the
    /// journal (compacting history past it, per its config).
    fn write_snapshot(&mut self, at_ms: u64) {
        let Some(journal) = self.journal else { return };
        let results = self
            .results
            .iter()
            .flatten()
            .map(|r| SnapResult {
                session: r.session as u64,
                fate: match r.fate {
                    SessionFate::Admitted { degraded: false } => 0,
                    SessionFate::Admitted { degraded: true } => 1,
                    SessionFate::Starved => 2,
                    SessionFate::Rejected => 3,
                    SessionFate::Errored => 4,
                },
                attempts: r.attempts,
                admitted_at_ms: r.admitted_at_ms.unwrap_or(u64::MAX),
            })
            .collect();
        let mut live = Vec::with_capacity(self.live.len());
        for (i, &slot) in self.slots.iter().enumerate() {
            if slot == u32::MAX {
                continue;
            }
            let st = self.live.get(slot).expect("live session");
            live.push(SnapSession {
                session: i as u64,
                attempts: st.attempts,
                rng: st.rng.state_parts(),
                pending_admit: match st.pending_admit {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                },
                closed: st.closed,
                reserved: st.reservation.is_some(),
                holds: st.holds.clone(),
            });
        }
        let mut pending: Vec<(u64, u64, u8, u64)> = self
            .dynq
            .iter()
            .map(|sch| {
                let (kind, session) = match sch.event {
                    Ev::Retry(i) => (0u8, i as u64),
                    Ev::Confirm(i) => (1, i as u64),
                    Ev::Departure(i) => (2, i as u64),
                    Ev::InjectLeak => (3, 0),
                };
                (sch.at.as_micros(), sch.seq, kind, session)
            })
            .collect();
        pending.sort_unstable_by_key(|&(at, seq, _, _)| (at, seq));
        let dynq = pending
            .into_iter()
            .map(|(at_us, _, kind, session)| SnapEvent {
                at_us,
                kind,
                session,
            })
            .collect();
        journal.append_snapshot(&SnapshotState {
            at_ms,
            events_logged: journal.events_total(),
            retries: self.retries,
            backoff_ms_total: self.backoff_ms_total,
            faults_injected: self.faults_injected,
            peak_live: self.peak_live as u64,
            results,
            live,
            dynq,
        });
        self.broker.counter("broker.journal.snapshots", 1);
    }

    /// Capture the re-reservation rows for a just-committed offer — only
    /// when a journal is attached, so the disabled path stays
    /// allocation-free.
    fn hold_rows(&self, offer: Option<&ScoredOffer>) -> Vec<SnapHold> {
        if self.journal.is_none() {
            return Vec::new();
        }
        let Some(offer) = offer else {
            return Vec::new();
        };
        let guarantee = self.broker.session.context().guarantee;
        offer
            .offer
            .variants
            .iter()
            .map(|v| SnapHold {
                server: v.server.0,
                req: StreamRequirement::for_variant(v, guarantee),
                // Discrete media are delivered ahead of playout and hold
                // no steady-state bandwidth (cf. `push_ledger`) — nothing
                // to re-reserve on the network.
                net_bps: (v.blocks_per_second > 0).then(|| charged_bit_rate(v, guarantee)),
            })
            .collect()
    }

    fn finish(&mut self, i: usize, attempts: u32, fate: SessionFate, admitted_at_ms: Option<u64>) {
        debug_assert!(self.results[i].is_none(), "session {i} finished twice");
        self.results[i] = Some(SessionResult {
            session: i,
            fate,
            attempts,
            admitted_at_ms,
        });
    }

    /// One negotiation attempt (arrival or retry) for session `i`.
    fn attempt(&mut self, i: usize, now_ms: u64, arrival: bool) {
        let broker = self.broker;
        let specs = self.specs;
        let slot = if self.slots[i] == u32::MAX {
            let rng = self.rngs[i].take().expect("arrival consumed its RNG once");
            let slot = self.live.insert(LiveSession {
                attempts: 0,
                rng,
                reservation: None,
                pending_admit: None,
                closed: false,
                session_span: None,
                backoff_span: None,
                confirm_span: None,
                explain: self.keeper.is_some().then(SessionAcc::default),
                holds: Vec::new(),
            });
            self.slots[i] = slot;
            self.peak_live = self.peak_live.max(self.live.len());
            slot
        } else {
            self.slots[i]
        };
        {
            let st = self.live.get_mut(slot).expect("live session");
            st.attempts += 1;
            if st.session_span.is_none() {
                st.session_span = broker.recorder.and_then(|r| r.trace_span("session"));
            }
            if let Some(b) = st.backoff_span.take() {
                b.end();
            }
        }
        let spec = &specs[i];
        let attempt_span = broker.recorder.and_then(|r| r.trace_span("attempt"));
        let prep = match self.pool {
            Some(pool) => pool.take(i as u32, arrival),
            None => prepare_session(broker.session.context(), spec, self.keeper.is_some()),
        };
        let mut reserved_offer: Option<ScoredOffer> = None;
        let outcome = match prep {
            Prep::Failed(error) => {
                if let Some(a) = attempt_span {
                    a.end();
                }
                let attempts = self.live.get(slot).expect("live session").attempts;
                self.finish(i, attempts, SessionFate::Errored, None);
                self.record(now_ms, i, OutcomeKind::Errored { error });
                self.close_out(i, now_ms);
                return;
            }
            Prep::Early(status, decisions) => {
                // The fused negotiate path would have emitted the
                // terminal outcome itself; the split path does it here.
                if let Some(rec) = broker.recorder {
                    let s = status.to_string();
                    rec.counter_with("negotiation.outcome", &[("status", &s)], 1);
                    rec.trace_point("negotiation.outcome", &[("status", &s)]);
                }
                (status, None, false, "other", decisions)
            }
            Prep::Offers(ordered, trace, decisions) => {
                let mut out = commit_prepared(
                    broker.session.context(),
                    spec.client,
                    spec.profile,
                    ordered,
                    trace,
                    decisions,
                );
                let transient = out.commit_failures.is_empty()
                    || out.commit_failures.iter().any(|(_, f)| f.transient());
                let reason = refusal_reason(&out.commit_failures);
                reserved_offer = out.reserved_offer.take();
                (
                    out.status,
                    out.reservation,
                    transient,
                    reason,
                    out.decisions,
                )
            }
        };
        if let Some(a) = attempt_span {
            a.end();
        }
        let (status, reservation, transient, reason, decisions) = outcome;
        if let Some(d) = decisions {
            let st = self.live.get_mut(slot).expect("live session");
            if let Some(acc) = st.explain.as_mut() {
                acc.attempts.push(AttemptExplain {
                    at_ms: now_ms,
                    decisions: *d,
                });
            }
        }
        let kind = match status {
            NegotiationStatus::Succeeded => {
                if reservation.is_some() {
                    self.push_ledger(i, now_ms, reserved_offer.as_ref());
                    let holds = self.hold_rows(reserved_offer.as_ref());
                    self.live.get_mut(slot).expect("live session").holds = holds;
                }
                self.live.get_mut(slot).expect("live session").reservation = reservation;
                self.admit(i, slot, now_ms, false)
            }
            NegotiationStatus::FailedWithOffer => {
                if broker.config.accept_degraded {
                    if reservation.is_some() {
                        self.push_ledger(i, now_ms, reserved_offer.as_ref());
                        let holds = self.hold_rows(reserved_offer.as_ref());
                        self.live.get_mut(slot).expect("live session").holds = holds;
                    }
                    self.live.get_mut(slot).expect("live session").reservation = reservation;
                    self.admit(i, slot, now_ms, true)
                } else {
                    if let Some(res) = &reservation {
                        broker.session.release(res);
                    }
                    let attempts = self.live.get(slot).expect("live session").attempts;
                    self.finish(i, attempts, SessionFate::Rejected, None);
                    OutcomeKind::Rejected { status }
                }
            }
            NegotiationStatus::FailedTryLater => {
                self.try_later(i, slot, now_ms, transient, reason, status)
            }
            _ => {
                // FailedWithoutOffer, FailedWithLocalOffer and any future
                // status: terminal, nothing reserved.
                let attempts = self.live.get(slot).expect("live session").attempts;
                self.finish(i, attempts, SessionFate::Rejected, None);
                OutcomeKind::Rejected { status }
            }
        };
        self.record(now_ms, i, kind);
        self.close_out(i, now_ms);
    }

    /// Append a capacity-ledger row for a session whose reservation was
    /// just committed. `depart_ms` starts equal to `admit_ms` and is
    /// stamped for real when the session departs; `ledger_ix` remembers
    /// which row to stamp.
    fn push_ledger(&mut self, i: usize, now_ms: u64, offer: Option<&ScoredOffer>) {
        if self.keeper.is_none() {
            return;
        }
        let Some(offer) = offer else {
            return;
        };
        let guarantee = self.broker.session.context().guarantee;
        let streams = offer
            .offer
            .variants
            .iter()
            .map(|v| StreamRow {
                server: v.server.0,
                // Discrete media are delivered ahead of playout and hold
                // no steady-state bandwidth.
                bps: if v.blocks_per_second > 0 {
                    charged_bit_rate(v, guarantee)
                } else {
                    0
                },
            })
            .collect();
        self.ledger_ix[i] = self.ledger.len() as u32;
        self.ledger.push(LedgerRow {
            session: i as u64,
            admit_ms: now_ms,
            depart_ms: now_ms,
            streams,
        });
    }

    fn admit(&mut self, i: usize, slot: u32, now_ms: u64, degraded: bool) -> OutcomeKind {
        let broker = self.broker;
        let st = self.live.get_mut(slot).expect("live session");
        let attempts = st.attempts;
        if st.reservation.is_some() && broker.config.choice_period_ms > 0 {
            // The paper's choicePeriod: resources stay reserved while the
            // user deliberates; the session turns terminal at Confirm.
            st.pending_admit = Some(degraded);
            st.confirm_span = broker.recorder.and_then(|r| r.trace_span("confirm"));
            let delay = st.rng.range_u64(1, broker.config.choice_period_ms);
            if let Some(acc) = st.explain.as_mut() {
                acc.settlement = Some(Settlement {
                    admitted_at_ms: now_ms,
                    choice_delay_ms: delay,
                    confirmed: false,
                });
            }
            self.dynq
                .schedule(SimTime::from_millis(now_ms + delay), Ev::Confirm(i));
            return OutcomeKind::Admitted {
                degraded,
                attempt: attempts,
            };
        }
        if st.reservation.is_some() {
            if let Some(acc) = st.explain.as_mut() {
                acc.settlement = Some(Settlement {
                    admitted_at_ms: now_ms,
                    choice_delay_ms: 0,
                    confirmed: true,
                });
            }
            let hold = broker.hold_ms(&self.specs[i]).max(1);
            self.dynq
                .schedule(SimTime::from_millis(now_ms + hold), Ev::Departure(i));
        }
        self.finish(
            i,
            attempts,
            SessionFate::Admitted { degraded },
            Some(now_ms),
        );
        OutcomeKind::Admitted {
            degraded,
            attempt: attempts,
        }
    }

    fn try_later(
        &mut self,
        i: usize,
        slot: u32,
        now_ms: u64,
        transient: bool,
        reason: &'static str,
        status: NegotiationStatus,
    ) -> OutcomeKind {
        let broker = self.broker;
        let policy = &broker.config.retry;
        if !transient {
            // Every refusal was load-independent (decode budget, startup
            // bound): waiting cannot help.
            let attempts = self.live.get(slot).expect("live session").attempts;
            self.finish(i, attempts, SessionFate::Rejected, None);
            return OutcomeKind::Rejected { status };
        }
        let attempts = self.live.get(slot).expect("live session").attempts;
        if attempts >= policy.max_attempts {
            self.finish(i, attempts, SessionFate::Starved, None);
            return OutcomeKind::Starved { attempts };
        }
        let backoff = {
            let st = self.live.get_mut(slot).expect("live session");
            broker.config.retry.backoff_ms(attempts, &mut st.rng).max(1)
        };
        let fire_ms = now_ms + backoff;
        if let Some(deadline) = policy.deadline_ms {
            // The deadline is exclusive (see `RetryPolicy::deadline_ms`):
            // a retry firing exactly `deadline` ms after arrival is
            // already past the give-up instant, so `>=`, not `>`.
            if fire_ms.saturating_sub(self.specs[i].arrival_ms) >= deadline {
                self.finish(i, attempts, SessionFate::Starved, None);
                return OutcomeKind::Starved { attempts };
            }
        }
        self.retries += 1;
        self.backoff_ms_total += backoff;
        if let Some(rec) = broker.recorder {
            // The backoff span stays open until the retry fires; the
            // reason point (recorded while it is innermost) is what
            // wait-time attribution splits backoff by.
            if let Some(span) = rec.trace_span("backoff") {
                rec.trace_point("backoff.reason", &[("reason", reason)]);
                self.live.get_mut(slot).expect("live session").backoff_span = Some(span);
            }
        }
        self.dynq
            .schedule(SimTime::from_millis(fire_ms), Ev::Retry(i));
        OutcomeKind::RetryScheduled {
            at_ms: fire_ms,
            attempt: attempts,
        }
    }

    fn confirm(&mut self, i: usize, now_ms: u64) {
        let broker = self.broker;
        let slot = self.slots[i];
        let st = self.live.get_mut(slot).expect("confirm on a live session");
        let degraded = st
            .pending_admit
            .take()
            .expect("Confirm fired without a pending admission");
        if let Some(rec) = broker.recorder {
            rec.trace_point("confirm.decision", &[("decision", "accepted")]);
        }
        if let Some(c) = st.confirm_span.take() {
            c.end();
        }
        if let Some(acc) = st.explain.as_mut() {
            if let Some(s) = acc.settlement.as_mut() {
                s.confirmed = true;
            }
        }
        let attempts = st.attempts;
        if st.reservation.is_some() {
            let hold = broker.hold_ms(&self.specs[i]).max(1);
            self.dynq
                .schedule(SimTime::from_millis(now_ms + hold), Ev::Departure(i));
        }
        self.finish(
            i,
            attempts,
            SessionFate::Admitted { degraded },
            Some(now_ms),
        );
        self.record(now_ms, i, OutcomeKind::Confirmed);
        self.close_out(i, now_ms);
    }

    fn departure(&mut self, i: usize, now_ms: u64) {
        let slot = self.slots[i];
        let res = self
            .live
            .get_mut(slot)
            .expect("departure of a live session")
            .reservation
            .take();
        if let Some(res) = res {
            self.broker.session.release(&res);
        }
        // An admitted session is closed by the time it departs; its slab
        // slot — the last thing keeping it live — is recycled here.
        let st = self.live.remove(slot);
        debug_assert!(st.closed, "session {i} departed before closing");
        self.slots[i] = u32::MAX;
        if let Some(&ix) = self.ledger_ix.get(i) {
            if ix != u32::MAX {
                self.ledger[ix as usize].depart_ms = now_ms;
            }
        }
        self.record(now_ms, i, OutcomeKind::Departed);
    }

    fn fault_edge(&mut self, faults: &FaultPlan, now_ms: u64) {
        let broker = self.broker;
        let ctx = broker.session.context();
        faults.apply_state_at(ctx.farm, ctx.network, now_ms);
        let starts = faults
            .windows
            .iter()
            .filter(|w| w.from_ms == now_ms)
            .count() as u64;
        if starts > 0 {
            self.faults_injected += starts;
            broker.counter("broker.faults.injected", starts);
        }
        self.record(now_ms, usize::MAX, OutcomeKind::FaultEdge);
    }

    fn inject_leak(&mut self) {
        // Deliberately strand one stream so the end-of-run audit trips
        // (and, with a tracer, the flight recorder dumps). Test-only,
        // gated by the config hook.
        let broker = self.broker;
        let ctx = broker.session.context();
        if let Some(&id) = ctx.farm.ids().first() {
            let req = StreamRequirement {
                variant: VariantId(u64::MAX),
                max_bit_rate: 8_000,
                avg_bit_rate: 8_000,
                max_block_bytes: 1_000,
                avg_block_bytes: 1_000,
                blocks_per_second: 1,
                guarantee: Guarantee::BestEffort,
            };
            if ctx.farm.try_reserve(id, req).is_ok() {
                broker.counter("broker.chaos.leaks_injected", 1);
            }
        }
    }

    /// Terminal close-out: record latency once, close the session's
    /// trace span (outcome point first, while it is still the innermost
    /// open span), feed the SLO monitor and the tail sampler, and — when
    /// nothing is held — recycle the slab slot.
    fn close_out(&mut self, i: usize, now_ms: u64) {
        let broker = self.broker;
        let slot = self.slots[i];
        let Some(st) = self.live.get_mut(slot) else {
            return;
        };
        if st.closed || self.results[i].is_none() {
            return;
        }
        st.closed = true;
        let result = self.results[i].as_ref().expect("just checked");
        let total_ms = now_ms.saturating_sub(self.specs[i].arrival_ms);
        if let Some(rec) = broker.recorder {
            rec.observe("broker.session_ms", total_ms as f64);
            rec.trace_point("session.outcome", &[("fate", fate_label(result.fate))]);
        }
        if let Some(span) = st.session_span.take() {
            span.end();
        }
        let failed = !matches!(result.fate, SessionFate::Admitted { .. });
        let latency_ms = result
            .admitted_at_ms
            .map(|at| at.saturating_sub(self.specs[i].arrival_ms) as f64);
        let attempts = result.attempts as u64;
        let fate = fate_label(result.fate);
        let holds = st.reservation.is_some();
        let acc = st.explain.take();
        self.latency.record(total_ms as f64);
        self.slo
            .on_session(broker.recorder, now_ms, latency_ms, failed, attempts);
        // Tail sampling: with a retention policy attached the tracer
        // keeps failures, the top-k slowest and the seeded baseline, and
        // drops the rest now.
        if let Some(t) = self.tracer {
            t.finish_session(i as u64, failed, ms_to_us(total_ms));
        }
        if let Some(keeper) = self.keeper.as_mut() {
            let arrival_ms = self.specs[i].arrival_ms;
            keeper.finish_with(i as u64, failed, ms_to_us(total_ms), || {
                let acc = acc.unwrap_or_default();
                SessionExplain {
                    session: i as u64,
                    arrival_ms,
                    fate: fate.to_string(),
                    duration_ms: total_ms,
                    attempts: acc.attempts,
                    settlement: acc.settlement,
                    adaptations: Vec::new(),
                }
            });
        }
        if !holds {
            self.live.remove(slot);
            self.slots[i] = u32::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ms_to_us;

    #[test]
    fn ms_to_us_is_exact_in_range() {
        assert_eq!(ms_to_us(0), 0);
        assert_eq!(ms_to_us(5), 5_000);
        // The largest millisecond count with an exact microsecond image.
        let top = u64::MAX / 1_000;
        assert_eq!(ms_to_us(top), top * 1_000);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflows the microsecond clock")]
    fn ms_to_us_panics_on_overflow_in_debug() {
        ms_to_us(u64::MAX / 1_000 + 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn ms_to_us_saturates_on_overflow_in_release() {
        // In release builds the conversion still refuses to wrap: it
        // pins to the end of time instead of jumping backwards.
        assert_eq!(ms_to_us(u64::MAX / 1_000 + 1), u64::MAX);
        assert_eq!(ms_to_us(u64::MAX), u64::MAX);
    }
}
