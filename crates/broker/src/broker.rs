//! The concurrent negotiation broker.
//!
//! [`Broker::run`] drives N sessions against one shared
//! [`ServerFarm`](nod_cmfs::ServerFarm) + [`Network`](nod_netsim::Network)
//! on a deterministic virtual-time event loop
//! ([`EventQueue`](nod_simcore::EventQueue)): arrivals, jittered retries
//! of FAILEDTRYLATER refusals, departures that release held resources,
//! and [`FaultPlan`] window edges. Per-session RNGs are pre-split from
//! the config seed by session index, so backoff jitter is independent of
//! processing interleavings — the same seed, specs and fault plan replay
//! the identical [`OutcomeEvent`] sequence bit for bit.
//!
//! [`Broker::run_threaded`] is the complementary *stress* mode: real OS
//! threads race the same shared farm/network through the full
//! reserve-server → reserve-network → confirm commit path, with results
//! folded through a [`Sharded`] lock. Its interleavings are
//! scheduler-dependent (only per-session backoff draws are seeded), so it
//! audits invariants — no leaked capacity, no deadlock — rather than
//! exact outcomes.

use std::sync::atomic::{AtomicUsize, Ordering};

use nod_client::ClientMachine;
use nod_mmdoc::DocumentId;
use nod_obs::Recorder;
use nod_qosneg::negotiate::{NegotiationContext, SessionReservation};
use nod_qosneg::{NegotiationRequest, NegotiationStatus, RetryPolicy, Session, UserProfile};
use nod_simcore::sync::Sharded;
use nod_simcore::{EventQueue, SimTime, StreamRng};

use crate::audit::CapacitySnapshot;
use crate::fault::FaultPlan;

/// Broker-level policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// Retry policy applied to FAILEDTRYLATER refusals.
    pub retry: RetryPolicy,
    /// Accept a FAILEDWITHOFFER (degraded but reserved) outcome? When
    /// `false` the broker releases the degraded reservation and counts
    /// the session rejected.
    pub accept_degraded: bool,
    /// Session hold time when neither the spec nor the document supplies
    /// one, ms.
    pub default_hold_ms: u64,
    /// Seed for the per-session RNG family (backoff jitter).
    pub seed: u64,
}

impl BrokerConfig {
    /// Plausible interactive defaults: era retry policy, degraded offers
    /// accepted, 30 s default hold.
    pub fn era_default() -> Self {
        BrokerConfig {
            retry: RetryPolicy::era_default(),
            accept_degraded: true,
            default_hold_ms: 30_000,
            seed: 0x6272_6f6b,
        }
    }
}

/// One session the broker must place: who, what, when, for how long.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec<'a> {
    /// The requesting client machine.
    pub client: &'a ClientMachine,
    /// The requested document.
    pub document: DocumentId,
    /// The user's profile.
    pub profile: &'a UserProfile,
    /// Arrival instant on the broker clock, ms.
    pub arrival_ms: u64,
    /// How long an admitted session holds its resources, ms. `None`
    /// falls back to the document's total duration, then to
    /// [`BrokerConfig::default_hold_ms`].
    pub hold_ms: Option<u64>,
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionFate {
    /// Resources committed (possibly below the requested QoS).
    Admitted {
        /// `true` when admission came from a FAILEDWITHOFFER outcome.
        degraded: bool,
    },
    /// FAILEDTRYLATER every time until the retry budget or deadline ran
    /// out — the contention casualty the paper's status is named for.
    Starved,
    /// A terminal refusal (FAILEDWITHOUTOFFER, FAILEDWITHLOCALOFFER, a
    /// non-transient FAILEDTRYLATER, or a declined degraded offer).
    Rejected,
    /// The negotiation itself failed (unknown document, invalid request).
    Errored,
}

/// Per-session summary, indexed like the input spec slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Index into the spec slice.
    pub session: usize,
    /// Terminal fate.
    pub fate: SessionFate,
    /// Attempts made (1 = admitted or refused on arrival).
    pub attempts: u32,
    /// Admission instant, ms — `None` unless admitted.
    pub admitted_at_ms: Option<u64>,
}

/// One entry in the chronological outcome log — the replay unit: two
/// runs with identical seed/specs/faults produce identical event vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeEvent {
    /// Broker virtual time, ms.
    pub at_ms: u64,
    /// Session index (`usize::MAX` for fault edges).
    pub session: usize,
    /// What happened.
    pub kind: OutcomeKind,
}

/// The event kinds of the outcome log.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeKind {
    /// Session admitted on attempt `attempt`.
    Admitted {
        /// `true` for a FAILEDWITHOFFER admission.
        degraded: bool,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// FAILEDTRYLATER; retry scheduled.
    RetryScheduled {
        /// When the retry fires, ms.
        at_ms: u64,
        /// The attempt that was just refused.
        attempt: u32,
    },
    /// Retry budget or deadline exhausted.
    Starved {
        /// Total attempts made.
        attempts: u32,
    },
    /// Terminal refusal.
    Rejected {
        /// The status that ended the session.
        status: NegotiationStatus,
    },
    /// Negotiation error (stringified [`nod_qosneg::QosError`]).
    Errored {
        /// The error display text.
        error: String,
    },
    /// An admitted session released its resources.
    Departed,
    /// A fault window started or ended; target state recomputed.
    FaultEdge,
}

/// Aggregate result of a broker run.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerReport {
    /// Per-session results, in spec order.
    pub results: Vec<SessionResult>,
    /// Chronological outcome log (the replay unit).
    pub events: Vec<OutcomeEvent>,
    /// Sessions admitted (degraded included).
    pub admitted: usize,
    /// Admitted sessions that took a degraded offer.
    pub degraded: usize,
    /// Sessions starved out by contention.
    pub starved: usize,
    /// Sessions terminally refused.
    pub rejected: usize,
    /// Sessions that errored.
    pub errored: usize,
    /// Retries performed.
    pub retries: u64,
    /// Total virtual time spent backing off, ms.
    pub backoff_ms_total: u64,
    /// Fault windows whose start edge fired.
    pub faults_injected: u64,
    /// Streams (server or network side) still held after the run drained
    /// — must be 0; see [`CapacitySnapshot`].
    pub leaked_streams: usize,
    /// `admitted / sessions`.
    pub admission_ratio: f64,
}

enum Ev {
    FaultEdge,
    Arrival(usize),
    Retry(usize),
    Departure(usize),
}

struct SessState {
    attempts: u32,
    rng: StreamRng,
    reservation: Option<SessionReservation>,
    result: Option<SessionResult>,
}

/// The broker: a [`Session`] facade plus contention policy.
pub struct Broker<'a> {
    session: Session<'a>,
    config: BrokerConfig,
    recorder: Option<&'a Recorder>,
}

impl<'a> Broker<'a> {
    /// A broker over shared system state. The context's recorder (when
    /// present) also receives the broker's own counters and gauges.
    pub fn new(ctx: NegotiationContext<'a>, config: BrokerConfig) -> Self {
        Broker {
            recorder: ctx.recorder,
            session: Session::new(ctx),
            config,
        }
    }

    /// The underlying negotiation session facade.
    pub fn session(&self) -> &Session<'a> {
        &self.session
    }

    fn counter(&self, name: &str, delta: u64) {
        if let Some(rec) = self.recorder {
            rec.counter(name, delta);
        }
    }

    fn hold_ms(&self, spec: &SessionSpec<'_>) -> u64 {
        spec.hold_ms.unwrap_or_else(|| {
            self.session
                .context()
                .catalog
                .document(spec.document)
                .and_then(|d| d.total_duration_ms().ok())
                .unwrap_or(self.config.default_hold_ms)
        })
    }

    /// Drive every spec to a terminal fate on the virtual clock.
    ///
    /// Deterministic: the event queue breaks time ties by schedule order,
    /// and each session draws jitter from its own pre-split RNG, so the
    /// returned [`BrokerReport::events`] log replays exactly for a given
    /// (seed, specs, faults) triple.
    pub fn run(&self, specs: &[SessionSpec<'_>], faults: &FaultPlan) -> BrokerReport {
        let ctx = self.session.context();
        let before = CapacitySnapshot::capture(ctx.farm, ctx.network);

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for &edge in &faults.edges_ms() {
            queue.schedule(SimTime::from_millis(edge), Ev::FaultEdge);
        }
        let mut master = StreamRng::new(self.config.seed);
        let mut sessions: Vec<SessState> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                queue.schedule(SimTime::from_millis(spec.arrival_ms), Ev::Arrival(i));
                SessState {
                    attempts: 0,
                    rng: master.split(),
                    reservation: None,
                    result: None,
                }
            })
            .collect();

        let mut events: Vec<OutcomeEvent> = Vec::new();
        let mut retries = 0u64;
        let mut backoff_ms_total = 0u64;
        let mut faults_injected = 0u64;

        while let Some((at, ev)) = queue.pop() {
            let now_ms = at.as_millis();
            if let Some(rec) = self.recorder {
                rec.set_sim_time_us(at.as_micros());
            }
            match ev {
                Ev::FaultEdge => {
                    faults.apply_state_at(ctx.farm, ctx.network, now_ms);
                    let starts = faults
                        .windows
                        .iter()
                        .filter(|w| w.from_ms == now_ms)
                        .count() as u64;
                    if starts > 0 {
                        faults_injected += starts;
                        self.counter("broker.faults.injected", starts);
                    }
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: usize::MAX,
                        kind: OutcomeKind::FaultEdge,
                    });
                }
                Ev::Arrival(i) | Ev::Retry(i) => {
                    let spec = &specs[i];
                    let st = &mut sessions[i];
                    st.attempts += 1;
                    let request = NegotiationRequest::new(spec.client, spec.document, spec.profile);
                    let kind = match self.session.submit(&request) {
                        Ok(out) => match out.status {
                            NegotiationStatus::Succeeded => {
                                st.reservation = out.reservation;
                                self.admit(i, st, spec, now_ms, false, &mut queue)
                            }
                            NegotiationStatus::FailedWithOffer => {
                                if self.config.accept_degraded {
                                    st.reservation = out.reservation;
                                    self.admit(i, st, spec, now_ms, true, &mut queue)
                                } else {
                                    if let Some(res) = &out.reservation {
                                        self.session.release(res);
                                    }
                                    self.finish(i, st, SessionFate::Rejected, None);
                                    OutcomeKind::Rejected { status: out.status }
                                }
                            }
                            NegotiationStatus::FailedTryLater => {
                                let transient = out.commit_failures.is_empty()
                                    || out.commit_failures.iter().any(|(_, f)| f.transient());
                                self.try_later(
                                    i,
                                    st,
                                    spec,
                                    now_ms,
                                    transient,
                                    out.status,
                                    &mut queue,
                                    &mut retries,
                                    &mut backoff_ms_total,
                                )
                            }
                            _ => {
                                // FailedWithoutOffer, FailedWithLocalOffer
                                // and any future status: terminal, nothing
                                // reserved.
                                self.finish(i, st, SessionFate::Rejected, None);
                                OutcomeKind::Rejected { status: out.status }
                            }
                        },
                        Err(err) => {
                            self.finish(i, st, SessionFate::Errored, None);
                            OutcomeKind::Errored {
                                error: err.to_string(),
                            }
                        }
                    };
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: i,
                        kind,
                    });
                }
                Ev::Departure(i) => {
                    let st = &mut sessions[i];
                    if let Some(res) = st.reservation.take() {
                        self.session.release(&res);
                    }
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: i,
                        kind: OutcomeKind::Departed,
                    });
                }
            }
        }

        let after = CapacitySnapshot::capture(ctx.farm, ctx.network);
        let leaked_streams = before.leaked_streams(&after);
        if before != after {
            self.counter("broker.leaked_reservations", leaked_streams.max(1) as u64);
            debug_assert_eq!(
                before, after,
                "broker run leaked reservations: {before:?} -> {after:?}"
            );
        }

        let results: Vec<SessionResult> = sessions
            .into_iter()
            .enumerate()
            .map(|(i, st)| {
                st.result
                    .unwrap_or_else(|| unreachable!("session {i} never reached a terminal fate"))
            })
            .collect();
        let admitted = results
            .iter()
            .filter(|r| matches!(r.fate, SessionFate::Admitted { .. }))
            .count();
        let degraded = results
            .iter()
            .filter(|r| matches!(r.fate, SessionFate::Admitted { degraded: true }))
            .count();
        let starved = results
            .iter()
            .filter(|r| r.fate == SessionFate::Starved)
            .count();
        let rejected = results
            .iter()
            .filter(|r| r.fate == SessionFate::Rejected)
            .count();
        let errored = results
            .iter()
            .filter(|r| r.fate == SessionFate::Errored)
            .count();
        let admission_ratio = if specs.is_empty() {
            0.0
        } else {
            admitted as f64 / specs.len() as f64
        };
        if let Some(rec) = self.recorder {
            rec.counter("broker.retries", retries);
            rec.counter("broker.backoff_ms", backoff_ms_total);
            rec.counter("broker.sessions.starved", starved as u64);
            rec.gauge("broker.admission_ratio", admission_ratio);
        }
        BrokerReport {
            results,
            events,
            admitted,
            degraded,
            starved,
            rejected,
            errored,
            retries,
            backoff_ms_total,
            faults_injected,
            leaked_streams,
            admission_ratio,
        }
    }

    fn admit(
        &self,
        i: usize,
        st: &mut SessState,
        spec: &SessionSpec<'_>,
        now_ms: u64,
        degraded: bool,
        queue: &mut EventQueue<Ev>,
    ) -> OutcomeKind {
        if st.reservation.is_some() {
            let hold = self.hold_ms(spec).max(1);
            queue.schedule(SimTime::from_millis(now_ms + hold), Ev::Departure(i));
        }
        self.finish(i, st, SessionFate::Admitted { degraded }, Some(now_ms));
        OutcomeKind::Admitted {
            degraded,
            attempt: st.attempts,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_later(
        &self,
        i: usize,
        st: &mut SessState,
        spec: &SessionSpec<'_>,
        now_ms: u64,
        transient: bool,
        status: NegotiationStatus,
        queue: &mut EventQueue<Ev>,
        retries: &mut u64,
        backoff_ms_total: &mut u64,
    ) -> OutcomeKind {
        if !transient {
            // Every refusal was load-independent (decode budget, startup
            // bound): waiting cannot help.
            self.finish(i, st, SessionFate::Rejected, None);
            return OutcomeKind::Rejected { status };
        }
        let policy = &self.config.retry;
        if st.attempts >= policy.max_attempts {
            self.finish(i, st, SessionFate::Starved, None);
            return OutcomeKind::Starved {
                attempts: st.attempts,
            };
        }
        let backoff = self
            .config
            .retry
            .backoff_ms(st.attempts, &mut st.rng)
            .max(1);
        let fire_ms = now_ms + backoff;
        if let Some(deadline) = policy.deadline_ms {
            if fire_ms.saturating_sub(spec.arrival_ms) > deadline {
                self.finish(i, st, SessionFate::Starved, None);
                return OutcomeKind::Starved {
                    attempts: st.attempts,
                };
            }
        }
        *retries += 1;
        *backoff_ms_total += backoff;
        queue.schedule(SimTime::from_millis(fire_ms), Ev::Retry(i));
        OutcomeKind::RetryScheduled {
            at_ms: fire_ms,
            attempt: st.attempts,
        }
    }

    fn finish(&self, i: usize, st: &mut SessState, fate: SessionFate, admitted_at_ms: Option<u64>) {
        debug_assert!(st.result.is_none(), "session {i} finished twice");
        st.result = Some(SessionResult {
            session: i,
            fate,
            attempts: st.attempts,
            admitted_at_ms,
        });
    }

    /// Race the specs across `threads` real OS threads against the shared
    /// farm/network — the lock-order and leak smoke test. Retries are
    /// immediate (bounded by the retry policy's `max_attempts`); admitted
    /// reservations are held until every thread finishes, then released
    /// and the capacity audit runs. Returns `(admitted, leaked_streams)`.
    ///
    /// Outcomes are scheduler-dependent; only invariants (termination, no
    /// leaked capacity) are stable. Use [`Broker::run`] for replayable
    /// experiments.
    pub fn run_threaded(&self, specs: &[SessionSpec<'_>], threads: usize) -> (usize, usize) {
        assert!(threads >= 1);
        let ctx = self.session.context();
        let before = CapacitySnapshot::capture(ctx.farm, ctx.network);
        let next = AtomicUsize::new(0);
        let held: Sharded<Vec<SessionReservation>> = Sharded::new(threads.min(8), Vec::new);
        let admitted = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let mut rng = StreamRng::new(
                        self.config
                            .seed
                            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    let request = NegotiationRequest::new(spec.client, spec.document, spec.profile);
                    for _attempt in 0..self.config.retry.max_attempts.max(1) {
                        let Ok(out) = self.session.submit(&request) else {
                            break;
                        };
                        match out.status {
                            NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer => {
                                if let Some(res) = out.reservation {
                                    held.lock_key(i as u64).push(res);
                                }
                                admitted.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            NegotiationStatus::FailedTryLater => {
                                let transient = out.commit_failures.is_empty()
                                    || out.commit_failures.iter().any(|(_, f)| f.transient());
                                if !transient {
                                    break;
                                }
                                // Draw (and discard) the jitter so the
                                // per-session RNG stream matches run()'s
                                // consumption pattern.
                                let _ = self.config.retry.backoff_ms(1, &mut rng);
                            }
                            _ => break,
                        }
                    }
                });
            }
        });

        for reservations in held.into_inner() {
            for res in &reservations {
                self.session.release(res);
            }
        }
        let after = CapacitySnapshot::capture(ctx.farm, ctx.network);
        let leaked = before.leaked_streams(&after);
        if before != after {
            self.counter("broker.leaked_reservations", leaked.max(1) as u64);
            debug_assert_eq!(before, after, "threaded broker run leaked reservations");
        }
        (admitted.load(Ordering::Relaxed), leaked)
    }
}
