//! The concurrent negotiation broker.
//!
//! [`Broker::run`] drives N sessions against one shared
//! [`ServerFarm`](nod_cmfs::ServerFarm) + [`Network`](nod_netsim::Network)
//! on a deterministic virtual-time event loop
//! ([`EventQueue`](nod_simcore::EventQueue)): arrivals, jittered retries
//! of FAILEDTRYLATER refusals, departures that release held resources,
//! and [`FaultPlan`] window edges. Per-session RNGs are pre-split from
//! the config seed by session index, so backoff jitter is independent of
//! processing interleavings — the same seed, specs and fault plan replay
//! the identical [`OutcomeEvent`] sequence bit for bit.
//!
//! [`Broker::run_threaded`] is the complementary *throughput* mode: real
//! OS threads race the negotiation pipeline against the same shared
//! farm/network. Steps 1–4 ([`prepare`]) read only the catalog and static
//! topology, so they run truly in parallel; the step-5 commit walks — the
//! only part that touches live capacity — are serialized in session order
//! behind a ticket, and the recorder clock is pinned, so the same seed
//! and specs produce the same admissions, counters and merged metric
//! snapshot at every thread count (see the sharded
//! [`Recorder`](nod_obs::Recorder) determinism contract).

use std::sync::atomic::{AtomicUsize, Ordering};

use nod_client::ClientMachine;
use nod_cmfs::{Guarantee, StreamRequirement};
use nod_mmdoc::{DocumentId, VariantId};
use nod_obs::{
    HistogramSnapshot, Recorder, SloAlert, SloMonitor, SloSpec, Span, Tracer, ValueHistogram,
};
use nod_qosneg::negotiate::{
    commit_prepared, prepare, CommitFailure, NegotiationContext, Prepared, SessionReservation,
};
use nod_qosneg::{NegotiationRequest, NegotiationStatus, RetryPolicy, Session, UserProfile};
use nod_simcore::sync::Sharded;
use nod_simcore::{EventQueue, SimTime, StreamRng};

use crate::audit::CapacitySnapshot;
use crate::fault::FaultPlan;

/// Broker-level policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokerConfig {
    /// Retry policy applied to FAILEDTRYLATER refusals.
    pub retry: RetryPolicy,
    /// Accept a FAILEDWITHOFFER (degraded but reserved) outcome? When
    /// `false` the broker releases the degraded reservation and counts
    /// the session rejected.
    pub accept_degraded: bool,
    /// Session hold time when neither the spec nor the document supplies
    /// one, ms.
    pub default_hold_ms: u64,
    /// Seed for the per-session RNG family (backoff jitter).
    pub seed: u64,
    /// Upper bound of the user's decision window (the paper's
    /// *choicePeriod*), ms. When non-zero, an admitted session keeps its
    /// reservation pending while the simulated user deliberates for a
    /// per-session random `1..=choice_period_ms`, then confirms
    /// ([`OutcomeKind::Confirmed`]) and starts its hold. Zero (the
    /// default) confirms instantly, preserving the original event logs.
    pub choice_period_ms: u64,
    /// Chaos hook: at this instant, deliberately reserve (and never
    /// release) one stream on the first server, so the end-of-run
    /// capacity audit must fire. Exercises the flight-recorder dump path;
    /// never set outside tests.
    pub inject_leak_at_ms: Option<u64>,
}

impl BrokerConfig {
    /// Plausible interactive defaults: era retry policy, degraded offers
    /// accepted, 30 s default hold.
    pub fn era_default() -> Self {
        BrokerConfig {
            retry: RetryPolicy::era_default(),
            accept_degraded: true,
            default_hold_ms: 30_000,
            seed: 0x6272_6f6b,
            choice_period_ms: 0,
            inject_leak_at_ms: None,
        }
    }
}

/// One session the broker must place: who, what, when, for how long.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec<'a> {
    /// The requesting client machine.
    pub client: &'a ClientMachine,
    /// The requested document.
    pub document: DocumentId,
    /// The user's profile.
    pub profile: &'a UserProfile,
    /// Arrival instant on the broker clock, ms.
    pub arrival_ms: u64,
    /// How long an admitted session holds its resources, ms. `None`
    /// falls back to the document's total duration, then to
    /// [`BrokerConfig::default_hold_ms`].
    pub hold_ms: Option<u64>,
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionFate {
    /// Resources committed (possibly below the requested QoS).
    Admitted {
        /// `true` when admission came from a FAILEDWITHOFFER outcome.
        degraded: bool,
    },
    /// FAILEDTRYLATER every time until the retry budget or deadline ran
    /// out — the contention casualty the paper's status is named for.
    Starved,
    /// A terminal refusal (FAILEDWITHOUTOFFER, FAILEDWITHLOCALOFFER, a
    /// non-transient FAILEDTRYLATER, or a declined degraded offer).
    Rejected,
    /// The negotiation itself failed (unknown document, invalid request).
    Errored,
}

/// Per-session summary, indexed like the input spec slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Index into the spec slice.
    pub session: usize,
    /// Terminal fate.
    pub fate: SessionFate,
    /// Attempts made (1 = admitted or refused on arrival).
    pub attempts: u32,
    /// Admission instant, ms — `None` unless admitted.
    pub admitted_at_ms: Option<u64>,
}

/// One entry in the chronological outcome log — the replay unit: two
/// runs with identical seed/specs/faults produce identical event vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeEvent {
    /// Broker virtual time, ms.
    pub at_ms: u64,
    /// Session index (`usize::MAX` for fault edges).
    pub session: usize,
    /// What happened.
    pub kind: OutcomeKind,
}

/// The event kinds of the outcome log.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeKind {
    /// Session admitted on attempt `attempt`.
    Admitted {
        /// `true` for a FAILEDWITHOFFER admission.
        degraded: bool,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// FAILEDTRYLATER; retry scheduled.
    RetryScheduled {
        /// When the retry fires, ms.
        at_ms: u64,
        /// The attempt that was just refused.
        attempt: u32,
    },
    /// Retry budget or deadline exhausted.
    Starved {
        /// Total attempts made.
        attempts: u32,
    },
    /// Terminal refusal.
    Rejected {
        /// The status that ended the session.
        status: NegotiationStatus,
    },
    /// Negotiation error (stringified [`nod_qosneg::QosError`]).
    Errored {
        /// The error display text.
        error: String,
    },
    /// The user confirmed a pending admission after the choicePeriod
    /// window ([`BrokerConfig::choice_period_ms`]).
    Confirmed,
    /// An admitted session released its resources.
    Departed,
    /// A fault window started or ended; target state recomputed.
    FaultEdge,
}

/// Aggregate result of a broker run.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerReport {
    /// Per-session results, in spec order.
    pub results: Vec<SessionResult>,
    /// Chronological outcome log (the replay unit).
    pub events: Vec<OutcomeEvent>,
    /// Sessions admitted (degraded included).
    pub admitted: usize,
    /// Admitted sessions that took a degraded offer.
    pub degraded: usize,
    /// Sessions starved out by contention.
    pub starved: usize,
    /// Sessions terminally refused.
    pub rejected: usize,
    /// Sessions that errored.
    pub errored: usize,
    /// Retries performed.
    pub retries: u64,
    /// Total virtual time spent backing off, ms.
    pub backoff_ms_total: u64,
    /// Fault windows whose start edge fired.
    pub faults_injected: u64,
    /// Streams (server or network side) still held after the run drained
    /// — must be 0; see [`CapacitySnapshot`].
    pub leaked_streams: usize,
    /// `admitted / sessions`.
    pub admission_ratio: f64,
    /// End-to-end session latency (arrival → terminal event), ms. Exact
    /// moments; log-bucketed p50/p90/p95/p99 (≤1% relative error at any
    /// session count, and mergeable across runs).
    pub latency: HistogramSnapshot,
    /// SLO burn alerts fired during the run ([`Broker::with_slos`]);
    /// empty when no objectives were configured.
    pub slo_alerts: Vec<SloAlert>,
}

enum Ev {
    FaultEdge,
    Arrival(usize),
    Retry(usize),
    Confirm(usize),
    Departure(usize),
    InjectLeak,
}

struct SessState {
    attempts: u32,
    rng: StreamRng,
    reservation: Option<SessionReservation>,
    result: Option<SessionResult>,
    /// Degraded flag of an admission awaiting user confirmation.
    pending_admit: Option<bool>,
    /// Latency recorded and session span closed.
    closed: bool,
    /// Open trace spans (only when a tracer is attached).
    session_span: Option<Span>,
    backoff_span: Option<Span>,
    confirm_span: Option<Span>,
}

/// Classify a FAILEDTRYLATER's commit failures by what the session will
/// be waiting *for* — the label wait-time attribution splits backoff by.
fn refusal_reason(failures: &[(usize, CommitFailure)]) -> &'static str {
    let mut server = false;
    let mut network = false;
    for (_, f) in failures {
        match f {
            CommitFailure::Server { .. } => server = true,
            CommitFailure::Network { .. } | CommitFailure::PathQos { .. } => network = true,
            CommitFailure::DecodeBudget | CommitFailure::Startup { .. } => {}
        }
    }
    match (server, network) {
        (true, false) => "admission",
        (false, true) => "network",
        (true, true) => "mixed",
        (false, false) => "other",
    }
}

fn fate_label(fate: SessionFate) -> &'static str {
    match fate {
        SessionFate::Admitted { degraded: false } => "admitted",
        SessionFate::Admitted { degraded: true } => "admitted_degraded",
        SessionFate::Starved => "starved",
        SessionFate::Rejected => "rejected",
        SessionFate::Errored => "errored",
    }
}

/// The broker: a [`Session`] facade plus contention policy.
pub struct Broker<'a> {
    session: Session<'a>,
    config: BrokerConfig,
    recorder: Option<&'a Recorder>,
    slos: Vec<SloSpec>,
}

impl<'a> Broker<'a> {
    /// A broker over shared system state. The context's recorder (when
    /// present) also receives the broker's own counters and gauges.
    pub fn new(ctx: NegotiationContext<'a>, config: BrokerConfig) -> Self {
        Broker {
            recorder: ctx.recorder,
            session: Session::new(ctx),
            config,
            slos: Vec::new(),
        }
    }

    /// Monitor `slos` during [`Broker::run`]: every terminal session
    /// feeds an [`SloMonitor`] on the virtual clock, burning windows and
    /// alerts land in the recorder (`slo.window.burning`, `slo.alert`),
    /// the first alert dumps the flight recorder, and every alert is
    /// returned in [`BrokerReport::slo_alerts`].
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// The underlying negotiation session facade.
    pub fn session(&self) -> &Session<'a> {
        &self.session
    }

    fn counter(&self, name: &str, delta: u64) {
        if let Some(rec) = self.recorder {
            rec.counter(name, delta);
        }
    }

    /// The attached tracer, if the recorder carries one.
    fn tracer(&self) -> Option<&'a Tracer> {
        self.recorder.and_then(|r| r.tracer())
    }

    fn hold_ms(&self, spec: &SessionSpec<'_>) -> u64 {
        spec.hold_ms.unwrap_or_else(|| {
            self.session
                .context()
                .catalog
                .document(spec.document)
                .and_then(|d| d.total_duration_ms().ok())
                .unwrap_or(self.config.default_hold_ms)
        })
    }

    /// Drive every spec to a terminal fate on the virtual clock.
    ///
    /// Deterministic: the event queue breaks time ties by schedule order,
    /// and each session draws jitter from its own pre-split RNG, so the
    /// returned [`BrokerReport::events`] log replays exactly for a given
    /// (seed, specs, faults) triple.
    pub fn run(&self, specs: &[SessionSpec<'_>], faults: &FaultPlan) -> BrokerReport {
        let ctx = self.session.context();
        let before = CapacitySnapshot::capture(ctx.farm, ctx.network);

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for &edge in &faults.edges_ms() {
            queue.schedule(SimTime::from_millis(edge), Ev::FaultEdge);
        }
        let mut master = StreamRng::new(self.config.seed);
        let mut sessions: Vec<SessState> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                queue.schedule(SimTime::from_millis(spec.arrival_ms), Ev::Arrival(i));
                SessState {
                    attempts: 0,
                    rng: master.split(),
                    reservation: None,
                    result: None,
                    pending_admit: None,
                    closed: false,
                    session_span: None,
                    backoff_span: None,
                    confirm_span: None,
                }
            })
            .collect();
        if let Some(at_ms) = self.config.inject_leak_at_ms {
            queue.schedule(SimTime::from_millis(at_ms), Ev::InjectLeak);
        }

        let tracer = self.tracer();
        let mut events: Vec<OutcomeEvent> = Vec::new();
        let mut latency = ValueHistogram::new();
        let mut slo = SloMonitor::new(self.slos.clone());
        let mut retries = 0u64;
        let mut backoff_ms_total = 0u64;
        let mut faults_injected = 0u64;
        let mut end_ms = 0u64;

        while let Some((at, ev)) = queue.pop() {
            let now_ms = at.as_millis();
            end_ms = end_ms.max(now_ms);
            if let Some(rec) = self.recorder {
                rec.set_sim_time_us(at.as_micros());
            }
            // Per-session events run inside that session's trace window.
            if let Some(t) = tracer {
                match ev {
                    Ev::Arrival(i) | Ev::Retry(i) | Ev::Confirm(i) => t.resume(i as u64),
                    _ => {}
                }
            }
            let touched: Option<usize> = match ev {
                Ev::FaultEdge => {
                    faults.apply_state_at(ctx.farm, ctx.network, now_ms);
                    let starts = faults
                        .windows
                        .iter()
                        .filter(|w| w.from_ms == now_ms)
                        .count() as u64;
                    if starts > 0 {
                        faults_injected += starts;
                        self.counter("broker.faults.injected", starts);
                    }
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: usize::MAX,
                        kind: OutcomeKind::FaultEdge,
                    });
                    None
                }
                Ev::InjectLeak => {
                    // Deliberately strand one stream so the end-of-run
                    // audit trips (and, with a tracer, the flight recorder
                    // dumps). Test-only, gated by the config hook.
                    if let Some(&id) = ctx.farm.ids().first() {
                        let req = StreamRequirement {
                            variant: VariantId(u64::MAX),
                            max_bit_rate: 8_000,
                            avg_bit_rate: 8_000,
                            max_block_bytes: 1_000,
                            avg_block_bytes: 1_000,
                            blocks_per_second: 1,
                            guarantee: Guarantee::BestEffort,
                        };
                        if ctx.farm.try_reserve(id, req).is_ok() {
                            self.counter("broker.chaos.leaks_injected", 1);
                        }
                    }
                    None
                }
                Ev::Arrival(i) | Ev::Retry(i) => {
                    let spec = &specs[i];
                    let st = &mut sessions[i];
                    st.attempts += 1;
                    if st.session_span.is_none() {
                        st.session_span = self.recorder.and_then(|r| r.trace_span("session"));
                    }
                    if let Some(b) = st.backoff_span.take() {
                        b.end();
                    }
                    let request = NegotiationRequest::new(spec.client, spec.document, spec.profile);
                    let attempt_span = self.recorder.and_then(|r| r.trace_span("attempt"));
                    let submitted = self.session.submit(&request);
                    if let Some(a) = attempt_span {
                        a.end();
                    }
                    let kind = match submitted {
                        Ok(out) => match out.status {
                            NegotiationStatus::Succeeded => {
                                st.reservation = out.reservation;
                                self.admit(i, st, spec, now_ms, false, &mut queue)
                            }
                            NegotiationStatus::FailedWithOffer => {
                                if self.config.accept_degraded {
                                    st.reservation = out.reservation;
                                    self.admit(i, st, spec, now_ms, true, &mut queue)
                                } else {
                                    if let Some(res) = &out.reservation {
                                        self.session.release(res);
                                    }
                                    self.finish(i, st, SessionFate::Rejected, None);
                                    OutcomeKind::Rejected { status: out.status }
                                }
                            }
                            NegotiationStatus::FailedTryLater => {
                                let transient = out.commit_failures.is_empty()
                                    || out.commit_failures.iter().any(|(_, f)| f.transient());
                                self.try_later(
                                    i,
                                    st,
                                    spec,
                                    now_ms,
                                    transient,
                                    refusal_reason(&out.commit_failures),
                                    out.status,
                                    &mut queue,
                                    &mut retries,
                                    &mut backoff_ms_total,
                                )
                            }
                            _ => {
                                // FailedWithoutOffer, FailedWithLocalOffer
                                // and any future status: terminal, nothing
                                // reserved.
                                self.finish(i, st, SessionFate::Rejected, None);
                                OutcomeKind::Rejected { status: out.status }
                            }
                        },
                        Err(err) => {
                            self.finish(i, st, SessionFate::Errored, None);
                            OutcomeKind::Errored {
                                error: err.to_string(),
                            }
                        }
                    };
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: i,
                        kind,
                    });
                    Some(i)
                }
                Ev::Confirm(i) => {
                    let spec = &specs[i];
                    let st = &mut sessions[i];
                    let degraded = st
                        .pending_admit
                        .take()
                        .expect("Confirm fired without a pending admission");
                    if let Some(rec) = self.recorder {
                        rec.trace_point("confirm.decision", &[("decision", "accepted")]);
                    }
                    if let Some(c) = st.confirm_span.take() {
                        c.end();
                    }
                    if st.reservation.is_some() {
                        let hold = self.hold_ms(spec).max(1);
                        queue.schedule(SimTime::from_millis(now_ms + hold), Ev::Departure(i));
                    }
                    self.finish(i, st, SessionFate::Admitted { degraded }, Some(now_ms));
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: i,
                        kind: OutcomeKind::Confirmed,
                    });
                    Some(i)
                }
                Ev::Departure(i) => {
                    let st = &mut sessions[i];
                    if let Some(res) = st.reservation.take() {
                        self.session.release(&res);
                    }
                    events.push(OutcomeEvent {
                        at_ms: now_ms,
                        session: i,
                        kind: OutcomeKind::Departed,
                    });
                    None
                }
            };
            // Terminal close-out: record latency once and close the
            // session's trace span (outcome point first, while it is
            // still the innermost open span).
            if let Some(i) = touched {
                let st = &mut sessions[i];
                if !st.closed {
                    if let Some(result) = &st.result {
                        st.closed = true;
                        let total_ms = now_ms.saturating_sub(specs[i].arrival_ms);
                        latency.record(total_ms as f64);
                        if let Some(rec) = self.recorder {
                            rec.observe("broker.session_ms", total_ms as f64);
                        }
                        if let Some(rec) = self.recorder {
                            rec.trace_point(
                                "session.outcome",
                                &[("fate", fate_label(result.fate))],
                            );
                        }
                        if let Some(span) = st.session_span.take() {
                            span.end();
                        }
                        let failed = !matches!(result.fate, SessionFate::Admitted { .. });
                        let latency_ms = result
                            .admitted_at_ms
                            .map(|at| at.saturating_sub(specs[i].arrival_ms) as f64);
                        slo.on_session(
                            self.recorder,
                            now_ms,
                            latency_ms,
                            failed,
                            result.attempts as u64,
                        );
                        // Tail sampling: with a retention policy attached
                        // the tracer keeps failures, the top-k slowest and
                        // the seeded baseline, and drops the rest now.
                        if let Some(t) = tracer {
                            t.finish_session(i as u64, failed, total_ms.saturating_mul(1_000));
                        }
                    }
                }
            }
            if let Some(t) = tracer {
                t.suspend();
            }
        }

        let after = CapacitySnapshot::capture(ctx.farm, ctx.network);
        let leaked_streams = before.leaked_streams(&after);
        if before != after {
            self.counter("broker.leaked_reservations", leaked_streams.max(1) as u64);
            // Dump the flight recorder *before* the assert so the last
            // trace events survive the panic.
            if let Some(t) = tracer {
                t.trigger_flight_dump("leaked_reservation_audit");
            }
            debug_assert_eq!(
                before, after,
                "broker run leaked reservations: {before:?} -> {after:?}"
            );
        }

        let results: Vec<SessionResult> = sessions
            .into_iter()
            .enumerate()
            .map(|(i, st)| {
                st.result
                    .unwrap_or_else(|| unreachable!("session {i} never reached a terminal fate"))
            })
            .collect();
        let admitted = results
            .iter()
            .filter(|r| matches!(r.fate, SessionFate::Admitted { .. }))
            .count();
        let degraded = results
            .iter()
            .filter(|r| matches!(r.fate, SessionFate::Admitted { degraded: true }))
            .count();
        let starved = results
            .iter()
            .filter(|r| r.fate == SessionFate::Starved)
            .count();
        let rejected = results
            .iter()
            .filter(|r| r.fate == SessionFate::Rejected)
            .count();
        let errored = results
            .iter()
            .filter(|r| r.fate == SessionFate::Errored)
            .count();
        let admission_ratio = if specs.is_empty() {
            0.0
        } else {
            admitted as f64 / specs.len() as f64
        };
        if let Some(rec) = self.recorder {
            rec.counter("broker.retries", retries);
            rec.counter("broker.backoff_ms", backoff_ms_total);
            rec.counter("broker.sessions.starved", starved as u64);
            rec.gauge("broker.admission_ratio", admission_ratio);
        }
        let slo_alerts = slo.finish(self.recorder, end_ms).to_vec();
        BrokerReport {
            results,
            events,
            admitted,
            degraded,
            starved,
            rejected,
            errored,
            retries,
            backoff_ms_total,
            faults_injected,
            leaked_streams,
            admission_ratio,
            latency: latency.snapshot(),
            slo_alerts,
        }
    }

    fn admit(
        &self,
        i: usize,
        st: &mut SessState,
        spec: &SessionSpec<'_>,
        now_ms: u64,
        degraded: bool,
        queue: &mut EventQueue<Ev>,
    ) -> OutcomeKind {
        if st.reservation.is_some() && self.config.choice_period_ms > 0 {
            // The paper's choicePeriod: resources stay reserved while the
            // user deliberates; the session turns terminal at Confirm.
            st.pending_admit = Some(degraded);
            st.confirm_span = self.recorder.and_then(|r| r.trace_span("confirm"));
            let delay = st.rng.range_u64(1, self.config.choice_period_ms);
            queue.schedule(SimTime::from_millis(now_ms + delay), Ev::Confirm(i));
            return OutcomeKind::Admitted {
                degraded,
                attempt: st.attempts,
            };
        }
        if st.reservation.is_some() {
            let hold = self.hold_ms(spec).max(1);
            queue.schedule(SimTime::from_millis(now_ms + hold), Ev::Departure(i));
        }
        self.finish(i, st, SessionFate::Admitted { degraded }, Some(now_ms));
        OutcomeKind::Admitted {
            degraded,
            attempt: st.attempts,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_later(
        &self,
        i: usize,
        st: &mut SessState,
        spec: &SessionSpec<'_>,
        now_ms: u64,
        transient: bool,
        reason: &'static str,
        status: NegotiationStatus,
        queue: &mut EventQueue<Ev>,
        retries: &mut u64,
        backoff_ms_total: &mut u64,
    ) -> OutcomeKind {
        if !transient {
            // Every refusal was load-independent (decode budget, startup
            // bound): waiting cannot help.
            self.finish(i, st, SessionFate::Rejected, None);
            return OutcomeKind::Rejected { status };
        }
        let policy = &self.config.retry;
        if st.attempts >= policy.max_attempts {
            self.finish(i, st, SessionFate::Starved, None);
            return OutcomeKind::Starved {
                attempts: st.attempts,
            };
        }
        let backoff = self
            .config
            .retry
            .backoff_ms(st.attempts, &mut st.rng)
            .max(1);
        let fire_ms = now_ms + backoff;
        if let Some(deadline) = policy.deadline_ms {
            if fire_ms.saturating_sub(spec.arrival_ms) > deadline {
                self.finish(i, st, SessionFate::Starved, None);
                return OutcomeKind::Starved {
                    attempts: st.attempts,
                };
            }
        }
        *retries += 1;
        *backoff_ms_total += backoff;
        if let Some(rec) = self.recorder {
            // The backoff span stays open until the retry fires; the
            // reason point (recorded while it is innermost) is what
            // wait-time attribution splits backoff by.
            if let Some(span) = rec.trace_span("backoff") {
                rec.trace_point("backoff.reason", &[("reason", reason)]);
                st.backoff_span = Some(span);
            }
        }
        queue.schedule(SimTime::from_millis(fire_ms), Ev::Retry(i));
        OutcomeKind::RetryScheduled {
            at_ms: fire_ms,
            attempt: st.attempts,
        }
    }

    fn finish(&self, i: usize, st: &mut SessState, fate: SessionFate, admitted_at_ms: Option<u64>) {
        debug_assert!(st.result.is_none(), "session {i} finished twice");
        st.result = Some(SessionResult {
            session: i,
            fate,
            attempts: st.attempts,
            admitted_at_ms,
        });
    }

    /// Race the specs across `threads` real OS threads against the shared
    /// farm/network. Steps 1–4 of every session ([`prepare`]) run truly in
    /// parallel — they read only the catalog and static topology — while
    /// the step-5 commit walks, the only part that touches live capacity,
    /// run in strict session order behind a ticket. Retries are immediate
    /// (bounded by the retry policy's `max_attempts`); admitted
    /// reservations are held until every thread finishes, then released
    /// and the capacity audit runs. Returns `(admitted, leaked_streams)`.
    ///
    /// **Determinism contract:** with the recorder clock pinned (done here)
    /// and per-session RNGs pre-split by index, the admissions, every
    /// counter and the merged metric snapshot are identical at every
    /// thread count — `run_threaded(specs, 1)` and `run_threaded(specs,
    /// 8)` over a sharded [`Recorder`] produce byte-identical snapshots.
    /// Only event *interleaving* (sink line order, flight-recorder order)
    /// remains scheduler-dependent.
    pub fn run_threaded(&self, specs: &[SessionSpec<'_>], threads: usize) -> (usize, usize) {
        assert!(threads >= 1);
        let ctx = self.session.context();
        let before = CapacitySnapshot::capture(ctx.farm, ctx.network);
        if let Some(rec) = self.recorder {
            // Pin the clock: span durations (and the histograms built from
            // them) must not depend on the scheduler.
            rec.set_sim_time_us(0);
        }
        let next = AtomicUsize::new(0);
        let commit_turn = AtomicUsize::new(0);
        let held: Sharded<Vec<SessionReservation>> = Sharded::new(threads.min(8), Vec::new);
        let admitted = AtomicUsize::new(0);

        let tracer = self.tracer();
        let max_attempts = self.config.retry.max_attempts.max(1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        // A session is owned by exactly one thread, so the
                        // resume/suspend protocol partitions events into
                        // per-session traces even under racing threads.
                        if let Some(t) = tracer {
                            t.resume(i as u64);
                        }
                        let session_span = self.recorder.and_then(|r| r.trace_span("session"));
                        let mut rng = StreamRng::new(
                            self.config
                                .seed
                                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        );
                        // Steps 1–4 in parallel: load-independent, so the
                        // result (and its counters) cannot depend on other
                        // sessions' in-flight commits.
                        let prepared = prepare(ctx, spec.client, spec.document, spec.profile);

                        // Step 5 in session order: indices are claimed in
                        // increasing order and each holder only waits on
                        // lower turns, so the ticket cannot deadlock.
                        while commit_turn.load(Ordering::Acquire) != i {
                            std::thread::yield_now();
                        }
                        let mut ok = false;
                        // Backoff the event-loop broker would have slept,
                        // accounted as this session's duration for the tail
                        // sampler's top-k (there is no virtual clock here).
                        let mut waited_ms = 0u64;
                        match prepared {
                            Err(_) => {}
                            Ok(Prepared::Early(out)) => {
                                if let Some(rec) = self.recorder {
                                    let status = out.status.to_string();
                                    rec.counter_with(
                                        "negotiation.outcome",
                                        &[("status", &status)],
                                        1,
                                    );
                                    rec.trace_point("negotiation.outcome", &[("status", &status)]);
                                }
                            }
                            Ok(Prepared::Offers(mut ordered, trace)) => {
                                for attempt in 1..=max_attempts {
                                    let attempt_span =
                                        self.recorder.and_then(|r| r.trace_span("attempt"));
                                    let out = commit_prepared(
                                        ctx,
                                        spec.client,
                                        spec.profile,
                                        ordered,
                                        trace,
                                    );
                                    if let Some(a) = attempt_span {
                                        a.end();
                                    }
                                    match out.status {
                                        NegotiationStatus::Succeeded
                                        | NegotiationStatus::FailedWithOffer => {
                                            if let Some(res) = out.reservation {
                                                held.lock_key(i as u64).push(res);
                                            }
                                            admitted.fetch_add(1, Ordering::Relaxed);
                                            ok = true;
                                            break;
                                        }
                                        NegotiationStatus::FailedTryLater => {
                                            let transient = out.commit_failures.is_empty()
                                                || out
                                                    .commit_failures
                                                    .iter()
                                                    .any(|(_, f)| f.transient());
                                            if !transient || attempt == max_attempts {
                                                break;
                                            }
                                            waited_ms += self
                                                .config
                                                .retry
                                                .backoff_ms(attempt, &mut rng)
                                                .max(1);
                                            // Re-walk the same classified
                                            // list; steps 1–4 are static.
                                            ordered = out.ordered_offers.into_vec();
                                        }
                                        _ => break,
                                    }
                                }
                            }
                        }
                        commit_turn.store(i + 1, Ordering::Release);
                        if let Some(s) = session_span {
                            s.end();
                        }
                        if let Some(t) = tracer {
                            t.finish_session(i as u64, !ok, waited_ms.saturating_mul(1_000));
                            t.suspend();
                        }
                    }
                });
            }
        });

        for reservations in held.into_inner() {
            for res in &reservations {
                self.session.release(res);
            }
        }
        let after = CapacitySnapshot::capture(ctx.farm, ctx.network);
        let leaked = before.leaked_streams(&after);
        if before != after {
            self.counter("broker.leaked_reservations", leaked.max(1) as u64);
            if let Some(t) = tracer {
                t.trigger_flight_dump("leaked_reservation_audit_threaded");
            }
            debug_assert_eq!(before, after, "threaded broker run leaked reservations");
        }
        (admitted.load(Ordering::Relaxed), leaked)
    }
}
