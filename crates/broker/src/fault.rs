//! Fault injection: timed degradations of servers and links.
//!
//! A [`FaultPlan`] is a list of [`FaultWindow`]s, each holding one
//! [`Fault`] active over a half-open interval `[from_ms, until_ms)` of
//! broker virtual time. The broker applies the plan by *recomputing*
//! target state at every window edge ([`FaultPlan::apply_state_at`]):
//! every server and link the plan mentions is reset to nominal and the
//! windows active at that instant are re-applied, so overlapping windows
//! on one target compose correctly and the last window's end always
//! restores nominal health.
//!
//! Plans are plain data — built by hand for targeted tests, or drawn
//! from a seeded [`StreamRng`] via [`FaultPlan::seeded`] for replayable
//! randomized churn.

use nod_cmfs::ServerFarm;
use nod_mmdoc::ServerId;
use nod_netsim::{LinkId, Network};
use nod_simcore::StreamRng;

/// One kind of injected degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The server is down: health 0, every admission refused and every
    /// committed stream on it in violation.
    ServerCrash {
        /// The crashed server.
        server: ServerId,
    },
    /// The server stops taking (most) new work but keeps serving
    /// committed streams: admission factor drops to `factor`.
    ServerSlowAdmission {
        /// The draining server.
        server: ServerId,
        /// Admission throttle in `[0, 1]`; 0 pauses admissions entirely.
        factor: f64,
    },
    /// The link carries nothing: health 0.
    LinkBlackout {
        /// The dark link.
        link: LinkId,
    },
    /// The link's effective capacity drops to `health` of nominal.
    LinkCapacityDrop {
        /// The degraded link.
        link: LinkId,
        /// Remaining capacity fraction in `[0, 1]`.
        health: f64,
    },
}

impl Fault {
    fn apply(&self, farm: &ServerFarm, network: &Network) {
        match *self {
            Fault::ServerCrash { server } => {
                if let Some(s) = farm.server(server) {
                    s.set_health(0.0);
                }
            }
            Fault::ServerSlowAdmission { server, factor } => {
                if let Some(s) = farm.server(server) {
                    s.set_admission_factor(factor);
                }
            }
            Fault::LinkBlackout { link } => network.set_link_health(link, 0.0),
            Fault::LinkCapacityDrop { link, health } => network.set_link_health(link, health),
        }
    }

    fn reset_target(&self, farm: &ServerFarm, network: &Network) {
        match *self {
            Fault::ServerCrash { server } | Fault::ServerSlowAdmission { server, .. } => {
                if let Some(s) = farm.server(server) {
                    s.set_health(1.0);
                    s.set_admission_factor(1.0);
                }
            }
            Fault::LinkBlackout { link } | Fault::LinkCapacityDrop { link, .. } => {
                network.set_link_health(link, 1.0)
            }
        }
    }
}

/// A fault active over `[from_ms, until_ms)` of broker virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start, inclusive, ms.
    pub from_ms: u64,
    /// Window end, exclusive, ms.
    pub until_ms: u64,
    /// The injected fault.
    pub fault: Fault,
}

impl FaultWindow {
    /// Is the window active at `now_ms`?
    pub fn active_at(&self, now_ms: u64) -> bool {
        self.from_ms <= now_ms && now_ms < self.until_ms
    }
}

/// A replayable set of fault windows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The windows, in no particular order.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan: no faults ever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a window.
    pub fn push(&mut self, from_ms: u64, until_ms: u64, fault: Fault) -> &mut Self {
        assert!(from_ms < until_ms, "fault window must be non-empty");
        self.windows.push(FaultWindow {
            from_ms,
            until_ms,
            fault,
        });
        self
    }

    /// Draw `count` windows over `[0, horizon_ms)` from a seeded RNG:
    /// each picks a random kind, target, start and duration (5–20% of
    /// the horizon). Same RNG state ⇒ the identical plan, so a run under
    /// this plan replays exactly.
    pub fn seeded(
        rng: &mut StreamRng,
        servers: &[ServerId],
        links: &[LinkId],
        horizon_ms: u64,
        count: usize,
    ) -> Self {
        assert!(horizon_ms >= 20, "horizon too short for a fault window");
        let mut plan = FaultPlan::none();
        for _ in 0..count {
            let duration = rng.range_u64(horizon_ms / 20, horizon_ms / 5).max(1);
            let from_ms = rng.below(horizon_ms - duration);
            let kind = if links.is_empty() {
                rng.below(2)
            } else if servers.is_empty() {
                2 + rng.below(2)
            } else {
                rng.below(4)
            };
            let fault = match kind {
                0 => Fault::ServerCrash {
                    server: *rng.choose(servers),
                },
                1 => Fault::ServerSlowAdmission {
                    server: *rng.choose(servers),
                    factor: rng.range_f64(0.0, 0.5),
                },
                2 => Fault::LinkBlackout {
                    link: *rng.choose(links),
                },
                _ => Fault::LinkCapacityDrop {
                    link: *rng.choose(links),
                    health: rng.range_f64(0.2, 0.8),
                },
            };
            plan.push(from_ms, from_ms + duration, fault);
        }
        plan
    }

    /// Every window edge (start or end), sorted and deduplicated — the
    /// instants the broker must re-evaluate fault state at.
    pub fn edges_ms(&self) -> Vec<u64> {
        let mut edges: Vec<u64> = self
            .windows
            .iter()
            .flat_map(|w| [w.from_ms, w.until_ms])
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Recompute fault state at `now_ms`: reset every mentioned target to
    /// nominal, then apply all windows active now (in declaration order,
    /// so a later window wins a conflict on the same target).
    pub fn apply_state_at(&self, farm: &ServerFarm, network: &Network, now_ms: u64) {
        for w in &self.windows {
            w.fault.reset_target(farm, network);
        }
        for w in &self.windows {
            if w.active_at(now_ms) {
                w.fault.apply(farm, network);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_cmfs::ServerConfig;
    use nod_netsim::Topology;

    fn world() -> (ServerFarm, Network) {
        let farm = ServerFarm::uniform(2, ServerConfig::era_default());
        let network = Network::new(Topology::dumbbell(2, 2, 25_000_000, 155_000_000));
        (farm, network)
    }

    #[test]
    fn overlapping_windows_compose_and_restore_nominal() {
        let (farm, network) = world();
        let sid = ServerId(0);
        let mut plan = FaultPlan::none();
        plan.push(
            100,
            300,
            Fault::ServerSlowAdmission {
                server: sid,
                factor: 0.5,
            },
        );
        plan.push(200, 400, Fault::ServerCrash { server: sid });

        plan.apply_state_at(&farm, &network, 150);
        assert_eq!(farm.server(sid).unwrap().admission_factor(), 0.5);
        assert_eq!(farm.server(sid).unwrap().health(), 1.0);

        plan.apply_state_at(&farm, &network, 250);
        assert_eq!(
            farm.server(sid).unwrap().health(),
            0.0,
            "crash wins while overlapping"
        );
        assert_eq!(farm.server(sid).unwrap().admission_factor(), 0.5);

        // First window ends at 300: only the crash remains.
        plan.apply_state_at(&farm, &network, 350);
        assert_eq!(farm.server(sid).unwrap().admission_factor(), 1.0);
        assert_eq!(farm.server(sid).unwrap().health(), 0.0);

        plan.apply_state_at(&farm, &network, 400);
        assert_eq!(
            farm.server(sid).unwrap().health(),
            1.0,
            "end edge restores nominal"
        );
    }

    #[test]
    fn link_faults_track_windows() {
        let (farm, network) = world();
        let link = network.topology().link_ids()[0];
        let mut plan = FaultPlan::none();
        plan.push(0, 50, Fault::LinkCapacityDrop { link, health: 0.4 });
        plan.apply_state_at(&farm, &network, 10);
        assert_eq!(network.link_health(link), 0.4);
        plan.apply_state_at(&farm, &network, 50);
        assert_eq!(network.link_health(link), 1.0);
    }

    #[test]
    fn recomputation_at_an_edge_matches_the_sequential_history() {
        // Recovery's contract: a snapshot cut at tick `t` restores fault
        // state with one `apply_state_at(t)` call against a fresh world,
        // while the crashed run got there by applying every edge ≤ t in
        // order. The two must agree at *every* edge — including edges
        // where a window closes at the very tick the snapshot is cut
        // (reset-then-reapply must not resurrect or half-reset a target).
        let servers = [ServerId(0), ServerId(1)];
        let (seq_farm, seq_net) = world();
        let links = seq_net.topology().link_ids();
        let plan = FaultPlan::seeded(&mut StreamRng::new(0xFA17), &servers, &links, 60_000, 12);

        let state = |farm: &ServerFarm, net: &Network| {
            let servers: Vec<(f64, f64)> = [ServerId(0), ServerId(1)]
                .iter()
                .map(|&s| {
                    let sv = farm.server(s).unwrap();
                    (sv.health(), sv.admission_factor())
                })
                .collect();
            let links: Vec<f64> = links.iter().map(|&l| net.link_health(l)).collect();
            (servers, links)
        };

        let mut checked = 0;
        for &edge in &plan.edges_ms() {
            // The crashed run's history: every edge up to and including
            // this one, applied in order.
            for &e in plan.edges_ms().iter().filter(|&&e| e <= edge) {
                plan.apply_state_at(&seq_farm, &seq_net, e);
            }
            // Recovery: one recomputation on a pristine world.
            let (rec_farm, rec_net) = world();
            plan.apply_state_at(&rec_farm, &rec_net, edge);
            assert_eq!(
                state(&seq_farm, &seq_net),
                state(&rec_farm, &rec_net),
                "fault state diverges when recovery snapshots at edge {edge} ms"
            );
            checked += 1;
        }
        assert!(checked >= 12, "seeded plan produced too few edges");
    }

    #[test]
    fn seeded_plans_replay_bit_for_bit() {
        let servers = [ServerId(0), ServerId(1)];
        let (_, network) = world();
        let links = network.topology().link_ids();
        let a = FaultPlan::seeded(&mut StreamRng::new(9), &servers, &links, 60_000, 8);
        let b = FaultPlan::seeded(&mut StreamRng::new(9), &servers, &links, 60_000, 8);
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), 8);
        assert!(a.edges_ms().len() <= 16);
        for w in &a.windows {
            assert!(w.until_ms <= 60_000 && w.from_ms < w.until_ms);
        }
    }
}
