//! A free-list slab for in-flight session state.
//!
//! At city scale the broker has 100k–1M sessions *offered*, but only the
//! in-flight subset — arrived and not yet drained — needs live state
//! (RNG, reservation handle, open trace spans). `Slab` stores exactly
//! that working set in one contiguous arena: `insert` hands back a dense
//! `u32` slot that is recycled in LIFO order after `remove`, so a run
//! whose arrivals and departures overlap holds `O(peak concurrent)`
//! entries regardless of the total session count. All operations are
//! O(1) and the recycling order is deterministic, preserving the
//! broker's replay contract.

/// A contiguous arena with LIFO slot reuse.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the slab empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (the arena's high-water mark).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Store `value`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            debug_assert!(self.entries[slot as usize].is_none());
            self.entries[slot as usize] = Some(value);
            slot
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            self.entries.push(Some(value));
            slot
        }
    }

    /// The entry at `slot`, if occupied.
    pub fn get(&self, slot: u32) -> Option<&T> {
        self.entries.get(slot as usize).and_then(Option::as_ref)
    }

    /// The entry at `slot`, mutably, if occupied.
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.entries.get_mut(slot as usize).and_then(Option::as_mut)
    }

    /// Free `slot` and return its value. Panics on a vacant slot — the
    /// broker's bookkeeping must never double-free a session.
    pub fn remove(&mut self, slot: u32) -> T {
        let value = self.entries[slot as usize]
            .take()
            .expect("slab: remove of a vacant slot");
        self.free.push(slot);
        self.len -= 1;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_returns_dense_indices() {
        let mut slab: Slab<&str> = Slab::new();
        assert_eq!(slab.insert("a"), 0);
        assert_eq!(slab.insert("b"), 1);
        assert_eq!(slab.insert("c"), 2);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.get(1), Some(&"b"));
    }

    #[test]
    fn removed_slots_are_reused_lifo() {
        let mut slab: Slab<u64> = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        assert_eq!(slab.remove(b), 20);
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.len(), 1);
        // LIFO: the last-freed slot (a) comes back first, then b.
        assert_eq!(slab.insert(40), a);
        assert_eq!(slab.insert(50), b);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.get(a), Some(&40));
        assert_eq!(slab.get(b), Some(&50));
        assert_eq!(slab.get(c), Some(&30));
        // No growth happened: three live entries, three slots ever used.
        assert_eq!(slab.capacity(), 3);
    }

    #[test]
    fn interleaved_churn_keeps_capacity_at_the_peak() {
        let mut slab: Slab<usize> = Slab::new();
        // 1000 sequential insert/remove pairs with at most 2 live: the
        // arena must stay at its peak occupancy, not grow with volume.
        let mut held = slab.insert(0);
        for i in 1..1_000 {
            let next = slab.insert(i);
            slab.remove(held);
            held = next;
        }
        assert_eq!(slab.len(), 1);
        assert!(slab.capacity() <= 2, "arena grew: {}", slab.capacity());
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn double_remove_panics() {
        let mut slab: Slab<u8> = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.remove(a);
    }
}
