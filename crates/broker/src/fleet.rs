//! [`FleetSpec`]: the single description of a broker run.
//!
//! `Broker::drive(&FleetSpec)` is the one entry point for driving a
//! fleet of sessions — it subsumes the old `Broker::run` (sequential,
//! full report) and `Broker::run_threaded` (parallel, counts only)
//! split. A `FleetSpec` bundles everything a run needs: the session
//! specs, an optional [`FaultPlan`], the worker count for the sharded
//! prepare stage, SLO objectives, the outcome-log retention policy and
//! an optional fleet-window cadence.

use nod_obs::{RetentionPolicy, SloSpec};

use crate::broker::SessionSpec;
use crate::fault::FaultPlan;
use crate::journal::Journal;

/// How much of the chronological outcome log a run keeps.
///
/// The outcome log is the broker's replay unit, but at 10⁶ sessions the
/// full log is hundreds of MB; most fleet-scale callers only need the
/// aggregate report or the tumbling [`FleetWindow`](crate::FleetWindow)
/// rows, both of which fold the log streamingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventRetention {
    /// Keep every [`OutcomeEvent`](crate::OutcomeEvent) (the default —
    /// preserves the byte-for-byte replay log).
    #[default]
    Full,
    /// Fold events into [`FleetWindow`](crate::FleetWindow) rows as they
    /// happen and drop the raw log
    /// ([`BrokerReport::events`](crate::BrokerReport) comes back empty).
    WindowsOnly,
    /// Keep only the aggregate counts, latency histogram and per-session
    /// results; no raw log, no windows.
    CountsOnly,
}

/// Everything one broker run needs, built fluently:
///
/// ```ignore
/// let report = broker.drive(
///     &FleetSpec::new(&specs)
///         .faults(&plan)
///         .workers(8)
///         .slos(default_fleet_slos())
///         .windows(1_000),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FleetSpec<'a> {
    pub(crate) sessions: &'a [SessionSpec<'a>],
    pub(crate) faults: Option<&'a FaultPlan>,
    pub(crate) workers: usize,
    pub(crate) slos: Vec<SloSpec>,
    pub(crate) retention: EventRetention,
    pub(crate) window_ms: u64,
    pub(crate) explain: Option<RetentionPolicy>,
    pub(crate) journal: Option<&'a Journal>,
}

impl<'a> FleetSpec<'a> {
    /// A fleet over `sessions` with defaults: no faults, one worker, no
    /// SLOs, full event retention, no windows.
    pub fn new(sessions: &'a [SessionSpec<'a>]) -> Self {
        FleetSpec {
            sessions,
            faults: None,
            workers: 1,
            slos: Vec::new(),
            retention: EventRetention::Full,
            window_ms: 0,
            explain: None,
            journal: None,
        }
    }

    /// Inject `plan`'s fault windows over the run.
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Shard negotiation steps 1–4 across `workers` OS threads (clamped
    /// to ≥ 1). The outcome log is identical at every worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Monitor `slos` on the virtual clock; alerts land in
    /// [`BrokerReport::slo_alerts`](crate::BrokerReport).
    pub fn slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// Choose how much of the outcome log the report retains.
    pub fn retention(mut self, retention: EventRetention) -> Self {
        self.retention = retention;
        self
    }

    /// Fold the run into tumbling [`FleetWindow`](crate::FleetWindow)
    /// rows of `window_ms` (0 disables;
    /// [`EventRetention::WindowsOnly`] defaults to 1000 ms if unset).
    pub fn windows(mut self, window_ms: u64) -> Self {
        self.window_ms = window_ms;
        self
    }

    /// Collect decision provenance: every negotiation records a
    /// [`DecisionLog`](nod_qosneg::DecisionLog), the full capacity ledger
    /// is kept, and per-session explanations are tail-retained under
    /// `policy` — 100% of failures, the top-k slowest, and a seeded head
    /// sample, exactly like trace retention. The retained set (and the
    /// serialized artifact) is byte-identical at every worker count.
    pub fn explain(mut self, policy: RetentionPolicy) -> Self {
        self.explain = Some(policy);
        self
    }

    /// Journal every session transition into `journal` as it happens —
    /// the write-ahead log [`Broker::recover`](crate::Broker::recover)
    /// replays after a crash. The journal must be fresh (or freshly
    /// [`open`](Journal::open)ed for recovery); snapshot cadence and
    /// compaction come from its [`JournalConfig`](crate::JournalConfig).
    pub fn journal(mut self, journal: &'a Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The effective window cadence: the explicit one, or 1 s when the
    /// retention policy keeps nothing but windows.
    pub(crate) fn effective_window_ms(&self) -> u64 {
        if self.window_ms == 0 && self.retention == EventRetention::WindowsOnly {
            1_000
        } else {
            self.window_ms
        }
    }
}
