//! Fleet windows: the outcome log folded into tumbling virtual-time
//! buckets.
//!
//! [`fleet_windows`] turns a [`BrokerReport`](crate::BrokerReport)'s
//! chronological [`OutcomeEvent`] log into per-window fleet health rows —
//! admissions, refusals, retries, departures, faults and the number of
//! sessions holding resources at the window's close. The rows are what
//! the `nod-top` live view renders frame by frame and what the periodic
//! Prometheus window files expose; because they derive from the replay
//! unit, the same seed yields the same windows on every run.

use crate::broker::{OutcomeEvent, OutcomeKind};

/// One tumbling window of fleet activity on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetWindow {
    /// Window start, inclusive, ms.
    pub start_ms: u64,
    /// Window end, exclusive, ms.
    pub end_ms: u64,
    /// Sessions admitted at full QoS in this window.
    pub admitted: u64,
    /// Sessions admitted on a degraded (FAILEDWITHOFFER) offer.
    pub degraded: u64,
    /// Sessions starved out by contention.
    pub starved: u64,
    /// Sessions terminally refused.
    pub rejected: u64,
    /// Sessions that errored.
    pub errored: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Admitted sessions that released their resources.
    pub departures: u64,
    /// Fault windows whose edge fired.
    pub fault_edges: u64,
    /// Sessions holding resources when the window closed (admissions
    /// minus departures, cumulative).
    pub active_at_end: u64,
}

impl FleetWindow {
    /// Total terminal outcomes in this window.
    pub fn terminals(&self) -> u64 {
        self.admitted + self.degraded + self.starved + self.rejected + self.errored
    }

    /// Render this window as a Prometheus text-format exposition.
    ///
    /// Each counter becomes a `fleet_window_*` gauge labelled with the
    /// window's virtual-time bounds, so a scrape directory of per-window
    /// files replays the run's fleet health at a fixed cadence.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let labels = format!("start_ms=\"{}\",end_ms=\"{}\"", self.start_ms, self.end_ms);
        for (name, value) in [
            ("admitted", self.admitted),
            ("degraded", self.degraded),
            ("starved", self.starved),
            ("rejected", self.rejected),
            ("errored", self.errored),
            ("retries", self.retries),
            ("departures", self.departures),
            ("fault_edges", self.fault_edges),
            ("active_at_end", self.active_at_end),
        ] {
            out.push_str(&format!("# TYPE fleet_window_{name} gauge\n"));
            out.push_str(&format!("fleet_window_{name}{{{labels}}} {value}\n"));
        }
        out
    }
}

/// Streaming fold of a chronological outcome log into tumbling
/// [`FleetWindow`] rows.
///
/// At fleet scale the raw log can be hundreds of MB, so the broker's
/// [`EventRetention::WindowsOnly`](crate::EventRetention) mode feeds
/// events through this accumulator *as they happen* and never stores
/// them. A window is finalized (its `active_at_end` fixed) the moment
/// the clock moves past it; [`WindowAccumulator::finish`] closes the
/// last one. Events must arrive in chronological order — which the
/// outcome log, being the replay unit, always is.
#[derive(Debug)]
pub struct WindowAccumulator {
    window_ms: u64,
    windows: Vec<FleetWindow>,
    active: u64,
}

impl WindowAccumulator {
    /// An empty accumulator with `window_ms` tumbling windows
    /// (clamped to at least 1 ms).
    pub fn new(window_ms: u64) -> Self {
        WindowAccumulator {
            window_ms: window_ms.max(1),
            windows: Vec::new(),
            active: 0,
        }
    }

    /// Close the current last window and append zero rows up to `idx`.
    fn extend_to(&mut self, idx: usize) {
        while self.windows.len() <= idx {
            if let Some(last) = self.windows.last_mut() {
                self.active += last.admitted + last.degraded;
                self.active = self.active.saturating_sub(last.departures);
                last.active_at_end = self.active;
            }
            let i = self.windows.len() as u64;
            self.windows.push(FleetWindow {
                start_ms: i * self.window_ms,
                end_ms: (i + 1) * self.window_ms,
                ..FleetWindow::default()
            });
        }
    }

    /// Fold one outcome into its window.
    pub fn push(&mut self, at_ms: u64, kind: &OutcomeKind) {
        let idx = (at_ms / self.window_ms) as usize;
        self.extend_to(idx);
        let w = &mut self.windows[idx];
        match kind {
            OutcomeKind::Admitted { degraded: true, .. } => w.degraded += 1,
            OutcomeKind::Admitted { .. } => w.admitted += 1,
            OutcomeKind::RetryScheduled { .. } => w.retries += 1,
            OutcomeKind::Starved { .. } => w.starved += 1,
            OutcomeKind::Rejected { .. } => w.rejected += 1,
            OutcomeKind::Errored { .. } => w.errored += 1,
            OutcomeKind::Departed => w.departures += 1,
            OutcomeKind::FaultEdge => w.fault_edges += 1,
            // Confirmed closes the choicePeriod of an already-counted
            // admission; the admission row carried the fate.
            OutcomeKind::Confirmed => {}
        }
    }

    /// Close the final window and return the contiguous rows.
    pub fn finish(mut self) -> Vec<FleetWindow> {
        if let Some(last) = self.windows.last_mut() {
            self.active += last.admitted + last.degraded;
            self.active = self.active.saturating_sub(last.departures);
            last.active_at_end = self.active;
        }
        self.windows
    }
}

/// Fold `events` (a [`BrokerReport`](crate::BrokerReport)'s log, in
/// chronological order) into tumbling windows of `window_ms`. Windows
/// cover the log's full span contiguously — quiet windows appear as zero
/// rows so a renderer can play them back at a fixed cadence. An empty
/// log yields no windows; `window_ms` is clamped to at least 1.
pub fn fleet_windows(events: &[OutcomeEvent], window_ms: u64) -> Vec<FleetWindow> {
    let mut acc = WindowAccumulator::new(window_ms);
    for ev in events {
        acc.push(ev.at_ms, &ev.kind);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nod_qosneg::NegotiationStatus;

    fn ev(at_ms: u64, session: usize, kind: OutcomeKind) -> OutcomeEvent {
        OutcomeEvent {
            at_ms,
            session,
            kind,
        }
    }

    #[test]
    fn empty_log_yields_no_windows() {
        assert!(fleet_windows(&[], 1_000).is_empty());
    }

    #[test]
    fn events_land_in_their_windows_and_active_accumulates() {
        let events = vec![
            ev(
                0,
                0,
                OutcomeKind::Admitted {
                    degraded: false,
                    attempt: 1,
                },
            ),
            ev(
                100,
                1,
                OutcomeKind::Admitted {
                    degraded: true,
                    attempt: 2,
                },
            ),
            ev(
                150,
                2,
                OutcomeKind::RetryScheduled {
                    at_ms: 1_200,
                    attempt: 1,
                },
            ),
            ev(
                1_200,
                2,
                OutcomeKind::Rejected {
                    status: NegotiationStatus::FailedWithoutOffer,
                },
            ),
            ev(2_500, 0, OutcomeKind::Departed),
            ev(2_600, 3, OutcomeKind::Starved { attempts: 5 }),
        ];
        let w = fleet_windows(&events, 1_000);
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].start_ms, w[0].end_ms), (0, 1_000));
        assert_eq!(w[0].admitted, 1);
        assert_eq!(w[0].degraded, 1);
        assert_eq!(w[0].retries, 1);
        assert_eq!(w[0].active_at_end, 2);
        assert_eq!(w[1].rejected, 1);
        assert_eq!(w[1].active_at_end, 2);
        assert_eq!(w[2].departures, 1);
        assert_eq!(w[2].starved, 1);
        assert_eq!(w[2].active_at_end, 1);
        assert_eq!(
            w.iter().map(FleetWindow::terminals).sum::<u64>(),
            4,
            "four sessions reached a terminal fate"
        );
    }

    #[test]
    fn prometheus_exposition_carries_window_bounds() {
        let w = FleetWindow {
            start_ms: 1_000,
            end_ms: 2_000,
            admitted: 3,
            retries: 2,
            active_at_end: 5,
            ..FleetWindow::default()
        };
        let text = w.to_prometheus_text();
        assert!(text.contains("# TYPE fleet_window_admitted gauge\n"));
        assert!(text.contains("fleet_window_admitted{start_ms=\"1000\",end_ms=\"2000\"} 3\n"));
        assert!(text.contains("fleet_window_retries{start_ms=\"1000\",end_ms=\"2000\"} 2\n"));
        assert!(text.contains("fleet_window_active_at_end{start_ms=\"1000\",end_ms=\"2000\"} 5\n"));
        assert!(text.lines().count() == 18, "9 gauges, 2 lines each");
    }

    #[test]
    fn streaming_accumulator_matches_the_posthoc_fold() {
        // Same log as `events_land_in_their_windows_and_active_accumulates`,
        // fed one event at a time: the streaming fold the WindowsOnly
        // retention mode uses must agree with the batch fold exactly.
        let events = vec![
            ev(
                0,
                0,
                OutcomeKind::Admitted {
                    degraded: false,
                    attempt: 1,
                },
            ),
            ev(2_500, 0, OutcomeKind::Departed),
            ev(2_600, 3, OutcomeKind::Starved { attempts: 5 }),
            ev(9_001, 1, OutcomeKind::FaultEdge),
        ];
        let mut acc = WindowAccumulator::new(1_000);
        for e in &events {
            acc.push(e.at_ms, &e.kind);
        }
        assert_eq!(acc.finish(), fleet_windows(&events, 1_000));
    }

    #[test]
    fn quiet_windows_are_present_as_zero_rows() {
        let events = vec![
            ev(
                0,
                0,
                OutcomeKind::Admitted {
                    degraded: false,
                    attempt: 1,
                },
            ),
            ev(5_500, 0, OutcomeKind::Departed),
        ];
        let w = fleet_windows(&events, 1_000);
        assert_eq!(w.len(), 6);
        assert!(w[1..5].iter().all(|w| w.terminals() == 0 && w.retries == 0));
        assert!(w[1..5].iter().all(|w| w.active_at_end == 1));
        assert_eq!(w[5].active_at_end, 0);
    }
}
