//! Network topology: nodes and full-duplex links.

use std::collections::BTreeMap;
use std::fmt;

use nod_mmdoc::{ClientId, ServerId};

/// A switching/endpoint node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A full-duplex link between two nodes. Capacity is per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u64);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity per direction, bits/s.
    pub capacity_bps: u64,
    /// Propagation delay, microseconds.
    pub delay_us: u64,
}

/// The static network graph plus endpoint attachments.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    links: BTreeMap<LinkId, Link>,
    adjacency: BTreeMap<NodeId, Vec<LinkId>>,
    next_link: u64,
    servers: BTreeMap<ServerId, NodeId>,
    clients: BTreeMap<ClientId, NodeId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node (idempotent — nodes are implicit in links, this just
    /// registers isolated nodes).
    pub fn add_node(&mut self, node: NodeId) {
        self.adjacency.entry(node).or_default();
    }

    /// Add a full-duplex link and return its id.
    ///
    /// # Panics
    /// Panics on zero capacity or a self-loop.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity_bps: u64, delay_us: u64) -> LinkId {
        assert!(capacity_bps > 0, "link needs positive capacity");
        assert_ne!(a, b, "self-loop links are not allowed");
        let id = LinkId(self.next_link);
        self.next_link += 1;
        self.links.insert(
            id,
            Link {
                a,
                b,
                capacity_bps,
                delay_us,
            },
        );
        self.adjacency.entry(a).or_default().push(id);
        self.adjacency.entry(b).or_default().push(id);
        id
    }

    /// Attach a server machine to a node.
    pub fn attach_server(&mut self, server: ServerId, node: NodeId) {
        self.add_node(node);
        self.servers.insert(server, node);
    }

    /// Attach a client machine to a node.
    pub fn attach_client(&mut self, client: ClientId, node: NodeId) {
        self.add_node(node);
        self.clients.insert(client, node);
    }

    /// The node a server is attached to.
    pub fn server_node(&self, server: ServerId) -> Option<NodeId> {
        self.servers.get(&server).copied()
    }

    /// The node a client is attached to.
    pub fn client_node(&self, client: ClientId) -> Option<NodeId> {
        self.clients.get(&client).copied()
    }

    /// Link parameters.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(&id)
    }

    /// Links incident to a node.
    pub fn incident(&self, node: NodeId) -> &[LinkId] {
        self.adjacency
            .get(&node)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The far endpoint of `link` as seen from `from`.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of `link`.
    pub fn other_end(&self, link: LinkId, from: NodeId) -> NodeId {
        let l = &self.links[&link];
        if l.a == from {
            l.b
        } else if l.b == from {
            l.a
        } else {
            panic!("{from} is not an endpoint of {link}");
        }
    }

    /// All link ids.
    pub fn link_ids(&self) -> Vec<LinkId> {
        self.links.keys().copied().collect()
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.adjacency.keys().copied().collect()
    }

    /// A classic dumbbell: `clients` client nodes and `servers` server
    /// nodes joined by an access/backbone pair of switches.
    ///
    /// Client access links: `access_bps`; server trunks and the backbone:
    /// `backbone_bps`. Returns the topology with servers `0..servers` and
    /// clients `0..clients` attached.
    pub fn dumbbell(
        clients: usize,
        servers: usize,
        access_bps: u64,
        backbone_bps: u64,
    ) -> Topology {
        let mut t = Topology::new();
        let client_switch = NodeId(0);
        let server_switch = NodeId(1);
        t.add_link(client_switch, server_switch, backbone_bps, 2_000);
        for c in 0..clients {
            let n = NodeId(2 + c as u64);
            t.add_link(n, client_switch, access_bps, 500);
            t.attach_client(ClientId(c as u64), n);
        }
        for s in 0..servers {
            let n = NodeId(2 + clients as u64 + s as u64);
            t.add_link(n, server_switch, backbone_bps, 500);
            t.attach_server(ServerId(s as u64), n);
        }
        t
    }

    /// A star: every client and server hangs off one central switch.
    /// Client access links get `access_bps`; server trunks `trunk_bps`.
    pub fn star(clients: usize, servers: usize, access_bps: u64, trunk_bps: u64) -> Topology {
        let mut t = Topology::new();
        let hub = NodeId(0);
        t.add_node(hub);
        for c in 0..clients {
            let n = NodeId(1 + c as u64);
            t.add_link(n, hub, access_bps, 500);
            t.attach_client(ClientId(c as u64), n);
        }
        for s in 0..servers {
            let n = NodeId(1 + clients as u64 + s as u64);
            t.add_link(n, hub, trunk_bps, 500);
            t.attach_server(ServerId(s as u64), n);
        }
        t
    }

    /// A binary aggregation tree of switches with `depth` levels; clients
    /// attach to the leaves round-robin and servers to the root. Models a
    /// campus/metro hierarchy where upstream links aggregate and can
    /// become shared bottlenecks.
    ///
    /// Leaf access links get `access_bps`; each aggregation level doubles
    /// the link capacity up to the root trunks.
    pub fn tree(depth: u32, clients: usize, servers: usize, access_bps: u64) -> Topology {
        assert!(depth >= 1, "tree needs at least one level");
        let mut t = Topology::new();
        let root = NodeId(0);
        t.add_node(root);
        // Build the switch tree level by level; node ids are allocated
        // breadth-first starting at 1.
        let mut next_id = 1u64;
        let mut frontier = vec![root];
        let mut leaves = vec![root];
        for level in 1..=depth {
            let mut new_frontier = Vec::new();
            let capacity = access_bps << (depth - level + 1);
            for &parent in &frontier {
                for _ in 0..2 {
                    let n = NodeId(next_id);
                    next_id += 1;
                    t.add_link(n, parent, capacity, 500);
                    new_frontier.push(n);
                }
            }
            leaves = new_frontier.clone();
            frontier = new_frontier;
        }
        for c in 0..clients {
            let leaf = leaves[c % leaves.len()];
            let n = NodeId(next_id);
            next_id += 1;
            t.add_link(n, leaf, access_bps, 300);
            t.attach_client(ClientId(c as u64), n);
        }
        for srv in 0..servers {
            let n = NodeId(next_id);
            next_id += 1;
            t.add_link(n, root, access_bps << depth, 300);
            t.attach_server(ServerId(srv as u64), n);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Topology::new();
        let l = t.add_link(NodeId(1), NodeId(2), 10_000_000, 1_000);
        assert_eq!(t.link(l).unwrap().capacity_bps, 10_000_000);
        assert_eq!(t.incident(NodeId(1)), &[l]);
        assert_eq!(t.other_end(l, NodeId(1)), NodeId(2));
        assert_eq!(t.other_end(l, NodeId(2)), NodeId(1));
        assert_eq!(t.node_ids().len(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Topology::new().add_link(NodeId(1), NodeId(1), 1, 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_validates_membership() {
        let mut t = Topology::new();
        let l = t.add_link(NodeId(1), NodeId(2), 1_000, 0);
        t.other_end(l, NodeId(3));
    }

    #[test]
    fn attachments() {
        let mut t = Topology::new();
        t.attach_server(ServerId(0), NodeId(5));
        t.attach_client(ClientId(3), NodeId(6));
        assert_eq!(t.server_node(ServerId(0)), Some(NodeId(5)));
        assert_eq!(t.client_node(ClientId(3)), Some(NodeId(6)));
        assert_eq!(t.server_node(ServerId(9)), None);
    }

    #[test]
    fn star_connects_everyone_via_hub() {
        let t = Topology::star(3, 2, 10_000_000, 100_000_000);
        assert_eq!(t.link_ids().len(), 5);
        for c in 0..3u64 {
            assert!(t.client_node(ClientId(c)).is_some());
        }
        // Any client-server pair routes in exactly 2 hops.
        use crate::routing::route;
        let r = route(
            &t,
            t.client_node(ClientId(2)).unwrap(),
            t.server_node(ServerId(1)).unwrap(),
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn tree_aggregates_toward_the_root() {
        let t = Topology::tree(2, 8, 2, 5_000_000);
        use crate::routing::route;
        // Every client reaches every server.
        for c in 0..8u64 {
            for s in 0..2u64 {
                let r = route(
                    &t,
                    t.client_node(ClientId(c)).unwrap(),
                    t.server_node(ServerId(s)).unwrap(),
                )
                .unwrap();
                // client access + 2 tree levels + server trunk
                assert_eq!(r.len(), 4);
            }
        }
        // Upstream links are fatter than access links.
        let access = t.incident(t.client_node(ClientId(0)).unwrap())[0];
        let trunk = t.incident(t.server_node(ServerId(0)).unwrap())[0];
        assert!(t.link(trunk).unwrap().capacity_bps > t.link(access).unwrap().capacity_bps);
    }

    #[test]
    fn dumbbell_shape() {
        let t = Topology::dumbbell(3, 2, 10_000_000, 155_000_000);
        // 1 backbone + 3 access + 2 trunks.
        assert_eq!(t.link_ids().len(), 6);
        assert_eq!(t.node_ids().len(), 7);
        for c in 0..3 {
            assert!(t.client_node(ClientId(c)).is_some());
        }
        for s in 0..2 {
            assert!(t.server_node(ServerId(s)).is_some());
        }
    }
}
