//! Network simulator substrate.
//!
//! Stands in for the ATM testbed connecting the CITR prototype's client and
//! server machines. The QoS negotiation sees the network as:
//!
//! * a **topology** of nodes and full-duplex links with capacity and
//!   propagation delay ([`topology`]);
//! * **routes** between a client and a server ([`routing`], Dijkstra on
//!   propagation delay);
//! * a **bandwidth reservation** service along a route with two-phase
//!   semantics — all links or none ([`network`]);
//! * **path metrics** (delay, hop count, bottleneck bandwidth) used by the
//!   QoS mapping, plus per-link congestion injection for the adaptation
//!   experiments.

pub mod network;
pub mod routing;
pub mod topology;

pub use network::{NetError, NetReservationId, Network, PathMetrics};
pub use routing::{route, RouteError};
pub use topology::{LinkId, NodeId, Topology};
