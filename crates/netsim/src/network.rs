//! The network service: reservation, metrics, congestion injection.

use nod_simcore::sync::{Mutex, Sharded};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use nod_mmdoc::{ClientId, ServerId};
use nod_obs::Recorder;

use crate::routing::{route_tree, RouteError, RouteTree};
use crate::topology::{LinkId, NodeId, Topology};

/// Handle to a committed path reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetReservationId(pub u64);

/// Path-level metrics the QoS mapping consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMetrics {
    /// End-to-end propagation delay, microseconds.
    pub delay_us: u64,
    /// Hop count.
    pub hops: usize,
    /// Smallest *unreserved* capacity along the path, bits/s.
    pub bottleneck_available_bps: u64,
    /// Largest link utilization along the path (`0.0..=1.0+`).
    pub max_utilization: f64,
    /// First-order jitter estimate (µs) from queueing at the busiest hop.
    pub jitter_us: u64,
    /// First-order loss-rate estimate at current load.
    pub loss_rate: f64,
}

/// Network-level failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetError {
    /// Client machine is not attached to the topology.
    UnknownClient(ClientId),
    /// Server machine is not attached to the topology.
    UnknownServer(ServerId),
    /// No path between the endpoints.
    Unreachable(RouteError),
    /// A link on the path cannot carry the requested bandwidth.
    InsufficientBandwidth {
        /// The saturated link.
        link: LinkId,
        /// Bandwidth still available on it, bits/s.
        available_bps: u64,
        /// Bandwidth requested, bits/s.
        requested_bps: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownClient(c) => write!(f, "client {c} not attached"),
            NetError::UnknownServer(s) => write!(f, "server {s} not attached"),
            NetError::Unreachable(e) => write!(f, "{e}"),
            NetError::InsufficientBandwidth {
                link,
                available_bps,
                requested_bps,
            } => write!(
                f,
                "{link}: requested {requested_bps} b/s, only {available_bps} b/s available"
            ),
        }
    }
}

impl std::error::Error for NetError {}

#[derive(Debug, Default)]
struct NetState {
    reserved_bps: BTreeMap<LinkId, u64>,
    health: BTreeMap<LinkId, f64>,
    reservations: BTreeMap<NetReservationId, (Vec<LinkId>, u64)>,
}

/// The reservable network.
///
/// Thread-safe: concurrent negotiations share one instance; a path
/// reservation is atomic (all links or none) under the state lock.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    state: Mutex<NetState>,
    /// Memoized client↔server routes. The topology is immutable once the
    /// network is built (link health scales capacity, never delay), so a
    /// cached route can't go stale — Dijkstra runs once per pair instead
    /// of once per reservation attempt. On a metro dumbbell the hub node
    /// is incident to every link, which makes an uncached lookup
    /// O(total links); without the memo, per-session cost grows with farm
    /// size and a city-scale fleet spends most of its time re-routing the
    /// same three-hop paths. Sharded so concurrent prepare workers don't
    /// serialize on one cache lock.
    routes: Sharded<HashMap<(ClientId, ServerId), Vec<LinkId>>>,
    /// Shortest-path trees by source node, filled on first use. A server
    /// streams to many clients, so one Dijkstra per server answers every
    /// client pair — without the tree, warming the pair cache costs one
    /// Dijkstra per pair, which is quadratic in fleet size.
    trees: Sharded<HashMap<NodeId, std::sync::Arc<RouteTree>>>,
    next_id: AtomicU64,
    /// Set-once observability hook; `None` keeps reservation allocation-free.
    recorder: OnceLock<Recorder>,
}

impl Network {
    /// Wrap a topology.
    pub fn new(topo: Topology) -> Self {
        Network {
            topo,
            state: Mutex::new(NetState::default()),
            routes: Sharded::new(16, HashMap::new),
            trees: Sharded::new(16, HashMap::new),
            next_id: AtomicU64::new(1),
            recorder: OnceLock::new(),
        }
    }

    /// Attach an observability recorder (set-once; later calls are
    /// ignored). Path reservations then count
    /// `net.reservation{result=…}` — rejections carry a `reason` label —
    /// and unroutable path lookups count `net.path.rejections`.
    pub fn set_recorder(&self, recorder: Recorder) {
        let _ = self.recorder.set(recorder);
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn endpoints(&self, client: ClientId, server: ServerId) -> Result<(NodeId, NodeId), NetError> {
        let c = self
            .topo
            .client_node(client)
            .ok_or(NetError::UnknownClient(client))?;
        let s = self
            .topo
            .server_node(server)
            .ok_or(NetError::UnknownServer(server))?;
        Ok((c, s))
    }

    /// The route a client↔server stream would take.
    pub fn path(&self, client: ClientId, server: ServerId) -> Result<Vec<LinkId>, NetError> {
        let shard_key = client.0.rotate_left(32) ^ server.0;
        if let Some(links) = self.routes.lock_key(shard_key).get(&(client, server)) {
            return Ok(links.clone());
        }
        let result = self.endpoints(client, server).and_then(|(c, s)| {
            let tree = self
                .trees
                .lock_key(s.0)
                .entry(s)
                .or_insert_with(|| std::sync::Arc::new(route_tree(&self.topo, s)))
                .clone();
            tree.path_to(s, c).map_err(NetError::Unreachable)
        });
        match &result {
            // Only routable pairs are cached: failures stay cheap to
            // compute and keep counting below on every lookup.
            Ok(links) => {
                self.routes
                    .lock_key(shard_key)
                    .insert((client, server), links.clone());
            }
            Err(_) => {
                if let Some(rec) = self.recorder.get() {
                    rec.counter("net.path.rejections", 1);
                }
            }
        }
        result
    }

    fn link_capacity(&self, st: &NetState, link: LinkId) -> u64 {
        let cap = self.topo.link(link).expect("known link").capacity_bps as f64;
        (cap * st.health.get(&link).copied().unwrap_or(1.0)) as u64
    }

    /// Metrics along the current route at current load.
    pub fn path_metrics(
        &self,
        client: ClientId,
        server: ServerId,
    ) -> Result<PathMetrics, NetError> {
        let links = self.path(client, server)?;
        let st = self.state.lock();
        let mut delay = 0u64;
        let mut bottleneck = u64::MAX;
        let mut max_util = 0.0f64;
        for &l in &links {
            let lk = self.topo.link(l).expect("route links exist");
            delay += lk.delay_us;
            let cap = self.link_capacity(&st, l);
            let used = st.reserved_bps.get(&l).copied().unwrap_or(0);
            bottleneck = bottleneck.min(cap.saturating_sub(used));
            let util = used as f64 / cap.max(1) as f64;
            max_util = max_util.max(util);
        }
        if links.is_empty() {
            bottleneck = 0;
        }
        Ok(PathMetrics {
            delay_us: delay,
            hops: links.len(),
            bottleneck_available_bps: bottleneck,
            max_utilization: max_util,
            jitter_us: Self::jitter_model_us(max_util),
            loss_rate: Self::loss_model(max_util),
        })
    }

    /// Queueing jitter grows superlinearly with the busiest hop's
    /// utilization: ~1 ms idle, ~20 ms at full reservation.
    fn jitter_model_us(util: f64) -> u64 {
        let u = util.clamp(0.0, 1.5);
        (1_000.0 + 19_000.0 * u * u) as u64
    }

    /// Loss is negligible below 90% reservation, then climbs steeply
    /// (buffer overflow regime).
    fn loss_model(util: f64) -> f64 {
        let base = 1e-4;
        if util <= 0.9 {
            base
        } else {
            base + (util - 0.9) * 0.05
        }
    }

    /// Reserve `bps` along the client↔server route — all links or none.
    pub fn try_reserve(
        &self,
        client: ClientId,
        server: ServerId,
        bps: u64,
    ) -> Result<NetReservationId, NetError> {
        if let Some(rec) = self.recorder.get() {
            rec.counter("net.reservation.attempts", 1);
        }
        let links = match self.path(client, server) {
            Ok(links) => links,
            Err(e) => {
                self.count_rejection(&e);
                return Err(e);
            }
        };
        let mut st = self.state.lock();
        for &l in &links {
            let cap = self.link_capacity(&st, l);
            let used = st.reserved_bps.get(&l).copied().unwrap_or(0);
            if used + bps > cap {
                let err = NetError::InsufficientBandwidth {
                    link: l,
                    available_bps: cap.saturating_sub(used),
                    requested_bps: bps,
                };
                drop(st);
                self.count_rejection(&err);
                return Err(err);
            }
        }
        for &l in &links {
            *st.reserved_bps.entry(l).or_insert(0) += bps;
        }
        let id = NetReservationId(self.next_id.fetch_add(1, Ordering::Relaxed));
        st.reservations.insert(id, (links, bps));
        if let Some(rec) = self.recorder.get() {
            rec.counter_with("net.reservation", &[("result", "accepted")], 1);
            rec.trace_point("net.reservation", &[("result", "accepted")]);
        }
        Ok(id)
    }

    fn count_rejection(&self, err: &NetError) {
        if let Some(rec) = self.recorder.get() {
            let reason = match err {
                NetError::UnknownClient(_) => "unknown_client",
                NetError::UnknownServer(_) => "unknown_server",
                NetError::Unreachable(_) => "unreachable",
                NetError::InsufficientBandwidth { .. } => "bandwidth",
            };
            let labels = [("result", "rejected"), ("reason", reason)];
            rec.counter_with("net.reservation", &labels, 1);
            rec.trace_point("net.reservation", &labels);
        }
    }

    /// Release a reservation (idempotent).
    pub fn release(&self, id: NetReservationId) {
        let mut st = self.state.lock();
        if let Some((links, bps)) = st.reservations.remove(&id) {
            for l in links {
                if let Some(v) = st.reserved_bps.get_mut(&l) {
                    *v = v.saturating_sub(bps);
                }
            }
        }
    }

    /// Active reservation count.
    pub fn active_reservations(&self) -> usize {
        self.state.lock().reservations.len()
    }

    /// Total bandwidth reserved across all links, bits/s (counting a flow
    /// once per link it crosses) — the capacity-audit accessor the broker
    /// compares before and after a fully-drained run.
    pub fn total_reserved_bps(&self) -> u64 {
        self.state.lock().reserved_bps.values().sum()
    }

    /// Current health factor of a link (1.0 unless degraded).
    pub fn link_health(&self, link: LinkId) -> f64 {
        self.state.lock().health.get(&link).copied().unwrap_or(1.0)
    }

    /// Reserved fraction of a link's nominal capacity.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let st = self.state.lock();
        let cap = self.topo.link(link).map(|l| l.capacity_bps).unwrap_or(0);
        st.reserved_bps.get(&link).copied().unwrap_or(0) as f64 / cap.max(1) as f64
    }

    /// Inject congestion on one link: scale its effective capacity.
    ///
    /// # Panics
    /// Panics outside [0, 1].
    pub fn set_link_health(&self, link: LinkId, health: f64) {
        assert!((0.0..=1.0).contains(&health), "health must be in [0,1]");
        self.state.lock().health.insert(link, health);
    }

    /// Reservations crossing links whose reserved bandwidth now exceeds the
    /// degraded capacity — the flows experiencing QoS violations.
    pub fn violated_reservations(&self) -> Vec<NetReservationId> {
        let st = self.state.lock();
        let congested: Vec<LinkId> = st
            .reserved_bps
            .iter()
            .filter(|(&l, &used)| used > self.link_capacity(&st, l))
            .map(|(&l, _)| l)
            .collect();
        if congested.is_empty() {
            return Vec::new();
        }
        st.reservations
            .iter()
            .filter(|(_, (links, _))| links.iter().any(|l| congested.contains(l)))
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dumbbell() -> Network {
        // 10 Mb/s access links, 155 Mb/s backbone: access is the bottleneck.
        Network::new(Topology::dumbbell(2, 2, 10_000_000, 155_000_000))
    }

    #[test]
    fn path_and_metrics() {
        let net = dumbbell();
        let m = net.path_metrics(ClientId(0), ServerId(0)).unwrap();
        assert_eq!(m.hops, 3);
        assert_eq!(m.delay_us, 500 + 2_000 + 500);
        assert_eq!(m.bottleneck_available_bps, 10_000_000);
        assert_eq!(m.max_utilization, 0.0);
        assert!(m.jitter_us >= 1_000);
        assert!(m.loss_rate <= 2e-4);
    }

    #[test]
    fn reserve_release_cycle() {
        let net = dumbbell();
        let r = net
            .try_reserve(ClientId(0), ServerId(0), 4_000_000)
            .unwrap();
        let m = net.path_metrics(ClientId(0), ServerId(0)).unwrap();
        assert_eq!(m.bottleneck_available_bps, 6_000_000);
        assert!(m.max_utilization > 0.35);
        net.release(r);
        let m2 = net.path_metrics(ClientId(0), ServerId(0)).unwrap();
        assert_eq!(m2.bottleneck_available_bps, 10_000_000);
        net.release(r); // idempotent
        assert_eq!(net.active_reservations(), 0);
    }

    #[test]
    fn access_link_saturates_first() {
        let net = dumbbell();
        net.try_reserve(ClientId(0), ServerId(0), 8_000_000)
            .unwrap();
        let err = net
            .try_reserve(ClientId(0), ServerId(0), 4_000_000)
            .unwrap_err();
        match err {
            NetError::InsufficientBandwidth {
                available_bps,
                requested_bps,
                ..
            } => {
                assert_eq!(available_bps, 2_000_000);
                assert_eq!(requested_bps, 4_000_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A different client still gets through (separate access link).
        assert!(net.try_reserve(ClientId(1), ServerId(0), 4_000_000).is_ok());
    }

    #[test]
    fn failed_reservation_leaves_no_residue() {
        let net = dumbbell();
        // Fill the backbone-but-not-access case: impossible here, so instead
        // verify a failed reservation does not partially reserve.
        net.try_reserve(ClientId(0), ServerId(0), 9_000_000)
            .unwrap();
        let before: Vec<f64> = net
            .topology()
            .link_ids()
            .iter()
            .map(|&l| net.link_utilization(l))
            .collect();
        assert!(net
            .try_reserve(ClientId(0), ServerId(0), 5_000_000)
            .is_err());
        let after: Vec<f64> = net
            .topology()
            .link_ids()
            .iter()
            .map(|&l| net.link_utilization(l))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn unknown_endpoints() {
        let net = dumbbell();
        assert_eq!(
            net.try_reserve(ClientId(9), ServerId(0), 1).unwrap_err(),
            NetError::UnknownClient(ClientId(9))
        );
        assert_eq!(
            net.try_reserve(ClientId(0), ServerId(9), 1).unwrap_err(),
            NetError::UnknownServer(ServerId(9))
        );
    }

    #[test]
    fn congestion_violates_crossing_flows() {
        let net = dumbbell();
        let r0 = net
            .try_reserve(ClientId(0), ServerId(0), 6_000_000)
            .unwrap();
        let _r1 = net
            .try_reserve(ClientId(1), ServerId(0), 6_000_000)
            .unwrap();
        assert!(net.violated_reservations().is_empty());
        // Degrade client 0's access link (the first client access link).
        let access0 = net.path(ClientId(0), ServerId(0)).unwrap()[2];
        net.set_link_health(access0, 0.4); // 4 Mb/s effective < 6 reserved
        let v = net.violated_reservations();
        assert_eq!(v, vec![r0]);
        net.set_link_health(access0, 1.0);
        assert!(net.violated_reservations().is_empty());
    }

    #[test]
    fn jitter_and_loss_grow_with_load() {
        let net = dumbbell();
        let idle = net.path_metrics(ClientId(0), ServerId(0)).unwrap();
        net.try_reserve(ClientId(0), ServerId(0), 9_500_000)
            .unwrap();
        let busy = net.path_metrics(ClientId(0), ServerId(0)).unwrap();
        assert!(busy.jitter_us > idle.jitter_us);
        assert!(busy.loss_rate > idle.loss_rate);
    }

    #[test]
    fn concurrent_reservations_respect_capacity() {
        use std::sync::Arc;
        let net = Arc::new(dumbbell());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..10 {
                        if net.try_reserve(ClientId(0), ServerId(0), 1_000_000).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10, "exactly the access capacity must be granted");
    }
}
