//! Shortest-path routing over the topology.
//!
//! Dijkstra on propagation delay; ties broken by hop count then link id so
//! routes are deterministic. Route computation ignores current load — like
//! the prototype's static ATM VP layout, path selection is topological and
//! admission happens per link afterwards.

use std::collections::{BinaryHeap, HashMap};

use crate::topology::{LinkId, NodeId, Topology};

/// Routing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No path between the endpoints.
    Unreachable {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unreachable { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    delay_us: u64,
    hops: u32,
    node: NodeId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (delay, hops, node).
        (other.delay_us, other.hops, other.node).cmp(&(self.delay_us, self.hops, self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shortest-path tree rooted at `from`: for every reachable node, the
/// `(parent, link)` step back toward the root.
///
/// One tree answers every `from → *` route, so callers that fan out from
/// a single source (a server streaming to any client in the fleet) pay
/// one Dijkstra instead of one per destination — on a city-scale dumbbell,
/// where the hub is incident to every link, per-destination Dijkstra made
/// route-cache warm-up quadratic in fleet size.
#[derive(Debug, Clone, Default)]
pub struct RouteTree {
    prev: HashMap<NodeId, (NodeId, LinkId)>,
}

impl RouteTree {
    /// The lowest-delay path from the root to `to`, in traversal order.
    /// The empty list when `to` is the root itself.
    pub fn path_to(&self, root: NodeId, to: NodeId) -> Result<Vec<LinkId>, RouteError> {
        if to == root {
            return Ok(Vec::new());
        }
        if !self.prev.contains_key(&to) {
            return Err(RouteError::Unreachable { from: root, to });
        }
        let mut links = Vec::new();
        let mut cur = to;
        while cur != root {
            let (p, l) = self.prev[&cur];
            links.push(l);
            cur = p;
        }
        links.reverse();
        Ok(links)
    }
}

/// Dijkstra from `from` to every reachable node. `stop_at` bounds the
/// search: `Some(node)` allows an early exit once that node settles,
/// `None` settles the whole component (for a reusable [`RouteTree`]).
fn dijkstra(topo: &Topology, from: NodeId, stop_at: Option<NodeId>) -> RouteTree {
    let mut best: HashMap<NodeId, (u64, u32)> = HashMap::new();
    let mut prev: HashMap<NodeId, (NodeId, LinkId)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    best.insert(from, (0, 0));
    heap.push(QueueEntry {
        delay_us: 0,
        hops: 0,
        node: from,
    });

    while let Some(QueueEntry {
        delay_us,
        hops,
        node,
    }) = heap.pop()
    {
        if stop_at == Some(node) {
            break;
        }
        if best
            .get(&node)
            .is_some_and(|&(d, h)| (d, h) < (delay_us, hops))
        {
            continue;
        }
        let mut incident = topo.incident(node).to_vec();
        incident.sort_unstable(); // deterministic neighbor order
        for link in incident {
            let l = topo.link(link).expect("incident links exist");
            let next = topo.other_end(link, node);
            let cand = (delay_us + l.delay_us, hops + 1);
            if best.get(&next).is_none_or(|&cur| cand < cur) {
                best.insert(next, cand);
                prev.insert(next, (node, link));
                heap.push(QueueEntry {
                    delay_us: cand.0,
                    hops: cand.1,
                    node: next,
                });
            }
        }
    }

    RouteTree { prev }
}

/// The full shortest-path tree rooted at `from`.
pub fn route_tree(topo: &Topology, from: NodeId) -> RouteTree {
    dijkstra(topo, from, None)
}

/// The lowest-delay path from `from` to `to` as a list of links in
/// traversal order. A zero-length route (`from == to`) is the empty list.
pub fn route(topo: &Topology, from: NodeId, to: NodeId) -> Result<Vec<LinkId>, RouteError> {
    if from == to {
        return Ok(Vec::new());
    }
    dijkstra(topo, from, Some(to)).path_to(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node ring with one shortcut:
    /// 0 -10ms- 1 -10ms- 2 -10ms- 3 -10ms- 0, plus 0 -25ms- 2.
    fn ring() -> (Topology, Vec<LinkId>) {
        let mut t = Topology::new();
        let l01 = t.add_link(NodeId(0), NodeId(1), 1_000_000, 10_000);
        let l12 = t.add_link(NodeId(1), NodeId(2), 1_000_000, 10_000);
        let l23 = t.add_link(NodeId(2), NodeId(3), 1_000_000, 10_000);
        let l30 = t.add_link(NodeId(3), NodeId(0), 1_000_000, 10_000);
        let l02 = t.add_link(NodeId(0), NodeId(2), 1_000_000, 25_000);
        (t, vec![l01, l12, l23, l30, l02])
    }

    #[test]
    fn trivial_route_is_empty() {
        let (t, _) = ring();
        assert_eq!(route(&t, NodeId(1), NodeId(1)).unwrap(), vec![]);
    }

    #[test]
    fn picks_lowest_delay_path() {
        let (t, l) = ring();
        // 0→2: two hops of 10 ms (20 ms) beat the 25 ms shortcut.
        assert_eq!(route(&t, NodeId(0), NodeId(2)).unwrap(), vec![l[0], l[1]]);
    }

    #[test]
    fn shortcut_wins_when_cheaper() {
        let mut t = Topology::new();
        t.add_link(NodeId(0), NodeId(1), 1_000_000, 10_000);
        t.add_link(NodeId(1), NodeId(2), 1_000_000, 10_000);
        let fast = t.add_link(NodeId(0), NodeId(2), 1_000_000, 15_000);
        assert_eq!(route(&t, NodeId(0), NodeId(2)).unwrap(), vec![fast]);
    }

    #[test]
    fn unreachable_detected() {
        let mut t = Topology::new();
        t.add_link(NodeId(0), NodeId(1), 1_000, 0);
        t.add_node(NodeId(9));
        assert_eq!(
            route(&t, NodeId(0), NodeId(9)).unwrap_err(),
            RouteError::Unreachable {
                from: NodeId(0),
                to: NodeId(9)
            }
        );
    }

    #[test]
    fn route_is_a_connected_path() {
        let (t, _) = ring();
        let links = route(&t, NodeId(1), NodeId(3)).unwrap();
        let mut cur = NodeId(1);
        for l in &links {
            cur = t.other_end(*l, cur);
        }
        assert_eq!(cur, NodeId(3));
    }

    #[test]
    fn deterministic_under_ties() {
        // Two equal-delay parallel 2-hop paths; the same one must win every time.
        let mut t = Topology::new();
        t.add_link(NodeId(0), NodeId(1), 1_000, 5_000);
        t.add_link(NodeId(1), NodeId(3), 1_000, 5_000);
        t.add_link(NodeId(0), NodeId(2), 1_000, 5_000);
        t.add_link(NodeId(2), NodeId(3), 1_000, 5_000);
        let first = route(&t, NodeId(0), NodeId(3)).unwrap();
        for _ in 0..10 {
            assert_eq!(route(&t, NodeId(0), NodeId(3)).unwrap(), first);
        }
    }

    #[test]
    fn dumbbell_routes_cross_backbone() {
        let t = Topology::dumbbell(2, 2, 10_000_000, 155_000_000);
        let c = t.client_node(nod_mmdoc::ClientId(0)).unwrap();
        let s = t.server_node(nod_mmdoc::ServerId(1)).unwrap();
        let r = route(&t, c, s).unwrap();
        assert_eq!(r.len(), 3); // access + backbone + trunk
    }
}
