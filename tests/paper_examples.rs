//! Integration-level reproduction of every worked example in the paper,
//! exercised through the public API exactly as EXPERIMENTS.md records them.

use news_on_demand::mmdoc::prelude::*;
use news_on_demand::qosneg::classify::{classify, ClassificationStrategy};
use news_on_demand::qosneg::offer::SystemOffer;
use news_on_demand::qosneg::profile::MmQosSpec;
use news_on_demand::qosneg::sns::compute_sns;
use news_on_demand::qosneg::{ImportanceProfile, Money, StaticNegotiationStatus, UserProfile};

fn video(color: ColorDepth, fps: u32) -> MediaQos {
    MediaQos::Video(VideoQos {
        color,
        resolution: Resolution::TV,
        frame_rate: FrameRate::new(fps),
    })
}

/// The §5 request: desired = worst = (color, TV resolution, 25 fps), $4.
fn paper_profile() -> UserProfile {
    UserProfile::strict(
        "paper",
        MmQosSpec {
            video: Some(VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::TV,
                frame_rate: FrameRate::TV,
            }),
            ..MmQosSpec::default()
        },
        Money::from_dollars(4),
    )
}

fn paper_offers() -> Vec<SystemOffer> {
    let mk = |id: u64, color: ColorDepth, fps: u32, dollars: f64| SystemOffer {
        variants: vec![Variant {
            id: VariantId(id),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: video(color, fps),
            blocks: BlockStats::new(12_000, 5_000),
            blocks_per_second: fps,
            file_bytes: 1_000_000,
            server: ServerId(0),
        }],
        cost: Money::from_dollars_f64(dollars),
    };
    vec![
        mk(1, ColorDepth::BlackWhite, 25, 2.5),
        mk(2, ColorDepth::Color, 15, 4.0),
        mk(3, ColorDepth::Grey, 25, 3.0),
        mk(4, ColorDepth::Color, 25, 5.0),
    ]
}

#[test]
fn section_521_sns_table() {
    let p = paper_profile();
    let expected = [
        StaticNegotiationStatus::Constraint,
        StaticNegotiationStatus::Constraint,
        StaticNegotiationStatus::Constraint,
        StaticNegotiationStatus::Acceptable,
    ];
    for (offer, want) in paper_offers().iter().zip(expected) {
        let qos: Vec<&MediaQos> = offer.qos_values().collect();
        assert_eq!(compute_sns(&p, qos, offer.cost), want);
    }
}

#[test]
fn section_522_setting_1() {
    let mut p = paper_profile();
    p.importance = ImportanceProfile::paper_example(4.0);
    let scored = classify(paper_offers(), &p, ClassificationStrategy::SnsThenOif);
    let ids: Vec<u64> = scored.iter().map(|s| s.offer.variants[0].id.0).collect();
    assert_eq!(
        ids,
        vec![4, 3, 1, 2],
        "paper order: offer4, offer3, offer1, offer2"
    );
    // OIF values in offer-id order: 10, 7, 12, 7.
    for (id, oif) in [(1u64, 10.0), (2, 7.0), (3, 12.0), (4, 7.0)] {
        let s = scored
            .iter()
            .find(|s| s.offer.variants[0].id.0 == id)
            .unwrap();
        assert_eq!(s.oif, oif, "offer{id}");
    }
}

#[test]
fn section_522_setting_2() {
    let mut p = paper_profile();
    p.importance = ImportanceProfile::paper_example(0.0);
    let scored = classify(paper_offers(), &p, ClassificationStrategy::SnsThenOif);
    let ids: Vec<u64> = scored.iter().map(|s| s.offer.variants[0].id.0).collect();
    assert_eq!(ids, vec![4, 3, 2, 1]);
    for (id, oif) in [(1u64, 20.0), (2, 23.0), (3, 24.0), (4, 27.0)] {
        let s = scored
            .iter()
            .find(|s| s.offer.variants[0].id.0 == id)
            .unwrap();
        assert_eq!(s.oif, oif, "offer{id}");
    }
}

#[test]
fn section_522_setting_3_published_order_is_pure_oif() {
    let mut p = paper_profile();
    p.importance = ImportanceProfile::cost_only(4.0);
    // The paper prints offer1, offer3, offer2, offer4 — the pure-OIF order.
    let printed = classify(paper_offers(), &p, ClassificationStrategy::OifOnly);
    let ids: Vec<u64> = printed.iter().map(|s| s.offer.variants[0].id.0).collect();
    assert_eq!(ids, vec![1, 3, 2, 4]);
    for (id, oif) in [(1u64, -10.0), (2, -16.0), (3, -12.0), (4, -20.0)] {
        let s = printed
            .iter()
            .find(|s| s.offer.variants[0].id.0 == id)
            .unwrap();
        assert_eq!(s.oif, oif, "offer{id}");
    }
    // The stated SNS-primary rule instead leads with the ACCEPTABLE offer4
    // (documented discrepancy, EXPERIMENTS.md E4).
    let stated = classify(paper_offers(), &p, ClassificationStrategy::SnsThenOif);
    assert_eq!(stated[0].offer.variants[0].id.0, 4);
}

#[test]
fn section_6_mapping_formulae_and_constants() {
    use news_on_demand::qosneg::mapping::map_requirements;
    let v = Variant {
        id: VariantId(1),
        monomedia: MonomediaId(1),
        format: Format::Mpeg1,
        qos: video(ColorDepth::Color, 25),
        blocks: BlockStats::new(16_000, 6_000),
        blocks_per_second: 25,
        file_bytes: 6_000 * 25 * 120,
        server: ServerId(0),
    };
    let spec = map_requirements(&v);
    assert_eq!(
        spec.max_bit_rate,
        16_000 * 8 * 25,
        "maxBitRate = max frame × rate"
    );
    assert_eq!(
        spec.avg_bit_rate,
        6_000 * 8 * 25,
        "avgBitRate = avg frame × rate"
    );
    assert_eq!(spec.max_jitter_us, 10_000, "paper: jitter = 10 ms");
    assert_eq!(spec.max_loss_rate, 0.003, "paper: loss rate = 0.003");
}

#[test]
fn section_7_formula_1_identity() {
    use news_on_demand::cmfs::Guarantee;
    use news_on_demand::qosneg::CostModel;
    let m = CostModel::era_default();
    let variants: Vec<Variant> = (0..3)
        .map(|i| Variant {
            id: VariantId(i + 1),
            monomedia: MonomediaId(i + 1),
            format: Format::Mpeg1,
            qos: video(ColorDepth::Color, 25),
            blocks: BlockStats::new(10_000 + i * 1_000, 4_000 + i * 500),
            blocks_per_second: 25,
            file_bytes: 1_000_000,
            server: ServerId(0),
        })
        .collect();
    let durations = [90_000u64, 120_000, 45_000];
    // CostDoc = CostCop + Σ (CostNet_i + CostSer_i)
    let by_formula = m.document_cost(variants.iter().zip(durations), Guarantee::Guaranteed);
    let by_hand: Money = m.copyright
        + variants
            .iter()
            .zip(durations)
            .map(|(v, d)| {
                let (net, ser) = m.monomedia_cost(v, d, Guarantee::Guaranteed);
                net + ser
            })
            .sum::<Money>();
    assert_eq!(by_formula, by_hand);
}

#[test]
fn importance_example_4_french_over_english() {
    // Paper §3 example (4): "the user specifies that french is more
    // important than english" — a French text variant must then outrank an
    // otherwise identical English one.
    let mut p = paper_profile();
    p.desired.text = Some(TextQos {
        language: Language::Any,
    });
    p.worst.text = p.desired.text;
    p.desired.video = None;
    p.worst.video = None;
    p.importance.french = 6.0;
    p.importance.english = 1.0;
    let mk = |id: u64, lang: Language| SystemOffer {
        variants: vec![Variant {
            id: VariantId(id),
            monomedia: MonomediaId(1),
            format: Format::PlainText,
            qos: MediaQos::Text(TextQos { language: lang }),
            blocks: BlockStats::new(5_000, 5_000),
            blocks_per_second: 0,
            file_bytes: 5_000,
            server: ServerId(0),
        }],
        cost: Money::from_dollars(1),
    };
    let scored = classify(
        vec![mk(1, Language::English), mk(2, Language::French)],
        &p,
        ClassificationStrategy::SnsThenOif,
    );
    assert_eq!(scored[0].offer.variants[0].id.0, 2, "french first");
}
