//! Tail-based trace sampling under fleet load: the sampler must retain
//! every failed session and exactly the `top_k` slowest, keep trace
//! memory O(retained) rather than O(sessions), and hand the analyzer a
//! drained log that still satisfies the causal invariants — sampling
//! drops whole sessions, never events within a retained session.

use std::collections::BTreeSet;

use news_on_demand::obs::{analyze, Recorder, RetentionPolicy, Tracer};
use news_on_demand::workload::{run_contended_with, ContendedConfig};

const WORKERS: usize = 4;

/// A fleet small enough for tier-1 but contended enough that most
/// sessions fail: one server, long holds, fast arrivals.
fn config() -> ContendedConfig {
    ContendedConfig {
        seed: 9,
        sessions: 192,
        servers: 1,
        arrivals_per_minute: 240.0,
        hold_ms: 8_000,
        workers: WORKERS,
        ..ContendedConfig::default()
    }
}

fn policy() -> RetentionPolicy {
    RetentionPolicy {
        top_k: 8,
        sample_every: 32,
        seed: 7,
        max_events_per_trace: 4_096,
    }
}

/// Run the contended fleet with a tail-sampling tracer attached.
fn sampled_run() -> (usize, Tracer) {
    let recorder = Recorder::sharded(WORKERS);
    let tracer = Tracer::with_sampling(policy());
    recorder.set_tracer(tracer.clone());
    let (result, _) = run_contended_with(&config(), Some(&recorder));
    assert_eq!(
        result.leaked_streams, 0,
        "contended run must release every stream"
    );
    (result.admitted, tracer)
}

#[test]
fn failed_sessions_are_always_retained_and_slow_set_is_exactly_top_k() {
    let (admitted, tracer) = sampled_run();
    let stats = tracer
        .retention_stats()
        .expect("sampling tracer reports retention stats");
    let failed = (config().sessions - admitted) as u64;
    assert_eq!(stats.finished, config().sessions as u64);
    assert_eq!(
        stats.kept_failed, failed,
        "tail sampling must keep 100% of failed sessions"
    );
    assert_eq!(
        stats.kept_slow,
        policy().top_k,
        "slow set must hold exactly top_k once finished >= top_k"
    );
    assert_eq!(stats.truncated_events, 0, "no retained trace hit the cap");
}

#[test]
fn trace_memory_is_bounded_by_the_retention_ledger() {
    let (_, tracer) = sampled_run();
    let stats = tracer.retention_stats().expect("retention stats");
    assert!(
        stats.dropped > 0,
        "a contended fleet must drop some successful traces"
    );
    let events = tracer.drain();
    let retained: BTreeSet<u64> = events.iter().map(|e| e.trace).collect();
    let ledger = stats.kept_failed + stats.kept_head + stats.kept_slow as u64;
    assert!(
        (retained.len() as u64) <= ledger,
        "{} retained traces exceed the ledger bound {ledger}",
        retained.len()
    );
    assert!(
        (retained.len() as u64) < stats.finished,
        "retention must be O(retained), not O(sessions)"
    );
}

#[test]
fn drained_sample_still_satisfies_causal_invariants_and_analyzes() {
    let (_, tracer) = sampled_run();
    let events = tracer.drain();
    assert!(!events.is_empty(), "sampled run retained no traces");
    let trees = analyze::build_trees(&events)
        .expect("retained traces must be complete, causally valid sessions");
    let retained: BTreeSet<u64> = events.iter().map(|e| e.trace).collect();
    assert_eq!(
        trees.len(),
        retained.len(),
        "every retained trace reconstructs into exactly one session tree"
    );
    let report = analyze::text_report(&trees);
    assert!(
        !report.is_empty(),
        "analysis report must render from the sampled log"
    );
}
