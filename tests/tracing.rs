//! Trace-integrity integration tests: causal traces from contended broker
//! runs must be deterministic (same seed → byte-identical JSONL and equal
//! span-tree shapes, including under fault injection and confirmation
//! windows), complete (every event lands in exactly one session tree and
//! wait attribution covers the whole session), survive multi-worker
//! `drive` without violating the causal invariants, and the flight
//! recorder must
//! capture the last events when the capacity audit trips.

use std::panic::{catch_unwind, AssertUnwindSafe};

use news_on_demand::broker::{Broker, BrokerConfig, EventRetention, FleetSpec, SessionSpec};
use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{Guarantee, ServerConfig, ServerFarm};
use news_on_demand::mmdb::{Catalog, CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::{ClientId, DocumentId, ServerId};
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::obs::analyze::{self, SpanNode};
use news_on_demand::obs::{Recorder, TraceEvent, Tracer};
use news_on_demand::qosneg::negotiate::{NegotiationContext, StreamingMode};
use news_on_demand::qosneg::profile::tv_news_profile;
use news_on_demand::qosneg::{ClassificationStrategy, CostModel};
use news_on_demand::simcore::StreamRng;
use news_on_demand::workload::{run_contended_with, ContendedConfig};

/// One traced contended run: returns the drained events and the JSONL.
fn traced_run(config: &ContendedConfig) -> (Vec<TraceEvent>, String) {
    let recorder = Recorder::new();
    let tracer = Tracer::new();
    recorder.set_tracer(tracer.clone());
    let _ = run_contended_with(config, Some(&recorder));
    let events = tracer.drain();
    let mut jsonl = String::new();
    for ev in &events {
        jsonl.push_str(&ev.to_json_line());
        jsonl.push('\n');
    }
    (events, jsonl)
}

/// Events represented by a span node: its start + end pair plus points.
fn node_events(n: &SpanNode) -> usize {
    2 + n.points.len() + n.children.iter().map(node_events).sum::<usize>()
}

#[test]
fn same_seed_runs_are_byte_identical_even_with_faults_and_choice_period() {
    let config = ContendedConfig {
        seed: 41,
        sessions: 32,
        servers: 1,
        arrivals_per_minute: 200.0,
        hold_ms: 6_000,
        fault_windows: 2,
        choice_period_ms: 400,
        ..ContendedConfig::default()
    };
    let (events_a, jsonl_a) = traced_run(&config);
    let (events_b, jsonl_b) = traced_run(&config);
    assert!(!events_a.is_empty(), "traced run produced no events");
    assert_eq!(jsonl_a, jsonl_b, "same-seed trace logs must be identical");

    let shapes = |events: &[TraceEvent]| -> Vec<String> {
        analyze::build_trees(events)
            .expect("trace must satisfy causal invariants")
            .iter()
            .map(|t| t.shape())
            .collect()
    };
    assert_eq!(shapes(&events_a), shapes(&events_b));
}

#[test]
fn every_event_lands_in_exactly_one_complete_session_tree() {
    let config = ContendedConfig {
        seed: 9,
        sessions: 64,
        ..ContendedConfig::default()
    };
    let (events, _) = traced_run(&config);
    let trees = analyze::build_trees(&events).expect("trace must satisfy causal invariants");

    // One tree per session, with distinct trace ids covering 0..sessions.
    assert_eq!(trees.len(), 64, "one tree per session");
    let mut ids: Vec<u64> = trees.iter().map(|t| t.trace).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..64).collect::<Vec<u64>>());

    // The trees partition the event log: every event is in exactly one.
    let covered: usize = trees
        .iter()
        .flat_map(|t| t.roots.iter())
        .map(node_events)
        .sum();
    assert_eq!(covered, events.len(), "trees must cover every event");

    // Each session reconstructs as a single rooted span whose wait
    // attribution covers the whole end-to-end duration.
    for tree in &trees {
        assert_eq!(tree.roots.len(), 1, "trace {} has one root", tree.trace);
        let root = &tree.roots[0];
        assert_eq!(root.name, "session");
        assert!(!root.dropped, "trace {} root closed cleanly", tree.trace);
        let a = analyze::attribute_wait(root);
        assert_eq!(a.total_us, root.end_us - root.start_us);
        assert_eq!(
            a.attributed_us(),
            a.total_us,
            "trace {}: attribution must sum to the session duration",
            tree.trace
        );
    }
}

const CLIENTS: u64 = 8;

struct World {
    catalog: Catalog,
    farm: ServerFarm,
    network: Network,
    cost: CostModel,
}

fn world(seed: u64) -> World {
    let mut rng = StreamRng::new(seed);
    let catalog = CorpusBuilder::new(CorpusParams {
        documents: 8,
        servers: (0..2).map(ServerId).collect(),
        ..CorpusParams::default()
    })
    .build(&mut rng);
    World {
        catalog,
        farm: ServerFarm::uniform(
            2,
            ServerConfig {
                max_streams: 16,
                ..ServerConfig::era_default()
            },
        ),
        network: Network::new(Topology::dumbbell(
            CLIENTS as usize,
            2,
            25_000_000,
            155_000_000,
        )),
        cost: CostModel::era_default(),
    }
}

fn ctx<'a>(w: &'a World, recorder: Option<&'a Recorder>) -> NegotiationContext<'a> {
    NegotiationContext {
        catalog: &w.catalog,
        farm: &w.farm,
        network: &w.network,
        cost_model: &w.cost,
        strategy: ClassificationStrategy::SnsThenOif,
        guarantee: Guarantee::Guaranteed,
        enumeration_cap: 500_000,
        jitter_buffer_ms: 2_000,
        prune_dominated: false,
        streaming: StreamingMode::Auto,
        recorder,
        explain: false,
    }
}

#[test]
fn threaded_drive_traces_satisfy_causal_invariants() {
    let w = world(950);
    let clients: Vec<ClientMachine> = (0..CLIENTS)
        .map(|i| ClientMachine::era_workstation(ClientId(i)))
        .collect();
    let profile = tv_news_profile();
    let specs: Vec<SessionSpec<'_>> = (0..24u64)
        .map(|i| SessionSpec {
            client: &clients[(i % CLIENTS) as usize],
            document: DocumentId(i % 8 + 1),
            profile: &profile,
            arrival_ms: 0,
            hold_ms: None,
        })
        .collect();
    let recorder = Recorder::new();
    let tracer = Tracer::new();
    recorder.set_tracer(tracer.clone());
    let broker = Broker::new(ctx(&w, Some(&recorder)), BrokerConfig::era_default());
    let report = broker.drive(
        &FleetSpec::new(&specs)
            .workers(4)
            .retention(EventRetention::CountsOnly),
    );
    assert!(report.admitted >= 1);
    assert_eq!(report.leaked_streams, 0);

    // Scheduling is nondeterministic, but the per-session resume/suspend
    // protocol must still partition events into well-formed trees: every
    // span closes inside its parent, no orphans, every event covered.
    let events = tracer.drain();
    assert!(!events.is_empty(), "threaded run produced no events");
    let trees = analyze::build_trees(&events).expect("threaded trace must keep causal invariants");
    let covered: usize = trees
        .iter()
        .flat_map(|t| t.roots.iter())
        .map(node_events)
        .sum();
    assert_eq!(covered, events.len());
    for tree in &trees {
        assert!(tree.trace < 24, "trace ids are session indices");
    }
}

#[test]
fn injected_leak_trips_audit_and_dumps_flight_recorder() {
    let w = world(7);
    let clients: Vec<ClientMachine> = (0..CLIENTS)
        .map(|i| ClientMachine::era_workstation(ClientId(i)))
        .collect();
    let profile = tv_news_profile();
    let specs: Vec<SessionSpec<'_>> = (0..8u64)
        .map(|i| SessionSpec {
            client: &clients[(i % CLIENTS) as usize],
            document: DocumentId(i % 8 + 1),
            profile: &profile,
            arrival_ms: i * 100,
            hold_ms: Some(1_000),
        })
        .collect();
    let recorder = Recorder::new();
    let tracer = Tracer::new();
    recorder.set_tracer(tracer.clone());
    let broker = Broker::new(
        ctx(&w, Some(&recorder)),
        BrokerConfig {
            inject_leak_at_ms: Some(500),
            ..BrokerConfig::era_default()
        },
    );
    // The audit fires a debug_assert after dumping: tolerate both debug
    // (panic caught here) and release (run returns normally) profiles.
    // Eight worker shards: the audit and dump must fire under the
    // threaded engine too, and the panic must not wedge the pool.
    let _ = catch_unwind(AssertUnwindSafe(|| {
        broker.drive(&FleetSpec::new(&specs).workers(8))
    }));

    let dump = tracer
        .take_flight_dump()
        .expect("capacity-audit failure must dump the flight recorder");
    assert_eq!(dump.reason, "leaked_reservation_audit");
    assert!(
        !dump.events.is_empty(),
        "flight dump must carry the last trace events"
    );
    // The dump holds the freshest events: the final event of the run is in
    // the window.
    let last = dump.events.last().expect("non-empty");
    assert!(last.t_us > 0);
}
