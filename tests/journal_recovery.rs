//! Crash-recovery chaos harness for the broker's write-ahead journal.
//!
//! One contended run is journaled end to end (compaction off, so the
//! byte stream holds the full history), then the journal is truncated at
//! dozens of seeded crash points — whole-record boundaries, fault-edge
//! record boundaries and their ±1-byte torn-write neighbours, and random
//! mid-record cuts — and recovered from scratch each time. Every
//! recovery must satisfy the three acceptance gates:
//!
//! 1. **Byte-identical suffix**: the resumed run's outcome log equals
//!    the uninterrupted run's log from
//!    [`suffix_starts_at_event`](news_on_demand::broker::RecoveryReport)
//!    onward, and the whole-run results match exactly.
//! 2. **Zero leaked reservations**: the recovered run drains to the
//!    pristine capacity snapshot ([`BrokerReport::leaked_streams`] = 0).
//! 3. **Exactly-once settlement**: across the combined pre-crash +
//!    post-recovery log, every session confirms at most once, departs at
//!    most once, and reaches exactly one terminal fate.

use news_on_demand::broker::{
    BrokerReport, Journal, JournalConfig, JournalError, OutcomeEvent, OutcomeKind, RecoveryReport,
};
use news_on_demand::simcore::StreamRng;
use news_on_demand::workload::{
    recover_contended, run_contended_journaled, run_contended_with, ContendedConfig,
};

/// A contended, faulted run with a real user choice period, so the
/// journal carries retries, pending confirmations, departures and fault
/// edges — every record kind recovery has to rebuild.
fn chaos_config() -> ContendedConfig {
    ContendedConfig {
        seed: 7,
        sessions: 48,
        servers: 1,
        arrivals_per_minute: 240.0,
        hold_ms: 8_000,
        choice_period_ms: 300,
        fault_windows: 4,
        ..ContendedConfig::default()
    }
}

/// Chaos-side journal policy: frequent snapshots so cuts land on both
/// sides of several snapshot horizons, compaction off so the byte stream
/// keeps the full history for truncation.
fn chaos_journal_cfg() -> JournalConfig {
    JournalConfig {
        snapshot_every_events: 64,
        compact: false,
        crash_after_events: None,
    }
}

/// Run the chaos config journaled, returning the uninterrupted report
/// and the complete journal byte stream.
fn full_run() -> (BrokerReport, Vec<u8>) {
    let journal = Journal::in_memory(chaos_journal_cfg());
    let (_, report) = run_contended_journaled(&chaos_config(), None, &journal);
    let bytes = journal.bytes();
    (report, bytes)
}

fn recover_from(bytes: Vec<u8>) -> Result<RecoveryReport, JournalError> {
    let journal = Journal::from_bytes(bytes, chaos_journal_cfg());
    recover_contended(&chaos_config(), None, &journal)
}

/// Gate 3: exactly-once settlement over one combined outcome log.
fn assert_exactly_once(sessions: usize, combined: &[&OutcomeEvent]) {
    let mut confirmed = vec![0u32; sessions];
    let mut departed = vec![0u32; sessions];
    let mut terminal = vec![0u32; sessions];
    for ev in combined {
        match ev.kind {
            OutcomeKind::Confirmed => confirmed[ev.session] += 1,
            OutcomeKind::Departed => departed[ev.session] += 1,
            OutcomeKind::Admitted { .. }
            | OutcomeKind::Starved { .. }
            | OutcomeKind::Rejected { .. }
            | OutcomeKind::Errored { .. } => terminal[ev.session] += 1,
            OutcomeKind::RetryScheduled { .. } | OutcomeKind::FaultEdge => {}
        }
    }
    for s in 0..sessions {
        assert!(confirmed[s] <= 1, "session {s} confirmed {}×", confirmed[s]);
        assert!(departed[s] <= 1, "session {s} departed {}×", departed[s]);
        assert_eq!(
            terminal[s], 1,
            "session {s} reached {} terminal events",
            terminal[s]
        );
    }
}

/// Gates 1–3 for one crash point.
fn assert_recovery(full: &BrokerReport, rec: &RecoveryReport, cut: usize) {
    let at = rec.suffix_starts_at_event as usize;
    assert!(
        at <= full.events.len(),
        "cut {cut}: suffix start {at} past the full log ({})",
        full.events.len()
    );
    assert_eq!(
        rec.report.events,
        &full.events[at..],
        "cut {cut}: resumed outcome log is not the byte-identical suffix"
    );
    assert_eq!(
        rec.replayed_events as usize + rec.report.events.len(),
        full.events.len() - at + rec.replayed_events as usize,
        "cut {cut}: replay/suffix accounting is inconsistent"
    );
    assert_eq!(
        rec.report.results, full.results,
        "cut {cut}: whole-run results diverged"
    );
    assert_eq!(
        rec.report.leaked_streams, 0,
        "cut {cut}: recovered run leaked reservations"
    );
    let combined: Vec<&OutcomeEvent> = full.events[..at]
        .iter()
        .chain(rec.report.events.iter())
        .collect();
    assert_exactly_once(full.results.len(), &combined);
}

#[test]
fn journaling_does_not_perturb_the_run() {
    let config = chaos_config();
    let (plain_result, plain) = run_contended_with(&config, None);
    let journal = Journal::in_memory(chaos_journal_cfg());
    let (journaled_result, journaled) = run_contended_journaled(&config, None, &journal);
    assert_eq!(
        plain.events, journaled.events,
        "journaling perturbed the run"
    );
    assert_eq!(plain.results, journaled.results);
    assert_eq!(plain_result, journaled_result);
    let stats = journal.stats();
    assert_eq!(stats.events_appended as usize, plain.events.len());
    assert!(
        stats.snapshots >= 1,
        "run of {} events cut no snapshot at cadence 64",
        plain.events.len()
    );
    assert_eq!(stats.compactions, 0, "compaction was off");
}

#[test]
fn chaos_cuts_recover_to_byte_identical_suffixes() {
    let (full, bytes) = full_run();
    let journal = Journal::from_bytes(bytes.clone(), chaos_journal_cfg());
    let ends = journal.event_record_ends();
    assert_eq!(
        ends.len(),
        full.events.len(),
        "one journal record per outcome event"
    );
    assert!(
        full.events
            .iter()
            .any(|e| matches!(e.kind, OutcomeKind::FaultEdge)),
        "chaos run must cross fault windows"
    );

    let mut cuts: Vec<usize> = Vec::new();
    // Every fault-window edge record: the clean boundary plus both
    // torn-write neighbours (one byte short of the edge record's CRC,
    // one byte into the following frame).
    for (k, ev) in full.events.iter().enumerate() {
        if matches!(ev.kind, OutcomeKind::FaultEdge) {
            cuts.push(ends[k]);
            cuts.push(ends[k] - 1);
            if ends[k] + 1 < bytes.len() {
                cuts.push(ends[k] + 1);
            }
        }
    }
    // A clean cut at every 4th whole-record boundary.
    for k in (0..ends.len()).step_by(4) {
        cuts.push(ends[k]);
    }
    // Seeded mid-record torn writes anywhere past the first record.
    let mut rng = StreamRng::new(0xC0FFEE);
    let lo = ends[0];
    while cuts.len() < 96 {
        cuts.push(lo + rng.below((bytes.len() - lo - 1) as u64) as usize);
    }
    cuts.sort_unstable();
    cuts.dedup();
    assert!(cuts.len() >= 64, "only {} crash points", cuts.len());

    for &cut in &cuts {
        let rec = recover_from(bytes[..cut].to_vec())
            .unwrap_or_else(|e| panic!("recovery from cut {cut} failed: {e}"));
        assert_recovery(&full, &rec, cut);
    }
}

#[test]
fn recovery_from_a_complete_journal_replays_the_whole_tail() {
    let (full, bytes) = full_run();
    let rec = recover_from(bytes).expect("complete journal must recover");
    assert_recovery(&full, &rec, usize::MAX);
    // The run had already finished: the entire tail is replay, and the
    // resumed engine generates nothing new.
    assert!(rec.report.events.is_empty(), "a finished run resumed work");
    assert!(
        rec.replayed_events > 0,
        "a complete journal replays its tail"
    );
}

#[test]
fn recovery_from_a_header_only_journal_replays_from_scratch() {
    let (full, bytes) = full_run();
    let journal = Journal::from_bytes(bytes.clone(), chaos_journal_cfg());
    let first_event_end = journal.event_record_ends()[0];
    // A cut inside the very first event record leaves only the header.
    let rec = recover_from(bytes[..first_event_end - 1].to_vec())
        .expect("header-only journal must recover");
    assert_eq!(rec.resumed_at_ms, None, "no snapshot to resume from");
    assert_eq!(rec.replayed_events, 0);
    assert_eq!(rec.suffix_starts_at_event, 0);
    assert_eq!(rec.report.events, full.events, "from-scratch run diverged");
    assert_eq!(rec.report.results, full.results);
    assert!(rec.torn_bytes > 0, "the partial record was torn");
}

#[test]
fn sub_header_cuts_and_wrong_configs_are_refused() {
    let (_, bytes) = full_run();
    // Mid-header torn write: nothing valid survives truncation.
    assert!(matches!(
        recover_from(bytes[..10].to_vec()),
        Err(JournalError::NoHeader)
    ));
    assert!(matches!(
        recover_from(Vec::new()),
        Err(JournalError::NoHeader)
    ));
    // A journal from a different world (other seed) must be refused
    // before any state is touched.
    let other = ContendedConfig {
        seed: 8,
        ..chaos_config()
    };
    let other_journal = Journal::in_memory(chaos_journal_cfg());
    run_contended_journaled(&other, None, &other_journal);
    let journal = Journal::from_bytes(other_journal.bytes(), chaos_journal_cfg());
    assert!(matches!(
        recover_contended(&chaos_config(), None, &journal),
        Err(JournalError::SpecMismatch { .. })
    ));
}

#[test]
fn compacted_journals_stay_bounded_and_recoverable() {
    let config = chaos_config();
    let compacting = JournalConfig {
        snapshot_every_events: 64,
        compact: true,
        crash_after_events: None,
    };
    let journal = Journal::in_memory(compacting);
    let (_, full) = run_contended_journaled(&config, None, &journal);
    let stats = journal.stats();
    assert!(stats.compactions >= 1, "cadence 64 must compact this run");

    // The compacted journal holds only the newest snapshot plus its
    // tail, yet still recovers to the byte-identical suffix.
    let rec_journal = Journal::from_bytes(journal.bytes(), compacting);
    let rec = recover_contended(&config, None, &rec_journal).expect("compacted journal recovers");
    assert_recovery(&full, &rec, usize::MAX);
    assert!(rec.resumed_at_ms.is_some(), "compaction implies a snapshot");
}
