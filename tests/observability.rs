//! Cross-crate observability integration: a QoS manager wired to a
//! recorder emits the negotiation pipeline's stage spans in order, outcome
//! counters account for every request, and the snapshot that `run_scenario
//! --metrics-out` writes round-trips through JSON.

use std::sync::Arc;

use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{ServerConfig, ServerFarm};
use news_on_demand::mmdb::{CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::{ClientId, DocumentId, ServerId};
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::obs::{MemorySink, ObsEvent, Recorder, Snapshot};
use news_on_demand::qosneg::manager::{ManagerConfig, QosManager};
use news_on_demand::qosneg::profile::tv_news_profile;
use news_on_demand::qosneg::{CostModel, NegotiationRequest, NegotiationStatus};
use news_on_demand::simcore::StreamRng;
use news_on_demand::workload::{
    run_blocking_with, run_contended_with, BlockingConfig, ContendedConfig,
};

fn manager(seed: u64, recorder: Recorder) -> QosManager {
    let mut rng = StreamRng::new(seed);
    let catalog = CorpusBuilder::new(CorpusParams {
        documents: 10,
        servers: (0..3).map(ServerId).collect(),
        video_variants: (3, 6),
        replicas: (1, 2),
        duration_secs: (60, 120),
        ..CorpusParams::default()
    })
    .build(&mut rng);
    let m = QosManager::new(
        catalog,
        ServerFarm::uniform(3, ServerConfig::era_default()),
        Network::new(Topology::dumbbell(6, 3, 25_000_000, 155_000_000)),
        CostModel::era_default(),
        ManagerConfig {
            recorder: Some(recorder.clone()),
            ..ManagerConfig::default()
        },
    );
    m.farm().set_recorder(&recorder);
    m.network().set_recorder(recorder);
    m
}

#[test]
fn manager_negotiation_emits_stage_spans_in_order() {
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::with_sink(sink.clone());
    let m = manager(41, recorder);
    let client = ClientMachine::era_workstation(ClientId(0));
    let out = m
        .submit(&NegotiationRequest::new(
            &client,
            DocumentId(1),
            &tv_news_profile(),
        ))
        .unwrap();
    if let Some(r) = &out.reservation {
        m.release(r);
    }

    let events: Vec<ObsEvent> = sink.events();
    let starts: Vec<&ObsEvent> = events.iter().filter(|e| e.kind == "span_start").collect();
    assert_eq!(starts[0].name, "negotiate", "root span opens first");
    let root_id = starts[0].span.unwrap();
    assert_eq!(starts[0].parent, Some(0), "negotiate is a root span");

    // Every stage span is a child of the negotiate span, in pipeline order:
    // enumerate → prune → classify → commit… (one commit per attempt).
    let children: Vec<&str> = starts
        .iter()
        .skip(1)
        .map(|e| {
            assert_eq!(e.parent, Some(root_id), "stage {} parented to root", e.name);
            e.name.as_str()
        })
        .collect();
    assert!(
        children.len() >= 4,
        "expected 4+ stage spans, got {children:?}"
    );
    assert_eq!(&children[..3], &["enumerate", "prune", "classify"]);
    assert!(
        children[3..].iter().all(|&n| n == "commit"),
        "after classify only commit attempts remain: {children:?}"
    );

    // The root span ends last, after every child has ended.
    let ends: Vec<&ObsEvent> = events.iter().filter(|e| e.kind == "span_end").collect();
    assert_eq!(ends.last().unwrap().name, "negotiate");
    assert_eq!(
        starts.len(),
        ends.len(),
        "every opened span ends exactly once"
    );
}

#[test]
fn outcome_counters_sum_to_requests() {
    let recorder = Recorder::new();
    let m = manager(42, recorder.clone());
    let profile = tv_news_profile();
    let requests = 24u64;
    for i in 0..requests {
        let client = ClientMachine::era_workstation(ClientId(i % 6));
        let doc = DocumentId(i % 10 + 1);
        // Resources are held, so later requests saturate the system and
        // exercise the failure statuses too.
        let _ = m
            .submit(&NegotiationRequest::new(&client, doc, &profile))
            .unwrap();
    }

    let snap = recorder.snapshot();
    assert_eq!(snap.counter_sum("negotiation.outcome"), requests);
    let by_status: u64 = [
        "SUCCEEDED",
        "FAILEDWITHOFFER",
        "FAILEDTRYLATER",
        "FAILEDWITHOUTOFFER",
        "FAILEDWITHLOCALOFFER",
    ]
    .iter()
    .map(|s| snap.counter(&format!("negotiation.outcome{{status={s}}}")))
    .sum();
    assert_eq!(by_status, requests, "every outcome carries a known status");
    assert!(
        snap.counter(&format!(
            "negotiation.outcome{{status={}}}",
            NegotiationStatus::Succeeded
        )) > 0,
        "an idle system must admit the first sessions"
    );

    // The subsystems under the manager reported through the same recorder.
    assert!(
        snap.counter_sum("cmfs.admission") > 0,
        "server admissions counted"
    );
    assert!(
        snap.counter("net.reservation.attempts") > 0,
        "network reservations counted"
    );
    assert_eq!(
        snap.counter("negotiation.reservation.attempts"),
        snap.counter_sum("negotiation.commit.refused")
            + snap.counter("negotiation.outcome{status=SUCCEEDED}")
            + snap.counter("negotiation.outcome{status=FAILEDWITHOFFER}"),
        "each commit attempt either succeeds or is refused with a reason"
    );
}

#[test]
fn workload_snapshot_has_stage_histograms_and_round_trips() {
    let recorder = Recorder::new();
    let result = run_blocking_with(
        &BlockingConfig {
            seed: 13,
            documents: 8,
            servers: 3,
            clients: 4,
            arrivals_per_minute: 4.0,
            horizon_minutes: 20.0,
            ..BlockingConfig::default()
        },
        Some(&recorder),
    );
    assert!(result.offered > 0);

    let snap = recorder.snapshot();
    assert_eq!(
        snap.counter_sum("negotiation.outcome"),
        result.offered,
        "one outcome per offered session"
    );
    for stage in ["negotiate", "enumerate", "prune", "classify", "commit"] {
        let hist = snap
            .histograms
            .get(&format!("span.{stage}.ms"))
            .unwrap_or_else(|| panic!("missing span.{stage}.ms histogram"));
        assert!(hist.count > 0, "span.{stage}.ms has samples");
    }

    // The exact JSON the `--metrics-out` flag writes must round-trip.
    let json = snap.to_json_pretty();
    let back = Snapshot::from_json_str(&json).expect("snapshot JSON parses");
    assert_eq!(back.counters, snap.counters);
    assert_eq!(
        back.histograms.len(),
        snap.histograms.len(),
        "all histograms survive the round trip"
    );
}

#[test]
fn broker_counters_flow_through_the_recorder() {
    let recorder = Recorder::new();
    let (result, report) = run_contended_with(
        &ContendedConfig {
            seed: 21,
            sessions: 24,
            servers: 1,
            arrivals_per_minute: 240.0,
            hold_ms: 8_000,
            fault_windows: 3,
            ..ContendedConfig::default()
        },
        Some(&recorder),
    );
    assert_eq!(result.leaked_streams, 0);
    assert!(result.retries > 0, "the undersized farm must force retries");

    let snap = recorder.snapshot();
    assert_eq!(snap.counter("broker.retries"), report.retries);
    assert_eq!(snap.counter("broker.backoff_ms"), report.backoff_ms_total);
    assert_eq!(
        snap.counter("broker.faults.injected"),
        report.faults_injected
    );
    assert_eq!(
        snap.counter("broker.sessions.starved"),
        report.starved as u64
    );
    assert_eq!(snap.counter("broker.leaked_reservations"), 0);
    assert_eq!(
        snap.gauges.get("broker.admission_ratio").copied(),
        Some(report.admission_ratio)
    );
    // The negotiations underneath the broker report through the same
    // recorder: one outcome per attempt (arrivals + retries).
    assert_eq!(
        snap.counter_sum("negotiation.outcome"),
        result.offered as u64 + report.retries
    );
}
