//! Property-based tests over the core invariants, spanning crates.
//!
//! Originally `proptest` properties; now driven by the workspace's seeded
//! `StreamRng` so the suite stays dependency-free and reproducible. Each
//! property runs `CASES` independently seeded trials.

use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{Guarantee, ServerConfig, ServerFarm, StreamRequirement};
use news_on_demand::mmdb::{CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::prelude::*;
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::qosneg::classify::{classify, ClassificationStrategy};
use news_on_demand::qosneg::importance::PiecewiseLinear;
use news_on_demand::qosneg::negotiate::NegotiationContext;
use news_on_demand::qosneg::offer::SystemOffer;
use news_on_demand::qosneg::profile::{tv_news_profile, MmQosSpec};
use news_on_demand::qosneg::sns::{compute_sns, StaticNegotiationStatus};
use news_on_demand::qosneg::{CostModel, ImportanceProfile, Money, UserProfile};
use news_on_demand::qosneg::{NegotiationRequest, Session};
use news_on_demand::simcore::StreamRng;
use news_on_demand::syncplay::JitterBuffer;
use std::collections::BTreeMap;

const CASES: u64 = 64;

fn case_rngs(test_seed: u64) -> impl Iterator<Item = (u64, StreamRng)> {
    (0..CASES).map(move |case| {
        let seed = test_seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (seed, StreamRng::new(seed))
    })
}

fn arb_color(rng: &mut StreamRng) -> ColorDepth {
    ColorDepth::ALL[rng.below(4) as usize]
}

fn arb_video(rng: &mut StreamRng) -> VideoQos {
    VideoQos {
        color: arb_color(rng),
        resolution: Resolution::new(rng.range_u64(10, 1920) as u32),
        frame_rate: FrameRate::new(rng.range_u64(1, 60) as u32),
    }
}

fn video_offer(id: u64, qos: VideoQos, cost_millis: i64) -> SystemOffer {
    SystemOffer {
        variants: vec![Variant {
            id: VariantId(id),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: MediaQos::Video(qos),
            blocks: BlockStats::new(12_000, 5_000),
            blocks_per_second: qos.frame_rate.fps(),
            file_bytes: 1_000_000,
            server: ServerId(0),
        }],
        cost: Money::from_millis(cost_millis),
    }
}

fn strict_video_profile(required: VideoQos, max_cost_millis: i64) -> UserProfile {
    UserProfile::strict(
        "prop",
        MmQosSpec {
            video: Some(required),
            ..MmQosSpec::default()
        },
        Money::from_millis(max_cost_millis),
    )
}

/// Improving any QoS component (or cutting cost) never worsens the SNS.
#[test]
fn sns_is_monotone() {
    for (seed, mut rng) in case_rngs(0x5A50) {
        let req = arb_video(&mut rng);
        let offered = arb_video(&mut rng);
        let cost = rng.below(10_000) as i64;
        let p = strict_video_profile(req, 4_000);
        let base = compute_sns(&p, [&MediaQos::Video(offered)], Money::from_millis(cost));
        // Upgrade color to the max and drop the price.
        let better = VideoQos {
            color: ColorDepth::SuperColor,
            ..offered
        };
        let upgraded = compute_sns(&p, [&MediaQos::Video(better)], Money::from_millis(0));
        assert!(
            upgraded <= base,
            "upgrade worsened SNS: {base:?} -> {upgraded:?} (seed {seed})"
        );
    }
}

/// An offer meeting the request exactly is DESIRABLE iff within budget.
#[test]
fn exact_match_desirability() {
    for (seed, mut rng) in case_rngs(0xE4AC) {
        let req = arb_video(&mut rng);
        let cost = rng.below(10_000) as i64;
        let max = rng.below(10_000) as i64;
        let p = strict_video_profile(req, max);
        let sns = compute_sns(&p, [&MediaQos::Video(req)], Money::from_millis(cost));
        if cost <= max {
            assert_eq!(sns, StaticNegotiationStatus::Desirable, "seed {seed}");
        } else {
            assert_eq!(sns, StaticNegotiationStatus::Acceptable, "seed {seed}");
        }
    }
}

/// Classification output: a permutation of the input, SNS groups in order,
/// OIF descending inside each group.
#[test]
fn classification_sort_invariants() {
    for (seed, mut rng) in case_rngs(0xC1A5) {
        let p = strict_video_profile(
            VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::TV,
                frame_rate: FrameRate::TV,
            },
            4_000,
        );
        let n = rng.range_u64(1, 39) as usize;
        let input: Vec<SystemOffer> = (0..n)
            .map(|i| {
                let q = arb_video(&mut rng);
                let c = rng.below(9_000) as i64;
                video_offer(i as u64, q, c)
            })
            .collect();
        let scored = classify(input, &p, ClassificationStrategy::SnsThenOif);
        assert_eq!(scored.len(), n, "seed {seed}");
        let mut ids: Vec<u64> = scored.iter().map(|s| s.offer.variants[0].id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..n as u64).collect::<Vec<_>>(), "seed {seed}");
        for w in scored.windows(2) {
            assert!(
                w[0].sns <= w[1].sns,
                "SNS groups out of order (seed {seed})"
            );
            if w[0].sns == w[1].sns {
                assert!(
                    w[0].oif >= w[1].oif,
                    "OIF not descending in group (seed {seed})"
                );
            }
        }
    }
}

/// Piecewise-linear importance stays within the hull of its anchors.
#[test]
fn interpolation_bounded() {
    for (seed, mut rng) in case_rngs(0x1B0D) {
        let mut anchors: BTreeMap<u32, f64> = BTreeMap::new();
        for _ in 0..rng.range_u64(1, 5) {
            anchors.insert(rng.below(2_000) as u32, rng.range_f64(-50.0, 50.0));
        }
        let x = rng.range_f64(0.0, 2_000.0);
        let pts: Vec<(f64, f64)> = anchors.iter().map(|(&k, &v)| (k as f64, v)).collect();
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let curve = PiecewiseLinear::new(pts);
        let y = curve.value_at(x);
        assert!(
            y >= lo - 1e-9 && y <= hi + 1e-9,
            "{y} outside [{lo}, {hi}] (seed {seed})"
        );
    }
}

/// OIF decomposes exactly: overall = qos_importance − cost_importance.
#[test]
fn oif_decomposition() {
    for (seed, mut rng) in case_rngs(0x01F0) {
        let q = arb_video(&mut rng);
        let cost = rng.below(20_000) as i64;
        let imp = ImportanceProfile::default();
        let money = Money::from_millis(cost);
        let qos = MediaQos::Video(q);
        let overall = imp.overall([&qos], money);
        assert!(
            (overall - (imp.media_importance(&qos) - imp.cost_importance(money))).abs() < 1e-9,
            "seed {seed}"
        );
    }
}

/// Server reserve/release sequences conserve capacity exactly.
#[test]
fn server_reservation_conservation() {
    for (seed, mut rng) in case_rngs(0x5E4F) {
        let farm = ServerFarm::uniform(1, ServerConfig::era_default());
        let server = farm.server(ServerId(0)).unwrap();
        let req = StreamRequirement {
            variant: VariantId(1),
            max_bit_rate: 2_000_000,
            avg_bit_rate: 900_000,
            max_block_bytes: 10_000,
            avg_block_bytes: 4_500,
            blocks_per_second: 25,
            guarantee: Guarantee::Guaranteed,
        };
        let mut held = Vec::new();
        for _ in 0..rng.range_u64(1, 120) {
            if rng.chance(0.5) {
                if let Ok(id) = server.try_reserve(req) {
                    held.push(id);
                }
            } else if let Some(id) = held.pop() {
                server.release(id);
            }
        }
        for id in held.drain(..) {
            server.release(id);
        }
        assert!(server.disk_utilization() < 1e-12, "seed {seed}");
        assert!(server.interface_utilization() < 1e-12, "seed {seed}");
        assert_eq!(server.active_streams(), 0, "seed {seed}");
    }
}

/// Network path reservations roll back exactly.
#[test]
fn network_reservation_conservation() {
    for (seed, mut rng) in case_rngs(0x2E75) {
        let net = Network::new(Topology::dumbbell(4, 3, 10_000_000, 155_000_000));
        let mut held = Vec::new();
        for _ in 0..rng.range_u64(1, 60) {
            let client = rng.below(4);
            let server = rng.below(3);
            let bps = rng.range_u64(1, 12_000_000);
            if let Ok(id) = net.try_reserve(ClientId(client), ServerId(server), bps) {
                held.push(id);
            }
        }
        for id in held {
            net.release(id);
        }
        assert_eq!(net.active_reservations(), 0, "seed {seed}");
        for link in net.topology().link_ids() {
            assert!(net.link_utilization(link) < 1e-12, "seed {seed}");
        }
    }
}

/// The jitter buffer never plays more media than wall time and never
/// exceeds capacity.
#[test]
fn buffer_conservation() {
    for (seed, mut rng) in case_rngs(0xB0FF) {
        let capacity = rng.range_u64(100, 5_000);
        let mut b = JitterBuffer::new(capacity);
        for _ in 0..rng.range_u64(1, 80) {
            let dt = rng.range_u64(1, 2_000);
            let ratio = rng.range_f64(0.0, 3.0);
            let played = b.advance(dt, ratio);
            assert!(played <= dt as f64 + 1e-9, "seed {seed}");
            assert!(b.level_ms() <= capacity as f64 + 1e-9, "seed {seed}");
            assert!(b.level_ms() >= 0.0, "seed {seed}");
        }
    }
}

/// Whole-pipeline property: after any negotiation outcome is released, the
/// shared system is exactly idle (no leaked reservations anywhere).
#[test]
fn negotiation_never_leaks_resources() {
    for seed in 0..12u64 {
        let mut rng = StreamRng::new(seed);
        let catalog = CorpusBuilder::new(CorpusParams {
            documents: 4,
            servers: (0..2).map(ServerId).collect(),
            ..CorpusParams::default()
        })
        .build(&mut rng);
        let farm = ServerFarm::uniform(2, ServerConfig::era_default());
        let network = Network::new(Topology::dumbbell(3, 2, 25_000_000, 155_000_000));
        let cost = CostModel::era_default();
        let ctx = NegotiationContext {
            catalog: &catalog,
            farm: &farm,
            network: &network,
            cost_model: &cost,
            strategy: ClassificationStrategy::SnsThenOif,
            guarantee: Guarantee::Guaranteed,
            enumeration_cap: 500_000,
            jitter_buffer_ms: 2_000,
            prune_dominated: false,
            streaming: nod_qosneg::negotiate::StreamingMode::Auto,
            recorder: None,
            explain: false,
        };
        let client = ClientMachine::era_workstation(ClientId(0));
        let session = Session::new(ctx);
        for doc in 1..=4u64 {
            let out = session
                .submit(&NegotiationRequest::new(
                    &client,
                    DocumentId(doc),
                    &tv_news_profile(),
                ))
                .unwrap();
            if let Some(r) = &out.reservation {
                r.release(&farm, &network);
            }
        }
        assert_eq!(network.active_reservations(), 0, "seed {seed}");
        assert!(farm.mean_disk_utilization() < 1e-12, "seed {seed}");
    }
}
