//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;

use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{Guarantee, ServerConfig, ServerFarm, StreamRequirement};
use news_on_demand::mmdb::{CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::prelude::*;
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::qosneg::classify::{classify, ClassificationStrategy};
use news_on_demand::qosneg::importance::PiecewiseLinear;
use news_on_demand::qosneg::negotiate::{negotiate, NegotiationContext};
use news_on_demand::qosneg::offer::SystemOffer;
use news_on_demand::qosneg::profile::{tv_news_profile, MmQosSpec};
use news_on_demand::qosneg::sns::{compute_sns, StaticNegotiationStatus};
use news_on_demand::qosneg::{CostModel, ImportanceProfile, Money, UserProfile};
use news_on_demand::simcore::StreamRng;
use news_on_demand::syncplay::JitterBuffer;

fn arb_color() -> impl Strategy<Value = ColorDepth> {
    prop_oneof![
        Just(ColorDepth::BlackWhite),
        Just(ColorDepth::Grey),
        Just(ColorDepth::Color),
        Just(ColorDepth::SuperColor),
    ]
}

fn arb_video() -> impl Strategy<Value = VideoQos> {
    (arb_color(), 10u32..=1920, 1u32..=60).prop_map(|(color, px, fps)| VideoQos {
        color,
        resolution: Resolution::new(px),
        frame_rate: FrameRate::new(fps),
    })
}

fn video_offer(id: u64, qos: VideoQos, cost_millis: i64) -> SystemOffer {
    SystemOffer {
        variants: vec![Variant {
            id: VariantId(id),
            monomedia: MonomediaId(1),
            format: Format::Mpeg1,
            qos: MediaQos::Video(qos),
            blocks: BlockStats::new(12_000, 5_000),
            blocks_per_second: qos.frame_rate.fps(),
            file_bytes: 1_000_000,
            server: ServerId(0),
        }],
        cost: Money::from_millis(cost_millis),
    }
}

fn strict_video_profile(required: VideoQos, max_cost_millis: i64) -> UserProfile {
    UserProfile::strict(
        "prop",
        MmQosSpec {
            video: Some(required),
            ..MmQosSpec::default()
        },
        Money::from_millis(max_cost_millis),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Improving any QoS component (or cutting cost) never worsens the SNS.
    #[test]
    fn sns_is_monotone(req in arb_video(), offered in arb_video(), cost in 0i64..10_000) {
        let p = strict_video_profile(req, 4_000);
        let base = compute_sns(&p, [&MediaQos::Video(offered)], Money::from_millis(cost));
        // Upgrade color to the max and drop the price.
        let better = VideoQos { color: ColorDepth::SuperColor, ..offered };
        let upgraded = compute_sns(&p, [&MediaQos::Video(better)], Money::from_millis(0));
        prop_assert!(upgraded <= base, "upgrade worsened SNS: {base:?} -> {upgraded:?}");
    }

    /// An offer meeting the request exactly is DESIRABLE iff within budget.
    #[test]
    fn exact_match_desirability(req in arb_video(), cost in 0i64..10_000, max in 0i64..10_000) {
        let p = strict_video_profile(req, max);
        let sns = compute_sns(&p, [&MediaQos::Video(req)], Money::from_millis(cost));
        if cost <= max {
            prop_assert_eq!(sns, StaticNegotiationStatus::Desirable);
        } else {
            prop_assert_eq!(sns, StaticNegotiationStatus::Acceptable);
        }
    }

    /// Classification output: a permutation of the input, SNS groups in
    /// order, OIF descending inside each group.
    #[test]
    fn classification_sort_invariants(
        offers in prop::collection::vec((arb_video(), 0i64..9_000), 1..40)
    ) {
        let p = strict_video_profile(
            VideoQos {
                color: ColorDepth::Color,
                resolution: Resolution::TV,
                frame_rate: FrameRate::TV,
            },
            4_000,
        );
        let input: Vec<SystemOffer> = offers
            .iter()
            .enumerate()
            .map(|(i, (q, c))| video_offer(i as u64, *q, *c))
            .collect();
        let n = input.len();
        let scored = classify(input, &p, ClassificationStrategy::SnsThenOif);
        prop_assert_eq!(scored.len(), n);
        let mut ids: Vec<u64> = scored.iter().map(|s| s.offer.variants[0].id.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        for w in scored.windows(2) {
            prop_assert!(w[0].sns <= w[1].sns, "SNS groups out of order");
            if w[0].sns == w[1].sns {
                prop_assert!(w[0].oif >= w[1].oif, "OIF not descending in group");
            }
        }
    }

    /// Piecewise-linear importance stays within the hull of its anchors.
    #[test]
    fn interpolation_bounded(
        anchors in prop::collection::btree_map(0u32..2_000, -50.0f64..50.0, 1..6),
        x in 0f64..2_000.0
    ) {
        let pts: Vec<(f64, f64)> = anchors.iter().map(|(&k, &v)| (k as f64, v)).collect();
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let curve = PiecewiseLinear::new(pts);
        let y = curve.value_at(x);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "{y} outside [{lo}, {hi}]");
    }

    /// OIF decomposes exactly: overall = qos_importance − cost_importance.
    #[test]
    fn oif_decomposition(q in arb_video(), cost in 0i64..20_000) {
        let imp = ImportanceProfile::default();
        let money = Money::from_millis(cost);
        let qos = MediaQos::Video(q);
        let overall = imp.overall([&qos], money);
        prop_assert!(
            (overall - (imp.media_importance(&qos) - imp.cost_importance(money))).abs() < 1e-9
        );
    }

    /// Server reserve/release sequences conserve capacity exactly.
    #[test]
    fn server_reservation_conservation(ops in prop::collection::vec(any::<bool>(), 1..120)) {
        let farm = ServerFarm::uniform(1, ServerConfig::era_default());
        let server = farm.server(ServerId(0)).unwrap();
        let req = StreamRequirement {
            variant: VariantId(1),
            max_bit_rate: 2_000_000,
            avg_bit_rate: 900_000,
            max_block_bytes: 10_000,
            avg_block_bytes: 4_500,
            blocks_per_second: 25,
            guarantee: Guarantee::Guaranteed,
        };
        let mut held = Vec::new();
        for op in ops {
            if op {
                if let Ok(id) = server.try_reserve(req) {
                    held.push(id);
                }
            } else if let Some(id) = held.pop() {
                server.release(id);
            }
        }
        for id in held.drain(..) {
            server.release(id);
        }
        prop_assert!(server.disk_utilization() < 1e-12);
        prop_assert!(server.interface_utilization() < 1e-12);
        prop_assert_eq!(server.active_streams(), 0);
    }

    /// Network path reservations roll back exactly.
    #[test]
    fn network_reservation_conservation(
        ops in prop::collection::vec((0u64..4, 0u64..3, 1u64..12_000_000), 1..60)
    ) {
        let net = Network::new(Topology::dumbbell(4, 3, 10_000_000, 155_000_000));
        let mut held = Vec::new();
        for (client, server, bps) in ops {
            if let Ok(id) = net.try_reserve(ClientId(client), ServerId(server), bps) {
                held.push(id);
            }
        }
        for id in held {
            net.release(id);
        }
        prop_assert_eq!(net.active_reservations(), 0);
        for link in net.topology().link_ids() {
            prop_assert!(net.link_utilization(link) < 1e-12);
        }
    }

    /// The jitter buffer never plays more media than wall time and never
    /// exceeds capacity.
    #[test]
    fn buffer_conservation(
        steps in prop::collection::vec((1u64..2_000, 0f64..3.0), 1..80),
        capacity in 100u64..5_000
    ) {
        let mut b = JitterBuffer::new(capacity);
        for (dt, ratio) in steps {
            let played = b.advance(dt, ratio);
            prop_assert!(played <= dt as f64 + 1e-9);
            prop_assert!(b.level_ms() <= capacity as f64 + 1e-9);
            prop_assert!(b.level_ms() >= 0.0);
        }
    }
}

/// Whole-pipeline property: after any negotiation outcome is released, the
/// shared system is exactly idle (no leaked reservations anywhere).
#[test]
fn negotiation_never_leaks_resources() {
    for seed in 0..12u64 {
        let mut rng = StreamRng::new(seed);
        let catalog = CorpusBuilder::new(CorpusParams {
            documents: 4,
            servers: (0..2).map(ServerId).collect(),
            ..CorpusParams::default()
        })
        .build(&mut rng);
        let farm = ServerFarm::uniform(2, ServerConfig::era_default());
        let network = Network::new(Topology::dumbbell(3, 2, 25_000_000, 155_000_000));
        let cost = CostModel::era_default();
        let ctx = NegotiationContext {
            catalog: &catalog,
            farm: &farm,
            network: &network,
            cost_model: &cost,
            strategy: ClassificationStrategy::SnsThenOif,
            guarantee: Guarantee::Guaranteed,
            enumeration_cap: 500_000,
        jitter_buffer_ms: 2_000,
        prune_dominated: false,
        };
        let client = ClientMachine::era_workstation(ClientId(0));
        for doc in 1..=4u64 {
            let out = negotiate(&ctx, &client, DocumentId(doc), &tv_news_profile()).unwrap();
            if let Some(r) = &out.reservation {
                r.release(&farm, &network);
            }
        }
        assert_eq!(network.active_reservations(), 0, "seed {seed}");
        assert!(farm.mean_disk_utilization() < 1e-12, "seed {seed}");
    }
}
