//! Contention integration tests for the negotiation broker: many sessions
//! racing for a deliberately undersized farm must all reach a terminal
//! paper status, leak zero capacity, and — when refused FAILEDTRYLATER —
//! succeed on retry once earlier departures release resources. Fault
//! injection must replay bit-for-bit under the same seed.

use news_on_demand::broker::{
    Broker, BrokerConfig, EventRetention, FleetSpec, OutcomeKind, SessionFate, SessionSpec,
};
use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{Guarantee, ServerConfig, ServerFarm};
use news_on_demand::mmdb::{Catalog, CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::{ClientId, DocumentId, ServerId};
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::qosneg::negotiate::{NegotiationContext, StreamingMode};
use news_on_demand::qosneg::profile::tv_news_profile;
use news_on_demand::qosneg::{
    ClassificationStrategy, CostModel, NegotiationRequest, NegotiationStatus, RetryPolicy, Session,
};
use news_on_demand::simcore::StreamRng;
use news_on_demand::workload::{run_contended_with, ContendedConfig};

const CLIENTS: u64 = 8;

struct World {
    catalog: Catalog,
    farm: ServerFarm,
    network: Network,
    cost: CostModel,
}

/// Two servers capped at 16 stream slots each: a farm sized for exactly
/// 32 concurrent streams, the bottleneck the 64-session burst fights over.
fn world(seed: u64) -> World {
    let mut rng = StreamRng::new(seed);
    let catalog = CorpusBuilder::new(CorpusParams {
        documents: 8,
        servers: (0..2).map(ServerId).collect(),
        ..CorpusParams::default()
    })
    .build(&mut rng);
    World {
        catalog,
        farm: ServerFarm::uniform(
            2,
            ServerConfig {
                max_streams: 16,
                ..ServerConfig::era_default()
            },
        ),
        network: Network::new(Topology::dumbbell(
            CLIENTS as usize,
            2,
            25_000_000,
            155_000_000,
        )),
        cost: CostModel::era_default(),
    }
}

fn ctx(w: &World) -> NegotiationContext<'_> {
    NegotiationContext {
        catalog: &w.catalog,
        farm: &w.farm,
        network: &w.network,
        cost_model: &w.cost,
        strategy: ClassificationStrategy::SnsThenOif,
        guarantee: Guarantee::Guaranteed,
        enumeration_cap: 500_000,
        jitter_buffer_ms: 2_000,
        prune_dominated: false,
        streaming: StreamingMode::Auto,
        recorder: None,
        explain: false,
    }
}

fn assert_drained(w: &World) {
    assert_eq!(w.network.active_reservations(), 0, "network not drained");
    assert!(w.farm.mean_disk_utilization() < 1e-12, "farm not drained");
}

/// Admit sessions back to back (without releasing) until the system
/// refuses one; returns how many concurrent streams it carried. The held
/// reservations are released before returning.
fn measure_capacity(w: &World, clients: &[ClientMachine]) -> usize {
    let session = Session::new(ctx(w));
    let profile = tv_news_profile();
    let mut held = Vec::new();
    loop {
        let client = &clients[held.len() % clients.len()];
        let doc = DocumentId(held.len() as u64 % 8 + 1);
        let out = session
            .submit(&NegotiationRequest::new(client, doc, &profile))
            .unwrap();
        match out.status {
            NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer => {
                held.push(out.reservation.expect("admitted outcome reserves"));
            }
            _ => break,
        }
        assert!(held.len() <= 64, "capacity never saturated");
    }
    let capacity = held.len();
    for r in &held {
        session.release(r);
    }
    capacity
}

fn clients() -> Vec<ClientMachine> {
    (0..CLIENTS)
        .map(|i| ClientMachine::era_workstation(ClientId(i)))
        .collect()
}

#[test]
fn sixty_four_sessions_contend_for_a_thirty_two_stream_farm() {
    let w = world(900);
    let clients = clients();
    let capacity = measure_capacity(&w, &clients);
    assert!(
        (8..=32).contains(&capacity),
        "farm should carry up to 32 concurrent streams, measured {capacity}"
    );
    assert_drained(&w);

    // 64 sessions arrive in a 16 s burst, each holding for 8 s — roughly
    // twice what the farm can carry at once.
    let profile = tv_news_profile();
    let specs: Vec<SessionSpec<'_>> = (0..64u64)
        .map(|i| SessionSpec {
            client: &clients[(i % CLIENTS) as usize],
            document: DocumentId(i % 8 + 1),
            profile: &profile,
            arrival_ms: i * 250,
            hold_ms: Some(8_000),
        })
        .collect();
    let broker = Broker::new(
        ctx(&w),
        BrokerConfig {
            retry: RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::era_default()
            },
            ..BrokerConfig::era_default()
        },
    );
    let report = broker.drive(&FleetSpec::new(&specs));

    // Every session reached one terminal fate; the partition is exact.
    assert_eq!(report.results.len(), 64);
    assert_eq!(
        report.admitted + report.starved + report.rejected + report.errored,
        64
    );
    assert_eq!(report.errored, 0, "well-formed requests never error");
    // Contention forced FAILEDTRYLATER refusals…
    assert!(report.retries > 0, "no contention observed: {report:?}");
    // …and the backoff + departure cycle let refused sessions through:
    // at least one admission took more than one attempt.
    let retried_in = report
        .results
        .iter()
        .filter(|r| matches!(r.fate, SessionFate::Admitted { .. }) && r.attempts > 1)
        .count();
    assert!(
        retried_in > 0,
        "no retried session was eventually admitted: {report:?}"
    );
    // The burst should overwhelm the farm, but departures recycle slots,
    // so admissions exceed the concurrent capacity.
    assert!(
        report.admitted > capacity,
        "admitted {} should exceed the concurrent capacity {capacity}",
        report.admitted
    );
    // Terminal refusals all carry a paper status.
    for e in &report.events {
        if let OutcomeKind::Rejected { status } = &e.kind {
            assert!(
                matches!(
                    status,
                    NegotiationStatus::FailedWithOffer
                        | NegotiationStatus::FailedTryLater
                        | NegotiationStatus::FailedWithoutOffer
                        | NegotiationStatus::FailedWithLocalOffer
                ),
                "unexpected terminal status {status}"
            );
        }
    }
    // Zero leaked capacity, by audit and by direct inspection.
    assert_eq!(report.leaked_streams, 0);
    assert_drained(&w);
}

#[test]
fn k_sessions_racing_for_half_capacity_converge_without_leaks() {
    for seed in [901u64, 902, 903] {
        let w = world(seed);
        let clients = clients();
        let capacity = measure_capacity(&w, &clients);
        assert!(capacity >= 4, "seed {seed}: degenerate capacity {capacity}");
        assert_drained(&w);

        // K = 2 × capacity sessions all arrive inside one second: at most
        // half of them can hold a stream at any instant.
        let k = capacity * 2;
        let profile = tv_news_profile();
        let specs: Vec<SessionSpec<'_>> = (0..k as u64)
            .map(|i| SessionSpec {
                client: &clients[(i % CLIENTS) as usize],
                document: DocumentId(i % 8 + 1),
                profile: &profile,
                arrival_ms: i * 1_000 / k as u64,
                hold_ms: Some(4_000),
            })
            .collect();
        let broker = Broker::new(
            ctx(&w),
            BrokerConfig {
                retry: RetryPolicy {
                    max_attempts: 12,
                    deadline_ms: None,
                    ..RetryPolicy::era_default()
                },
                seed,
                ..BrokerConfig::era_default()
            },
        );
        let report = broker.drive(&FleetSpec::new(&specs));
        assert_eq!(report.leaked_streams, 0, "seed {seed}");
        assert_eq!(
            report.admitted + report.starved + report.rejected + report.errored,
            k,
            "seed {seed}"
        );
        assert!(report.retries > 0, "seed {seed}: the race forces retries");
        assert!(
            report
                .results
                .iter()
                .any(|r| matches!(r.fate, SessionFate::Admitted { .. }) && r.attempts > 1),
            "seed {seed}: retries must eventually succeed"
        );
        assert_drained(&w);
    }
}

#[test]
fn fault_injection_replays_identically_for_the_same_seed() {
    // Drive the full workload harness — corpus, Poisson arrivals, seeded
    // fault plan — twice from one seed: the outcome logs must be equal.
    let config = ContendedConfig {
        seed: 77,
        sessions: 32,
        servers: 2,
        arrivals_per_minute: 180.0,
        hold_ms: 10_000,
        fault_windows: 5,
        ..ContendedConfig::default()
    };
    let (ra, reporta) = run_contended_with(&config, None);
    let (rb, reportb) = run_contended_with(&config, None);
    assert_eq!(ra, rb, "summary aggregates must replay");
    assert_eq!(reporta.events, reportb.events, "outcome log must replay");
    assert_eq!(reporta.results, reportb.results);
    assert!(ra.faults_injected > 0, "the fault plan must actually fire");
    assert_eq!(ra.leaked_streams, 0, "faults must not leak capacity");

    // A different seed takes a different path (sanity that the equality
    // above is not vacuous).
    let (rc, reportc) = run_contended_with(&ContendedConfig { seed: 78, ..config }, None);
    assert!(
        reportc.events != reporta.events || rc != ra,
        "different seeds should diverge somewhere"
    );
}

#[test]
fn threaded_stress_run_terminates_and_leaks_nothing() {
    let w = world(950);
    let clients = clients();
    let profile = tv_news_profile();
    let specs: Vec<SessionSpec<'_>> = (0..48u64)
        .map(|i| SessionSpec {
            client: &clients[(i % CLIENTS) as usize],
            document: DocumentId(i % 8 + 1),
            profile: &profile,
            arrival_ms: 0,
            hold_ms: None,
        })
        .collect();
    let broker = Broker::new(ctx(&w), BrokerConfig::era_default());
    let report = broker.drive(
        &FleetSpec::new(&specs)
            .workers(4)
            .retention(EventRetention::CountsOnly),
    );
    assert!(report.admitted >= 1, "some sessions must get through");
    assert_eq!(report.leaked_streams, 0);
    assert!(
        report.events.is_empty(),
        "CountsOnly retention keeps no raw log"
    );
    assert_drained(&w);

    // A second drive over the same world must agree with the first.
    let again = broker.drive(
        &FleetSpec::new(&specs)
            .workers(4)
            .retention(EventRetention::CountsOnly),
    );
    assert_eq!(
        (again.admitted, again.leaked_streams),
        (report.admitted, report.leaked_streams)
    );
    assert_drained(&w);
}

#[test]
fn outcome_log_is_byte_identical_across_worker_counts() {
    // The drive() determinism contract under everything at once: faults
    // churning the farm, a choicePeriod holding reservations open, and
    // retries — the outcome log and per-session results must not depend
    // on the worker count.
    let config = ContendedConfig {
        seed: 41,
        sessions: 48,
        servers: 2,
        arrivals_per_minute: 240.0,
        hold_ms: 9_000,
        fault_windows: 4,
        choice_period_ms: 500,
        ..ContendedConfig::default()
    };
    let run = |workers: usize| {
        run_contended_with(
            &ContendedConfig {
                workers,
                ..config.clone()
            },
            None,
        )
    };
    let (r1, rep1) = run(1);
    let (r2, rep2) = run(2);
    let (r8, rep8) = run(8);
    assert!(r1.faults_injected > 0, "the fault plan must fire");
    assert!(r1.retries > 0, "the load must contend");
    assert_eq!(r1, r2);
    assert_eq!(r1, r8);
    assert_eq!(rep1.events, rep2.events, "1 vs 2 workers diverged");
    assert_eq!(rep1.events, rep8.events, "1 vs 8 workers diverged");
    assert_eq!(rep1.results, rep8.results);
    assert_eq!(rep1.leaked_streams, 0);
}

#[test]
fn slab_recycling_keeps_peak_live_at_the_concurrent_overlap() {
    let w = world(960);
    let clients = clients();
    let profile = tv_news_profile();
    // Arrivals spaced 10 s apart, each holding 1 s, no retries: never
    // more than one session in flight, so the live arena must peak at
    // exactly 1 even though 32 sessions pass through.
    let specs: Vec<SessionSpec<'_>> = (0..32u64)
        .map(|i| SessionSpec {
            client: &clients[(i % CLIENTS) as usize],
            document: DocumentId(i % 8 + 1),
            profile: &profile,
            arrival_ms: i * 10_000,
            hold_ms: Some(1_000),
        })
        .collect();
    let broker = Broker::new(
        ctx(&w),
        BrokerConfig {
            retry: RetryPolicy::NO_RETRY,
            ..BrokerConfig::era_default()
        },
    );
    let report = broker.drive(&FleetSpec::new(&specs));
    assert!(report.admitted >= 1, "an idle farm admits most sessions");
    assert_eq!(
        report.peak_live_sessions, 1,
        "non-overlapping sessions must recycle one slab slot"
    );
    assert_eq!(report.leaked_streams, 0);
    assert_drained(&w);

    // The same sessions arriving as one burst genuinely overlap.
    let burst: Vec<SessionSpec<'_>> = specs
        .iter()
        .map(|s| SessionSpec {
            arrival_ms: 0,
            ..*s
        })
        .collect();
    let report = broker.drive(&FleetSpec::new(&burst));
    assert!(
        report.peak_live_sessions > 1,
        "a burst must hold several sessions live at once"
    );
    assert_eq!(report.leaked_streams, 0);
    assert_drained(&w);
}

#[test]
fn windows_only_retention_folds_the_log_it_drops() {
    let config = ContendedConfig {
        seed: 21,
        sessions: 40,
        servers: 1,
        arrivals_per_minute: 240.0,
        hold_ms: 8_000,
        ..ContendedConfig::default()
    };
    let (_, full) = run_contended_with(&config, None);
    assert!(!full.events.is_empty());

    // Re-drive the same world with WindowsOnly retention: the raw log is
    // gone but the windows must equal the post-hoc fold of the full log.
    let w = world(970);
    let clients = clients();
    let profile = tv_news_profile();
    let specs: Vec<SessionSpec<'_>> = (0..40u64)
        .map(|i| SessionSpec {
            client: &clients[(i % CLIENTS) as usize],
            document: DocumentId(i % 8 + 1),
            profile: &profile,
            arrival_ms: i * 300,
            hold_ms: Some(6_000),
        })
        .collect();
    let broker = Broker::new(ctx(&w), BrokerConfig::era_default());
    let full = broker.drive(&FleetSpec::new(&specs).windows(1_000));
    let lean = broker.drive(
        &FleetSpec::new(&specs)
            .retention(EventRetention::WindowsOnly)
            .windows(1_000),
    );
    assert!(!full.events.is_empty());
    assert!(lean.events.is_empty(), "WindowsOnly drops the raw log");
    assert_eq!(
        lean.windows,
        news_on_demand::broker::fleet_windows(&full.events, 1_000),
        "streamed windows must equal the post-hoc fold"
    );
    assert_eq!(lean.windows, full.windows);
    assert_eq!(lean.leaked_streams, 0);
    assert_drained(&w);
}

#[test]
fn retry_deadline_is_exclusive_at_the_boundary() {
    // A retry whose backoff lands exactly `deadline_ms` after arrival is
    // *not* scheduled — the deadline is exclusive (`RetryPolicy::
    // deadline_ms`). Saturate the farm so the lone session is refused
    // FAILEDTRYLATER on arrival, with zero jitter so the first backoff
    // lands at exactly base_backoff_ms = 1000 ms.
    let drive_with_deadline = |deadline_ms: u64| {
        let w = world(910);
        let clients = clients();
        let session = Session::new(ctx(&w));
        let profile = tv_news_profile();
        let mut held = Vec::new();
        loop {
            let client = &clients[held.len() % clients.len()];
            let doc = DocumentId(held.len() as u64 % 8 + 1);
            let out = session
                .submit(&NegotiationRequest::new(client, doc, &profile))
                .unwrap();
            match out.status {
                NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer => {
                    held.push(out.reservation.expect("admitted outcome reserves"));
                }
                _ => break,
            }
            assert!(held.len() <= 64, "capacity never saturated");
        }

        let specs = [SessionSpec {
            client: &clients[0],
            document: DocumentId(1),
            profile: &profile,
            arrival_ms: 0,
            hold_ms: Some(1_000),
        }];
        let broker = Broker::new(
            ctx(&w),
            BrokerConfig {
                retry: RetryPolicy {
                    max_attempts: 2,
                    base_backoff_ms: 1_000,
                    jitter: 0.0,
                    deadline_ms: Some(deadline_ms),
                    ..RetryPolicy::era_default()
                },
                ..BrokerConfig::era_default()
            },
        );
        let report = broker.drive(&FleetSpec::new(&specs));
        for r in &held {
            session.release(r);
        }
        assert_drained(&w);
        report
    };

    // Backoff would fire at 1000 ms. One millisecond of deadline on
    // either side must flip the decision; at the boundary itself the
    // retry must NOT fire.
    for deadline in [999, 1_000] {
        let report = drive_with_deadline(deadline);
        assert_eq!(
            report.results[0].fate,
            SessionFate::Starved,
            "deadline {deadline}: a retry at 1000 ms must not be scheduled"
        );
        assert_eq!(report.results[0].attempts, 1);
        assert!(
            !report
                .events
                .iter()
                .any(|e| matches!(e.kind, OutcomeKind::RetryScheduled { .. })),
            "deadline {deadline}: no retry may be scheduled"
        );
    }
    let report = drive_with_deadline(1_001);
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e.kind, OutcomeKind::RetryScheduled { at_ms: 1_000, .. })),
        "deadline 1001: the 1000 ms retry fits strictly inside: {:?}",
        report.events
    );
    assert_eq!(report.results[0].attempts, 2, "the scheduled retry ran");
}
