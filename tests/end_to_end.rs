//! Cross-crate integration tests: the full negotiate → confirm → play →
//! adapt lifecycle through the public API.

use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{ServerConfig, ServerFarm};
use news_on_demand::mmdb::{CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::{ClientId, DocumentId, ServerId};
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::qosneg::manager::{ManagerConfig, QosManager};
use news_on_demand::qosneg::profile::tv_news_profile;
use news_on_demand::qosneg::{
    ConfirmationDecision, ConfirmationTimer, CostModel, NegotiationStatus,
};
use news_on_demand::simcore::{SimTime, StreamRng};
use news_on_demand::syncplay::SessionState;
use news_on_demand::tui::{ProfileManagerApp, UiAction, UiEvent, UiState};

fn manager(seed: u64) -> QosManager {
    let mut rng = StreamRng::new(seed);
    let catalog = CorpusBuilder::new(CorpusParams {
        documents: 10,
        servers: (0..3).map(ServerId).collect(),
        video_variants: (3, 6),
        replicas: (1, 2),
        duration_secs: (60, 120),
        ..CorpusParams::default()
    })
    .build(&mut rng);
    QosManager::new(
        catalog,
        ServerFarm::uniform(3, ServerConfig::era_default()),
        Network::new(Topology::dumbbell(6, 3, 25_000_000, 155_000_000)),
        CostModel::era_default(),
        ManagerConfig::default(),
    )
}

#[test]
fn lifecycle_negotiate_confirm_play() {
    let m = manager(100);
    let client = ClientMachine::era_workstation(ClientId(0));
    let out = m
        .negotiate(&client, DocumentId(1), &tv_news_profile())
        .unwrap();
    assert!(matches!(
        out.status,
        NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer
    ));
    // Confirmation inside the choice period.
    let timer = ConfirmationTimer::arm(SimTime::ZERO, 30_000);
    assert_eq!(
        timer.resolve(SimTime::from_secs(3), Some(true)),
        Some(ConfirmationDecision::Accepted)
    );
    let mut session = m.start_session(&client, out, DocumentId(1));
    while m.drive_session(&mut session, 500, true) {}
    assert_eq!(session.playout.state(), SessionState::Completed);
    assert_eq!(m.network().active_reservations(), 0);
    assert!(m.farm().mean_disk_utilization() < 1e-9);
}

#[test]
fn confirmation_timeout_releases_resources() {
    let m = manager(101);
    let client = ClientMachine::era_workstation(ClientId(1));
    let out = m
        .negotiate(&client, DocumentId(2), &tv_news_profile())
        .unwrap();
    let reservation = out.reservation.expect("offer reserved");
    assert!(m.network().active_reservations() > 0);
    let timer = ConfirmationTimer::arm(SimTime::ZERO, 30_000);
    assert_eq!(
        timer.resolve(SimTime::from_secs(31), Some(true)),
        Some(ConfirmationDecision::TimedOut)
    );
    m.release(&reservation);
    assert_eq!(m.network().active_reservations(), 0);
}

#[test]
fn adaptation_survives_server_failure_and_preserves_position() {
    let m = manager(102);
    let client = ClientMachine::era_workstation(ClientId(2));
    let out = m
        .negotiate(&client, DocumentId(1), &tv_news_profile())
        .unwrap();
    let mut session = m.start_session(&client, out, DocumentId(1));
    for _ in 0..20 {
        m.drive_session(&mut session, 500, true);
    }
    let position_before = session.playout.position_ms();
    assert!(position_before > 0.0);
    let victim = session.reservation.servers[0].0;
    m.farm().server(victim).unwrap().set_health(0.0);
    // Drive until the session either transitions or aborts.
    let mut steps = 0;
    while m.drive_session(&mut session, 500, true) {
        steps += 1;
        if steps > 1_000 {
            break;
        }
    }
    match session.playout.state() {
        SessionState::Completed => {
            assert!(session.playout.stats().transitions >= 1);
            // Restart-from-position: nothing was rewound to zero.
            assert!(session.playout.position_ms() >= position_before);
        }
        SessionState::Aborted => {
            // Legal when no alternate offer avoided the dead server; the
            // resources must still be gone.
        }
        other => panic!("session stuck in {other:?}"),
    }
    assert_eq!(m.network().active_reservations(), 0);
}

#[test]
fn gui_flow_drives_real_negotiation() {
    let m = manager(103);
    let client = ClientMachine::era_workstation(ClientId(3));
    let profile = tv_news_profile();
    let mut app = ProfileManagerApp::new(vec![profile.clone()]);

    let action = app.handle(UiEvent::Ok);
    assert_eq!(action, UiAction::StartNegotiation { profile: 0 });
    let out = m.negotiate(&client, DocumentId(3), &profile).unwrap();
    app.handle(UiEvent::NegotiationResult {
        status: out.status,
        violated: out
            .user_offer
            .as_ref()
            .map(|o| nod_qosneg::violated_components(&tv_news_profile(), o))
            .unwrap_or_default(),
        offer: out.user_offer,
    });
    match out.status {
        NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer => {
            assert_eq!(app.state(), UiState::Information);
            let rendered = app.render(Some(30_000));
            assert!(rendered.contains(&out.status.to_string()));
            // Reject: the GUI asks the embedder to release.
            assert_eq!(
                app.handle(UiEvent::Cancel),
                UiAction::ReleaseOffer { timed_out: false }
            );
            m.release(&out.reservation.unwrap());
        }
        _ => assert_eq!(app.state(), UiState::ProfileComponents),
    }
    assert_eq!(m.network().active_reservations(), 0);
}

#[test]
fn negotiation_is_deterministic_across_fresh_worlds() {
    let run = || {
        let m = manager(104);
        let client = ClientMachine::era_workstation(ClientId(0));
        let out = m
            .negotiate(&client, DocumentId(1), &tv_news_profile())
            .unwrap();
        (
            out.status,
            out.user_offer.map(|o| o.cost),
            out.trace.offers_enumerated,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn concurrent_clients_share_the_farm_consistently() {
    use std::sync::Arc;
    let m = Arc::new(manager(105));
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let client = ClientMachine::era_workstation(ClientId(i % 6));
                let out = m
                    .negotiate(&client, DocumentId(1 + i % 5), &tv_news_profile())
                    .unwrap();
                if let Some(r) = &out.reservation {
                    m.release(r);
                    1u32
                } else {
                    0
                }
            })
        })
        .collect();
    let reserved: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(reserved > 0);
    assert_eq!(m.network().active_reservations(), 0);
    assert!(m.farm().mean_disk_utilization() < 1e-9);
}

#[test]
fn whole_stack_respects_the_cost_ceiling_on_success() {
    for seed in 110..116 {
        let m = manager(seed);
        let client = ClientMachine::era_workstation(ClientId(0));
        let profile = tv_news_profile();
        let out = m.negotiate(&client, DocumentId(1), &profile).unwrap();
        if out.status == NegotiationStatus::Succeeded {
            let offer = out.user_offer.unwrap();
            assert!(
                offer.cost <= profile.max_cost,
                "seed {seed}: SUCCEEDED offer at {} exceeds ceiling {}",
                offer.cost,
                profile.max_cost
            );
        }
        if let Some(r) = &out.reservation {
            m.release(r);
        }
    }
}
