//! Integration tests for the extension features (advance reservations,
//! multi-domain negotiation, scenarios, pruning) through the public API.

use news_on_demand::client::ClientMachine;
use news_on_demand::cmfs::{Guarantee, ServerConfig, ServerFarm};
use news_on_demand::mmdb::{Catalog, CorpusBuilder, CorpusParams};
use news_on_demand::mmdoc::{ClientId, DocumentId, ServerId};
use news_on_demand::netsim::{Network, Topology};
use news_on_demand::qosneg::future::AdvanceBook;
use news_on_demand::qosneg::hierarchy::{Domain, MultiDomainConfig};
use news_on_demand::qosneg::negotiate::NegotiationContext;
use news_on_demand::qosneg::profile::tv_news_profile;
use news_on_demand::qosneg::{
    ClassificationStrategy, CostModel, NegotiationRequest, NegotiationStatus, Session,
};
use news_on_demand::simcore::{SimTime, StreamRng};
use news_on_demand::workload::scenario::presets;

struct World {
    catalog: Catalog,
    farm: ServerFarm,
    network: Network,
    cost: CostModel,
}

fn world(seed: u64) -> World {
    let mut rng = StreamRng::new(seed);
    let catalog = CorpusBuilder::new(CorpusParams {
        documents: 6,
        servers: (0..3).map(ServerId).collect(),
        ..CorpusParams::default()
    })
    .build(&mut rng);
    World {
        catalog,
        farm: ServerFarm::uniform(3, ServerConfig::era_default()),
        network: Network::new(Topology::dumbbell(4, 3, 25_000_000, 155_000_000)),
        cost: CostModel::era_default(),
    }
}

fn ctx(w: &World, prune: bool) -> NegotiationContext<'_> {
    NegotiationContext {
        catalog: &w.catalog,
        farm: &w.farm,
        network: &w.network,
        cost_model: &w.cost,
        strategy: ClassificationStrategy::SnsThenOif,
        guarantee: Guarantee::Guaranteed,
        enumeration_cap: 500_000,
        jitter_buffer_ms: 2_000,
        prune_dominated: prune,
        streaming: nod_qosneg::negotiate::StreamingMode::Auto,
        recorder: None,
        explain: false,
    }
}

#[test]
fn advance_and_live_reservations_coexist() {
    let w = world(200);
    let c = ctx(&w, false);
    let client = ClientMachine::era_workstation(ClientId(0));
    let profile = tv_news_profile();

    // Book tomorrow's session.
    let session = Session::new(c);
    let mut book = AdvanceBook::new(&c);
    let future = session
        .submit_future(
            &NegotiationRequest::new(&client, DocumentId(1), &profile)
                .start_at(SimTime::from_secs(86_400)),
            &mut book,
        )
        .unwrap();
    assert!(future.booking.is_some());

    // A live session negotiates right now, unaffected by the booking.
    let live = session
        .submit(&NegotiationRequest::new(&client, DocumentId(1), &profile))
        .unwrap();
    assert!(matches!(
        live.status,
        NegotiationStatus::Succeeded | NegotiationStatus::FailedWithOffer
    ));
    live.reservation.unwrap().release(&w.farm, &w.network);
    book.cancel(future.booking.unwrap());
    assert_eq!(book.bookings(), 0);
    assert_eq!(w.network.active_reservations(), 0);
}

#[test]
fn pruning_option_preserves_the_served_offer_on_an_idle_system() {
    // On an idle system the first offer in classification order commits,
    // and pruning never removes that offer — so results agree.
    let mut total_pruned = 0usize;
    for seed in 210..220 {
        let w = world(seed);
        let client = ClientMachine::era_workstation(ClientId(0));
        let profile = tv_news_profile();
        let request = NegotiationRequest::new(&client, DocumentId(1), &profile);
        let full = Session::new(ctx(&w, false)).submit(&request).unwrap();
        if let Some(r) = &full.reservation {
            r.release(&w.farm, &w.network);
        }
        let pruned = Session::new(ctx(&w, true)).submit(&request).unwrap();
        if let Some(r) = &pruned.reservation {
            r.release(&w.farm, &w.network);
        }
        assert_eq!(full.status, pruned.status, "seed {seed}");
        assert_eq!(
            full.user_offer.map(|o| o.cost),
            pruned.user_offer.map(|o| o.cost),
            "seed {seed}"
        );
        assert_eq!(
            pruned.ordered_offers.len() + pruned.trace.offers_pruned,
            full.ordered_offers.len(),
            "seed {seed}: pruning must account for every offer"
        );
        total_pruned += pruned.trace.offers_pruned;
    }
    assert!(
        total_pruned > 0,
        "across ten corpora pruning should find dominated offers"
    );
}

#[test]
fn multidomain_over_the_umbrella_api() {
    let mk_domain = |seed: u64, surcharge: u32| {
        let mut rng = StreamRng::new(seed);
        Domain {
            name: format!("d{seed}"),
            catalog: CorpusBuilder::new(CorpusParams {
                documents: 4,
                servers: (0..2).map(ServerId).collect(),
                ..CorpusParams::default()
            })
            .build(&mut rng),
            farm: ServerFarm::uniform(2, ServerConfig::era_default()),
            network: Network::new(Topology::dumbbell(4, 2, 25_000_000, 155_000_000)),
            gateway: ClientId(3),
            transit_surcharge_percent: surcharge,
        }
    };
    let domains = vec![mk_domain(1, 0), mk_domain(1, 30)];
    let model = CostModel::era_default();
    let config = MultiDomainConfig {
        cost_model: &model,
        strategy: ClassificationStrategy::SnsThenOif,
        guarantee: Guarantee::Guaranteed,
        enumeration_cap: 500_000,
        jitter_buffer_ms: 2_000,
    };
    let client = ClientMachine::era_workstation(ClientId(0));
    let out = Session::submit_multidomain(
        &domains,
        0,
        &NegotiationRequest::new(&client, DocumentId(2), &tv_news_profile()),
        &config,
    )
    .unwrap();
    assert!(out.outcome.reservation.is_some());
    out.outcome.reservation.unwrap().release(
        &domains[out.domain_index].farm,
        &domains[out.domain_index].network,
    );
}

#[test]
fn scenario_presets_run_end_to_end() {
    let mut s = presets::light_load();
    s.blocking[0].horizon_minutes = 5.0;
    let r = news_on_demand::workload::run_blocking(&s.blocking[0]);
    assert!(r.offered > 0);
    assert_eq!(r.try_later, 0, "light load never hits resource limits");
}

#[test]
fn commit_diagnostics_surface_through_the_stack() {
    let w = world(220);
    let client = ClientMachine::era_workstation(ClientId(0));
    for s in w.farm.ids() {
        w.farm.server(s).unwrap().set_health(0.0);
    }
    let out = Session::new(ctx(&w, false))
        .submit(&NegotiationRequest::new(
            &client,
            DocumentId(1),
            &tv_news_profile(),
        ))
        .unwrap();
    assert_eq!(out.status, NegotiationStatus::FailedTryLater);
    assert!(!out.commit_failures.is_empty());
    // Every diagnostic renders a human-readable reason.
    for (_, reason) in &out.commit_failures {
        assert!(reason.to_string().contains("srv"));
    }
}
