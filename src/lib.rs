//! Umbrella crate re-exporting the news-on-demand QoS negotiation stack.
//!
//! This crate exists so that `examples/` and the cross-crate integration
//! tests in `tests/` have a single dependency surface. Library users should
//! depend on the individual `nod-*` crates directly.

pub use nod_broker as broker;
pub use nod_client as client;
pub use nod_cmfs as cmfs;
pub use nod_mmdb as mmdb;
pub use nod_mmdoc as mmdoc;
pub use nod_netsim as netsim;
pub use nod_obs as obs;
pub use nod_qosneg as qosneg;
pub use nod_simcore as simcore;
pub use nod_syncplay as syncplay;
pub use nod_tui as tui;
pub use nod_workload as workload;
